"""Deterministic fault injection for the storage layer.

Pestov's lower-bound results (arXiv:0812.0146) show metric indexes degrade
sharply in adverse *data* regimes; a production deployment must also
survive adverse *operational* regimes — flaky devices, torn writes, silent
bit rot.  This module makes those regimes reproducible: a seedable
:class:`FaultPolicy` decides, draw by draw, whether the next page access
fails, and :class:`FaultyPageStore` applies the policy to any
:class:`~repro.storage.PageStore`-shaped store.

With every rate at ``0.0`` the wrapper is a transparent pass-through:
identical payloads, identical accounting — which is what the test suite
asserts, so chaos machinery can stay permanently wired into benches.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    IOFaultError,
    OperationCancelledError,
)
from ..observability import state as _obs
from ..storage.pager import PageStore

__all__ = [
    "FaultPolicy",
    "FaultStats",
    "FaultyPageStore",
    "TornPage",
    "CorruptedPayload",
    "StructuralFaultInjector",
    "ShardChaos",
    "ShardFaultInjector",
    "WalFaultInjector",
]


@dataclass
class FaultStats:
    """How many faults a policy actually injected."""

    reads: int = 0
    writes: int = 0
    read_faults: int = 0
    write_faults: int = 0
    torn_writes: int = 0
    corruptions: int = 0


class TornPage:
    """Payload left behind by a torn (partially persisted) write."""

    def __init__(self, prefix: Any):
        self.prefix = prefix

    def __repr__(self) -> str:
        return f"TornPage(prefix={self.prefix!r})"


class CorruptedPayload:
    """Opaque stand-in for a payload whose type cannot be bit-flipped."""

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptedPayload({self.original!r})"


class FaultPolicy:
    """Seedable Bernoulli fault source with independent per-kind rates.

    Rates are probabilities in ``[0, 1]``:

    * ``read_fail_rate`` — a read raises :class:`IOFaultError` before any
      data is returned (a device error);
    * ``write_fail_rate`` — a write or allocation raises
      :class:`IOFaultError` and leaves the store unchanged;
    * ``torn_write_rate`` — a write "succeeds" but persists only a prefix
      of the payload (:class:`TornPage`), the classic crash-mid-write;
    * ``corrupt_rate`` — a read returns silently corrupted data (one
      element/bit perturbed) instead of failing loudly.

    A zero rate never consumes randomness, so the draw sequence — and
    hence the exact fault schedule — depends only on the seed and the
    non-zero rates.  ``clone()`` returns a fresh policy with the original
    seed, for replaying a schedule.
    """

    def __init__(
        self,
        read_fail_rate: float = 0.0,
        write_fail_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: Optional[int] = None,
    ):
        for name, rate in (
            ("read_fail_rate", read_fail_rate),
            ("write_fail_rate", write_fail_rate),
            ("torn_write_rate", torn_write_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise InvalidParameterError(
                    f"{name} must lie in [0, 1], got {rate}"
                )
        self.read_fail_rate = read_fail_rate
        self.write_fail_rate = write_fail_rate
        self.torn_write_rate = torn_write_rate
        self.corrupt_rate = corrupt_rate
        self.seed = seed
        self._rng = random.Random(seed)

    def clone(self) -> "FaultPolicy":
        """Fresh policy with the same rates and the same seed."""
        return FaultPolicy(
            self.read_fail_rate,
            self.write_fail_rate,
            self.torn_write_rate,
            self.corrupt_rate,
            self.seed,
        )

    def _draw(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._rng.random() < rate

    def next_read_fails(self) -> bool:
        return self._draw(self.read_fail_rate)

    def next_write_fails(self) -> bool:
        return self._draw(self.write_fail_rate)

    def next_write_tears(self) -> bool:
        return self._draw(self.torn_write_rate)

    def next_read_corrupts(self) -> bool:
        return self._draw(self.corrupt_rate)

    def corrupt(self, payload: Any) -> Any:
        """A silently corrupted copy of ``payload`` (original untouched)."""
        return _corrupt(payload, self._rng)

    def tear(self, payload: Any) -> TornPage:
        """The torn-write remnant of ``payload``."""
        try:
            prefix = payload[: max(0, len(payload) // 2)]
        except TypeError:
            prefix = None
        return TornPage(prefix)

    def __repr__(self) -> str:
        return (
            f"FaultPolicy(read_fail_rate={self.read_fail_rate}, "
            f"write_fail_rate={self.write_fail_rate}, "
            f"torn_write_rate={self.torn_write_rate}, "
            f"corrupt_rate={self.corrupt_rate}, seed={self.seed})"
        )


def _corrupt(payload: Any, rng: random.Random) -> Any:
    """One-element / one-bit perturbation of a payload copy."""
    import numpy as np

    if isinstance(payload, np.ndarray) and payload.size:
        flat = payload.copy().reshape(-1)
        idx = rng.randrange(flat.size)
        flat[idx] = -flat[idx] - 1
        return flat.reshape(payload.shape)
    if isinstance(payload, (bytes, bytearray)) and len(payload):
        idx = rng.randrange(len(payload))
        mutated = bytearray(payload)
        mutated[idx] ^= 1 << rng.randrange(8)
        return bytes(mutated) if isinstance(payload, bytes) else mutated
    if isinstance(payload, str) and payload:
        idx = rng.randrange(len(payload))
        flipped = chr((ord(payload[idx]) ^ 1) & 0x10FFFF) or "?"
        return payload[:idx] + flipped + payload[idx + 1 :]
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ 1
    if isinstance(payload, float):
        return -payload - 1.0
    if isinstance(payload, (list, tuple)) and len(payload):
        idx = rng.randrange(len(payload))
        items = list(payload)
        items[idx] = _corrupt(items[idx], rng)
        return type(payload)(items) if isinstance(payload, tuple) else items
    if isinstance(payload, dict) and payload:
        key = rng.choice(sorted(payload, key=repr))
        mutated = dict(payload)
        mutated[key] = _corrupt(mutated[key], rng)
        return mutated
    return CorruptedPayload(payload)


class FaultyPageStore:
    """A :class:`~repro.storage.PageStore` front that injects faults.

    Mirrors the ``PageStore`` API exactly, so it can substitute anywhere a
    page store is expected (including under a
    :class:`~repro.reliability.RetryingPageStore`).  Injected read faults
    fire *before* the inner store is touched — a device error returns no
    data and costs no logical read — while corruption happens *after* a
    successful read, so accounting matches the fault-free store.
    """

    def __init__(self, inner: PageStore, policy: FaultPolicy):
        self.inner = inner
        self.policy = policy
        self.fault_stats = FaultStats()

    # -- delegated surface -------------------------------------------------

    @property
    def page_size_bytes(self) -> int:
        return self.inner.page_size_bytes

    @property
    def buffer_pages(self) -> int:
        return self.inner.buffer_pages

    @property
    def stats(self):
        return self.inner.stats

    def __len__(self) -> int:
        return len(self.inner)

    def page_ids(self) -> list:
        return self.inner.page_ids()

    def reset_stats(self) -> None:
        self.inner.reset_stats()
        self.fault_stats = FaultStats()

    # -- faulting operations ----------------------------------------------

    @staticmethod
    def _count_fault(kind: str) -> None:
        """Mirror an injected fault into the metrics registry."""
        if _obs.registry is not None:
            _obs.registry.inc("reliability.faults_injected", kind=kind)

    def allocate(self, payload: Any) -> int:
        self.fault_stats.writes += 1
        if self.policy.next_write_fails():
            self.fault_stats.write_faults += 1
            self._count_fault("write")
            raise IOFaultError("injected write fault during page allocation")
        if self.policy.next_write_tears():
            self.fault_stats.torn_writes += 1
            self._count_fault("torn_write")
            return self.inner.allocate(self.policy.tear(payload))
        return self.inner.allocate(payload)

    def write(self, page_id: int, payload: Any) -> None:
        self.fault_stats.writes += 1
        if self.policy.next_write_fails():
            self.fault_stats.write_faults += 1
            self._count_fault("write")
            raise IOFaultError(f"injected write fault on page {page_id}")
        if self.policy.next_write_tears():
            self.fault_stats.torn_writes += 1
            self._count_fault("torn_write")
            self.inner.write(page_id, self.policy.tear(payload))
            return
        self.inner.write(page_id, payload)

    def read(self, page_id: int) -> Any:
        self.fault_stats.reads += 1
        if self.policy.next_read_fails():
            self.fault_stats.read_faults += 1
            self._count_fault("read")
            raise IOFaultError(f"injected read fault on page {page_id}")
        payload = self.inner.read(page_id)
        if self.policy.next_read_corrupts():
            self.fault_stats.corruptions += 1
            self._count_fault("corruption")
            return self.policy.corrupt(payload)
        return payload


class StructuralFaultInjector:
    """Deterministically damage the *geometry* of an in-memory index.

    :class:`FaultPolicy` perturbs bytes; this injector perturbs
    *semantics* — the structural invariants that
    :mod:`repro.reliability.fsck` exists to verify.  Every method mutates
    the tree in place and returns a record (``kind`` + location detail)
    describing exactly what was damaged, so chaos tests can assert the
    fsck finds precisely the injected faults.

    Injections are calibrated to be *detectable by construction*: a
    shrunk radius is set strictly below the subtree's true maximum
    descendant distance, a skewed parent distance is moved by far more
    than the fsck tolerance, a dropped entry leaves the stored object
    count stale.  The acceptance bar — fsck detects 100% of injected
    corruption — is only meaningful if the injector cannot inject an
    undetectable fault.
    """

    def __init__(self, seed: Optional[int] = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    # -- M-tree ------------------------------------------------------------

    def _routing_entries(self, tree: Any):
        """All ``(node, entry)`` routing pairs of an M-tree."""
        pairs = []
        for node in tree.iter_nodes():
            if not node.is_leaf:
                pairs.extend((node, entry) for entry in node.entries)
        return pairs

    @staticmethod
    def _max_descendant_distance(tree: Any, entry: Any) -> float:
        """True covering requirement: max distance from the routing object
        to any leaf object below it."""
        best = 0.0
        stack = [entry.child]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for leaf in node.entries:
                    best = max(
                        best, tree.metric.distance(leaf.obj, entry.obj)
                    )
            else:
                stack.extend(e.child for e in node.entries)
        return best

    def shrink_radius(self, tree: Any) -> dict:
        """Shrink one covering radius below its subtree's true extent.

        The new radius is half the maximum descendant distance, so at
        least one object provably escapes the ball — fsck must flag a
        ``radius_violation``.
        """
        candidates = [
            (node, entry, self._max_descendant_distance(tree, entry))
            for node, entry in self._routing_entries(tree)
        ]
        candidates = [c for c in candidates if c[2] > 0.0]
        if not candidates:
            raise InvalidParameterError(
                "no routing entry with a positive subtree extent to shrink"
            )
        node, entry, max_dist = self._rng.choice(candidates)
        old_radius = entry.radius
        entry.radius = max_dist * 0.5
        return {
            "kind": "radius_violation",
            "node_id": id(node),
            "old_radius": old_radius,
            "new_radius": entry.radius,
            "max_descendant_distance": max_dist,
        }

    def skew_parent_distance(self, tree: Any) -> dict:
        """Corrupt one stored ``d(O, P(O))`` far beyond the fsck tolerance
        (guaranteeing a ``parent_distance_skew`` finding)."""
        victims = []
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            for entry in node.entries:
                victims.extend(
                    (entry.child, child_entry)
                    for child_entry in entry.child.entries
                )
        if not victims:
            raise InvalidParameterError(
                "tree has no non-root node whose parent distance can skew"
            )
        node, entry = self._rng.choice(victims)
        old = entry.dist_to_parent
        entry.dist_to_parent = old + 0.5 * (1.0 + old)
        return {
            "kind": "parent_distance_skew",
            "node_id": id(node),
            "old_dist": old,
            "new_dist": entry.dist_to_parent,
        }

    def drop_entry(self, tree: Any) -> dict:
        """Silently remove one leaf entry without fixing the accounting.

        The stored object count goes stale — exactly the
        ``object_count_mismatch`` a lost entry produces in the wild.
        """
        leaves = [
            node
            for node in tree.iter_nodes()
            if node.is_leaf and len(node.entries) >= 2
        ]
        if not leaves:
            raise InvalidParameterError(
                "no leaf with >= 2 entries to drop from"
            )
        node = self._rng.choice(leaves)
        entry = self._rng.choice(node.entries)
        node.entries.remove(entry)
        tree._invalidate_caches()
        return {
            "kind": "object_count_mismatch",
            "node_id": id(node),
            "dropped_oid": entry.oid,
        }

    # -- vp-tree -----------------------------------------------------------

    def shrink_cutoff(self, tree: Any) -> dict:
        """Shrink one vp-tree cutoff below its shell's true extent,
        guaranteeing a ``cutoff_violation`` (or ``cutoffs_unsorted``)."""
        candidates = []
        stack = [tree.root] if tree.root is not None else []
        while stack:
            node = stack.pop()
            previous_cut = 0.0
            for pos, (cut, child) in enumerate(
                zip(node.cutoffs, node.children)
            ):
                if child is not None:
                    max_dist = 0.0
                    sub = [child]
                    while sub:
                        current = sub.pop()
                        max_dist = max(
                            max_dist,
                            tree.metric.distance(node.obj, current.obj),
                        )
                        sub.extend(
                            c for c in current.children if c is not None
                        )
                    if max_dist > previous_cut:
                        candidates.append((node, pos, previous_cut, max_dist))
                    stack.append(child)
                previous_cut = cut
        if not candidates:
            raise InvalidParameterError(
                "no vp-tree cutoff with a positive shell extent to shrink"
            )
        node, pos, previous_cut, max_dist = self._rng.choice(candidates)
        old = node.cutoffs[pos]
        node.cutoffs[pos] = previous_cut + 0.5 * (max_dist - previous_cut)
        return {
            "kind": "cutoff_violation",
            "node_id": id(node),
            "position": pos,
            "old_cutoff": old,
            "new_cutoff": node.cutoffs[pos],
        }

    # -- page graph --------------------------------------------------------

    def inject_orphan_page(self, store: Any) -> dict:
        """Allocate a page no parent references (an ``orphan_page``)."""
        page_id = store.allocate(
            {"is_leaf": True, "n_entries": 0, "children": []}
        )
        return {"kind": "orphan_page", "page_id": page_id}

    def _internal_pages(self, store: Any):
        pages = []
        for page_id in store.page_ids():
            try:
                payload = store.read(page_id)
            except (DeadlineExceededError, OperationCancelledError):
                raise
            except Exception:  # noqa: BLE001 — damaged pages are skipped
                continue
            if isinstance(payload, dict) and payload.get("children"):
                pages.append((page_id, payload))
        return pages

    def inject_dangling_ref(self, store: Any) -> dict:
        """Point one internal page at a child id that does not exist
        (a ``dangling_page_ref``)."""
        pages = self._internal_pages(store)
        if not pages:
            raise InvalidParameterError("no internal page to damage")
        page_id, payload = self._rng.choice(pages)
        bogus = max(store.page_ids()) + 1 + self._rng.randrange(1000)
        payload = dict(payload)
        payload["children"] = list(payload["children"]) + [bogus]
        store.write(page_id, payload)
        return {
            "kind": "dangling_page_ref",
            "page_id": page_id,
            "bogus_child": bogus,
        }

    def inject_page_alias(self, store: Any) -> dict:
        """Reference one child from two slots (a
        ``doubly_referenced_page``)."""
        pages = self._internal_pages(store)
        if not pages:
            raise InvalidParameterError("no internal page to damage")
        page_id, payload = self._rng.choice(pages)
        victim = self._rng.choice(payload["children"])
        payload = dict(payload)
        payload["children"] = list(payload["children"]) + [victim]
        store.write(page_id, payload)
        return {
            "kind": "doubly_referenced_page",
            "page_id": page_id,
            "aliased_child": victim,
        }


class ShardChaos:
    """Thread-safe per-shard chaos switch: healthy, dead, or slow.

    A cluster shard consults its chaos switch on every query.  ``dead``
    makes the shard raise :class:`IOFaultError` (the whole-machine
    failure: trips the shard's circuit breaker, triggers router
    quarantine); ``slow`` delays execution by ``delay_s`` (the straggler
    regime hedged reads exist for).  By default a slow shard only slows
    *primary* attempts — modelling a transient per-request stall (GC
    pause, queue spike) where a duplicate request takes a fresh, fast
    path — so hedges deterministically win; set ``slow_hedged=True`` for
    a machine-level slowdown that hits hedges too.

    The switch is flipped by a chaos driver thread while query workers
    read it, so all access goes through the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mode: Optional[str] = None
        self._delay_s = 0.0
        self._slow_hedged = False

    def kill(self) -> None:
        """Every subsequent query on this shard fails with an I/O fault."""
        with self._lock:
            self._mode = "dead"

    def slow(self, delay_s: float, slow_hedged: bool = False) -> None:
        """Every subsequent query on this shard stalls for ``delay_s``."""
        if delay_s < 0:
            raise InvalidParameterError(
                f"delay_s must be >= 0, got {delay_s}"
            )
        with self._lock:
            self._mode = "slow"
            self._delay_s = delay_s
            self._slow_hedged = slow_hedged

    def heal(self) -> None:
        """Back to healthy: no injected failures or stalls."""
        with self._lock:
            self._mode = None
            self._delay_s = 0.0
            self._slow_hedged = False

    def snapshot(self) -> Tuple[Optional[str], float, bool]:
        """Consistent ``(mode, delay_s, slow_hedged)`` view for one query."""
        with self._lock:
            return self._mode, self._delay_s, self._slow_hedged

    @property
    def mode(self) -> Optional[str]:
        with self._lock:
            return self._mode

    def __repr__(self) -> str:
        mode, delay_s, slow_hedged = self.snapshot()
        return (
            f"ShardChaos(mode={mode!r}, delay_s={delay_s}, "
            f"slow_hedged={slow_hedged})"
        )


class ShardFaultInjector:
    """Shard-level chaos for a cluster: kill, slow, corrupt, heal.

    Operates on anything shard-shaped — an object with a ``shard_id``,
    a ``chaos`` :class:`ShardChaos` switch, and (for ``corrupt``) a
    ``tree`` attribute holding a vp-tree.  ``kill``/``slow`` flip the
    chaos switch; ``corrupt`` delegates to
    :class:`StructuralFaultInjector.shrink_cutoff` so the damage is
    *detectable by construction* (the shard's fsck must flag it).  Every
    method returns a record describing exactly what was injected, so
    chaos drills can assert detection and recovery against ground truth.
    """

    def __init__(self, seed: Optional[int] = 0):
        self.seed = seed
        self._structural = StructuralFaultInjector(seed=seed)

    @staticmethod
    def _record(shard: Any, kind: str, **detail: Any) -> dict:
        record = {"kind": kind, "shard_id": shard.shard_id}
        record.update(detail)
        if _obs.registry is not None:
            _obs.registry.inc(
                "reliability.shard_faults_injected",
                kind=kind,
                shard=str(shard.shard_id),
            )
        return record

    def kill(self, shard: Any) -> dict:
        """Dead shard: every query raises :class:`IOFaultError`."""
        shard.chaos.kill()
        return self._record(shard, "shard_dead")

    def slow(
        self, shard: Any, delay_s: float, slow_hedged: bool = False
    ) -> dict:
        """Straggler shard: every (primary) query stalls for ``delay_s``."""
        shard.chaos.slow(delay_s, slow_hedged=slow_hedged)
        return self._record(
            shard, "shard_slow", delay_s=delay_s, slow_hedged=slow_hedged
        )

    def corrupt(self, shard: Any) -> dict:
        """Structurally damage the shard's index (fsck-detectable)."""
        detail = self._structural.shrink_cutoff(shard.tree)
        return self._record(shard, "shard_corrupt", structural=detail)

    def heal(self, shard: Any) -> dict:
        """Lift any injected chaos on the shard (structure stays damaged)."""
        shard.chaos.heal()
        return self._record(shard, "shard_healed")


class WalFaultInjector:
    """Deterministic byte-level damage to on-disk WAL segments.

    The hostile-artifact counterpart of :class:`FaultPolicy` for the
    ingest write-ahead log (:mod:`repro.ingest.wal`): every method edits
    segment files in place, at explicit offsets, so chaos drills and
    tests replay the exact same damage every run.  Methods return the
    name of the segment they damaged.
    """

    def __init__(self, directory: Any):
        from pathlib import Path

        self.directory = Path(directory)

    def _segments(self) -> list:
        found = [
            path
            for path in self.directory.iterdir()
            if path.name.startswith("wal-") and path.name.endswith(".log")
        ]
        if not found:
            raise InvalidParameterError(
                f"no WAL segments under {self.directory}"
            )
        return sorted(found)

    def _record_lines(self) -> list:
        """Every complete record as ``(path, start_offset, line_bytes)``."""
        out = []
        for path in self._segments():
            data = path.read_bytes()
            offset = 0
            while True:
                newline = data.find(b"\n", offset)
                if newline < 0:
                    break
                out.append((path, offset, data[offset:newline]))
                offset = newline + 1
        if not out:
            raise InvalidParameterError("WAL holds no complete record")
        return out

    def tear_tail(self, drop_bytes: int = 7) -> str:
        """Crash-mid-append: drop the final bytes of the last segment.

        Leaves the last record truncated without its newline — the
        benign torn-tail signature recovery must absorb.
        """
        if drop_bytes < 1:
            raise InvalidParameterError(
                f"drop_bytes must be >= 1, got {drop_bytes}"
            )
        path = self._segments()[-1]
        data = path.read_bytes()
        if len(data) <= drop_bytes:
            raise InvalidParameterError(
                f"segment {path.name} has only {len(data)} byte(s)"
            )
        path.write_bytes(data[:-drop_bytes])
        if _obs.registry is not None:
            _obs.registry.inc(
                "reliability.wal_faults_injected", kind="torn_tail"
            )
        return path.name

    def truncate_segment(self, keep_records: int = 0) -> str:
        """Cut the last segment down to its first ``keep_records`` records
        (newline intact — mid-log truncation, *not* a benign torn tail
        unless it is the final segment's tail)."""
        if keep_records < 0:
            raise InvalidParameterError(
                f"keep_records must be >= 0, got {keep_records}"
            )
        path = self._segments()[-1]
        data = path.read_bytes()
        offset = 0
        for _ in range(keep_records):
            newline = data.find(b"\n", offset)
            if newline < 0:
                raise InvalidParameterError(
                    f"segment {path.name} has fewer than "
                    f"{keep_records} record(s)"
                )
            offset = newline + 1
        path.write_bytes(data[:offset])
        if _obs.registry is not None:
            _obs.registry.inc(
                "reliability.wal_faults_injected", kind="truncated_segment"
            )
        return path.name

    def flip_bit(self, record: int = 0, bit: int = 1) -> str:
        """Flip one bit inside the body of the ``record``-th record
        (log order, negative indexes from the end) — silent bit rot the
        CRC frame must catch."""
        lines = self._record_lines()
        path, offset, line = lines[record]
        # The body starts after the 4th space (magic seq len crc body).
        spaces = 0
        body_at = 0
        for pos, byte in enumerate(line):
            if byte == 0x20:
                spaces += 1
                if spaces == 4:
                    body_at = pos + 1
                    break
        if spaces < 4 or body_at >= len(line):
            raise InvalidParameterError(
                f"record {record} in {path.name} has no body to damage"
            )
        data = bytearray(path.read_bytes())
        target = offset + body_at
        data[target] ^= 1 << (bit % 8)
        path.write_bytes(bytes(data))
        if _obs.registry is not None:
            _obs.registry.inc(
                "reliability.wal_faults_injected", kind="bit_flip"
            )
        return path.name

    def duplicate_record(self, record: int = -1) -> str:
        """Re-append a byte-identical copy of an existing record to the
        last segment — the duplicate-sequence shape idempotent replay
        must skip."""
        lines = self._record_lines()
        _src, _offset, line = lines[record]
        path = self._segments()[-1]
        with open(path, "ab") as fh:
            fh.write(line + b"\n")
        if _obs.registry is not None:
            _obs.registry.inc(
                "reliability.wal_faults_injected", kind="duplicate_record"
            )
        return path.name
