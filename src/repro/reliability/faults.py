"""Deterministic fault injection for the storage layer.

Pestov's lower-bound results (arXiv:0812.0146) show metric indexes degrade
sharply in adverse *data* regimes; a production deployment must also
survive adverse *operational* regimes — flaky devices, torn writes, silent
bit rot.  This module makes those regimes reproducible: a seedable
:class:`FaultPolicy` decides, draw by draw, whether the next page access
fails, and :class:`FaultyPageStore` applies the policy to any
:class:`~repro.storage.PageStore`-shaped store.

With every rate at ``0.0`` the wrapper is a transparent pass-through:
identical payloads, identical accounting — which is what the test suite
asserts, so chaos machinery can stay permanently wired into benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from ..exceptions import InvalidParameterError, IOFaultError
from ..observability import state as _obs
from ..storage.pager import PageStore

__all__ = [
    "FaultPolicy",
    "FaultStats",
    "FaultyPageStore",
    "TornPage",
    "CorruptedPayload",
]


@dataclass
class FaultStats:
    """How many faults a policy actually injected."""

    reads: int = 0
    writes: int = 0
    read_faults: int = 0
    write_faults: int = 0
    torn_writes: int = 0
    corruptions: int = 0


class TornPage:
    """Payload left behind by a torn (partially persisted) write."""

    def __init__(self, prefix: Any):
        self.prefix = prefix

    def __repr__(self) -> str:
        return f"TornPage(prefix={self.prefix!r})"


class CorruptedPayload:
    """Opaque stand-in for a payload whose type cannot be bit-flipped."""

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptedPayload({self.original!r})"


class FaultPolicy:
    """Seedable Bernoulli fault source with independent per-kind rates.

    Rates are probabilities in ``[0, 1]``:

    * ``read_fail_rate`` — a read raises :class:`IOFaultError` before any
      data is returned (a device error);
    * ``write_fail_rate`` — a write or allocation raises
      :class:`IOFaultError` and leaves the store unchanged;
    * ``torn_write_rate`` — a write "succeeds" but persists only a prefix
      of the payload (:class:`TornPage`), the classic crash-mid-write;
    * ``corrupt_rate`` — a read returns silently corrupted data (one
      element/bit perturbed) instead of failing loudly.

    A zero rate never consumes randomness, so the draw sequence — and
    hence the exact fault schedule — depends only on the seed and the
    non-zero rates.  ``clone()`` returns a fresh policy with the original
    seed, for replaying a schedule.
    """

    def __init__(
        self,
        read_fail_rate: float = 0.0,
        write_fail_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: Optional[int] = None,
    ):
        for name, rate in (
            ("read_fail_rate", read_fail_rate),
            ("write_fail_rate", write_fail_rate),
            ("torn_write_rate", torn_write_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise InvalidParameterError(
                    f"{name} must lie in [0, 1], got {rate}"
                )
        self.read_fail_rate = read_fail_rate
        self.write_fail_rate = write_fail_rate
        self.torn_write_rate = torn_write_rate
        self.corrupt_rate = corrupt_rate
        self.seed = seed
        self._rng = random.Random(seed)

    def clone(self) -> "FaultPolicy":
        """Fresh policy with the same rates and the same seed."""
        return FaultPolicy(
            self.read_fail_rate,
            self.write_fail_rate,
            self.torn_write_rate,
            self.corrupt_rate,
            self.seed,
        )

    def _draw(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._rng.random() < rate

    def next_read_fails(self) -> bool:
        return self._draw(self.read_fail_rate)

    def next_write_fails(self) -> bool:
        return self._draw(self.write_fail_rate)

    def next_write_tears(self) -> bool:
        return self._draw(self.torn_write_rate)

    def next_read_corrupts(self) -> bool:
        return self._draw(self.corrupt_rate)

    def corrupt(self, payload: Any) -> Any:
        """A silently corrupted copy of ``payload`` (original untouched)."""
        return _corrupt(payload, self._rng)

    def tear(self, payload: Any) -> TornPage:
        """The torn-write remnant of ``payload``."""
        try:
            prefix = payload[: max(0, len(payload) // 2)]
        except TypeError:
            prefix = None
        return TornPage(prefix)

    def __repr__(self) -> str:
        return (
            f"FaultPolicy(read_fail_rate={self.read_fail_rate}, "
            f"write_fail_rate={self.write_fail_rate}, "
            f"torn_write_rate={self.torn_write_rate}, "
            f"corrupt_rate={self.corrupt_rate}, seed={self.seed})"
        )


def _corrupt(payload: Any, rng: random.Random) -> Any:
    """One-element / one-bit perturbation of a payload copy."""
    import numpy as np

    if isinstance(payload, np.ndarray) and payload.size:
        flat = payload.copy().reshape(-1)
        idx = rng.randrange(flat.size)
        flat[idx] = -flat[idx] - 1
        return flat.reshape(payload.shape)
    if isinstance(payload, (bytes, bytearray)) and len(payload):
        idx = rng.randrange(len(payload))
        mutated = bytearray(payload)
        mutated[idx] ^= 1 << rng.randrange(8)
        return bytes(mutated) if isinstance(payload, bytes) else mutated
    if isinstance(payload, str) and payload:
        idx = rng.randrange(len(payload))
        flipped = chr((ord(payload[idx]) ^ 1) & 0x10FFFF) or "?"
        return payload[:idx] + flipped + payload[idx + 1 :]
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ 1
    if isinstance(payload, float):
        return -payload - 1.0
    if isinstance(payload, (list, tuple)) and len(payload):
        idx = rng.randrange(len(payload))
        items = list(payload)
        items[idx] = _corrupt(items[idx], rng)
        return type(payload)(items) if isinstance(payload, tuple) else items
    if isinstance(payload, dict) and payload:
        key = rng.choice(sorted(payload, key=repr))
        mutated = dict(payload)
        mutated[key] = _corrupt(mutated[key], rng)
        return mutated
    return CorruptedPayload(payload)


class FaultyPageStore:
    """A :class:`~repro.storage.PageStore` front that injects faults.

    Mirrors the ``PageStore`` API exactly, so it can substitute anywhere a
    page store is expected (including under a
    :class:`~repro.reliability.RetryingPageStore`).  Injected read faults
    fire *before* the inner store is touched — a device error returns no
    data and costs no logical read — while corruption happens *after* a
    successful read, so accounting matches the fault-free store.
    """

    def __init__(self, inner: PageStore, policy: FaultPolicy):
        self.inner = inner
        self.policy = policy
        self.fault_stats = FaultStats()

    # -- delegated surface -------------------------------------------------

    @property
    def page_size_bytes(self) -> int:
        return self.inner.page_size_bytes

    @property
    def buffer_pages(self) -> int:
        return self.inner.buffer_pages

    @property
    def stats(self):
        return self.inner.stats

    def __len__(self) -> int:
        return len(self.inner)

    def reset_stats(self) -> None:
        self.inner.reset_stats()
        self.fault_stats = FaultStats()

    # -- faulting operations ----------------------------------------------

    @staticmethod
    def _count_fault(kind: str) -> None:
        """Mirror an injected fault into the metrics registry."""
        if _obs.registry is not None:
            _obs.registry.inc("reliability.faults_injected", kind=kind)

    def allocate(self, payload: Any) -> int:
        self.fault_stats.writes += 1
        if self.policy.next_write_fails():
            self.fault_stats.write_faults += 1
            self._count_fault("write")
            raise IOFaultError("injected write fault during page allocation")
        if self.policy.next_write_tears():
            self.fault_stats.torn_writes += 1
            self._count_fault("torn_write")
            return self.inner.allocate(self.policy.tear(payload))
        return self.inner.allocate(payload)

    def write(self, page_id: int, payload: Any) -> None:
        self.fault_stats.writes += 1
        if self.policy.next_write_fails():
            self.fault_stats.write_faults += 1
            self._count_fault("write")
            raise IOFaultError(f"injected write fault on page {page_id}")
        if self.policy.next_write_tears():
            self.fault_stats.torn_writes += 1
            self._count_fault("torn_write")
            self.inner.write(page_id, self.policy.tear(payload))
            return
        self.inner.write(page_id, payload)

    def read(self, page_id: int) -> Any:
        self.fault_stats.reads += 1
        if self.policy.next_read_fails():
            self.fault_stats.read_faults += 1
            self._count_fault("read")
            raise IOFaultError(f"injected read fault on page {page_id}")
        payload = self.inner.read(page_id)
        if self.policy.next_read_corrupts():
            self.fault_stats.corruptions += 1
            self._count_fault("corruption")
            return self.policy.corrupt(payload)
        return payload
