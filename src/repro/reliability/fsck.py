"""Structural fsck: verify the geometric invariants of metric indexes.

Checksums (PR 1) prove the *bytes* of an index are the bytes that were
written; they prove nothing about the *semantics*.  An M-tree page can
pass every CRC while carrying a covering radius that no longer contains
its subtree — and then range and k-NN pruning, which rest on exactly that
invariant (Section 3 of the paper: ``d(Q, O_r) > r_Q + r(O_r)`` excludes
the subtree), silently drops correct answers.  This module is the
storage-engine answer: an offline/foreground **fsck** that walks an
M-tree or vp-tree and verifies every geometric invariant, a typed
:class:`FsckReport` of the violations, a **page-graph** checker for
orphaned and doubly-referenced pages, and a :func:`repair_mtree` path
that rebuilds a damaged tree from its surviving objects via the bulk
loader and commits through a
:class:`~repro.service.GenerationStore`.

Checked invariants (M-tree):

* **containment** — every leaf object lies within the covering radius of
  *each* ancestor routing entry (the pruning-correctness invariant);
* **parent distances** — every stored ``d(O, P(O))`` matches
  recomputation (the precomputed-distance optimisation of VLDB'97);
* **entry consistency** — leaves hold only leaf entries, internal nodes
  only routing entries with non-negative radii, capacities respected,
  internal nodes carry >= 2 entries;
* **shape** — all leaves at one depth, no node reachable twice;
* **accounting** — stored object count matches the tree's, no duplicate
  oids.

The vp-tree variant checks the shell invariant (every descendant of
child ``i`` at distance in ``(mu_{i-1}, mu_i]`` from the vantage point),
sorted cutoffs, and the same shape/accounting rules.

The per-node checks are factored as *units* (:func:`mtree_scrub_units` /
:func:`check_mtree_unit`) so the online :class:`~repro.reliability.scrub.
Scrubber` can verify one node at a time under a time budget while
queries run; :func:`fsck_mtree` is simply "all units plus the global
checks, now".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import (
    DeadlineExceededError,
    OperationCancelledError,
    StructuralCorruptionError,
)
from ..observability import state as _obs

__all__ = [
    "FAULT_KINDS",
    "StructuralFault",
    "FsckReport",
    "ScrubUnit",
    "mtree_scrub_units",
    "check_mtree_unit",
    "fsck_mtree",
    "vptree_scrub_units",
    "check_vptree_unit",
    "fsck_vptree",
    "materialize_page_graph",
    "fsck_page_graph",
    "fsck_ingest",
    "RepairOutcome",
    "repair_mtree",
    "repair_vptree",
]

#: Default relative/absolute tolerance for distance comparisons — floats
#: recomputed through a different code path may differ in the last ulp.
DEFAULT_TOLERANCE = 1e-7

#: Every fault kind a structural check can emit, for exhaustive matching
#: in tests and the chaos CI job.
FAULT_KINDS = (
    "radius_violation",
    "parent_distance_skew",
    "entry_type_mismatch",
    "negative_radius",
    "capacity_overflow",
    "undersized_internal",
    "unbalanced_leaves",
    "object_count_mismatch",
    "duplicate_oid",
    "doubly_referenced_page",
    "orphan_page",
    "dangling_page_ref",
    "unreadable_page",
    "cutoff_violation",
    "cutoffs_unsorted",
    "cutoff_shape_mismatch",
    "wal_damage",
    "wal_gap",
    "snapshot_wal_discontinuity",
    "checkpoint_unreadable",
)


@dataclass(frozen=True)
class StructuralFault:
    """One violated structural invariant.

    ``kind`` is one of :data:`FAULT_KINDS`; ``where`` locates the node
    (a root-relative path like ``root/2/0``); ``detail`` is the
    human-readable evidence; ``oid`` / ``node_id`` identify the object
    and page involved when known.

    ``quarantine_node`` names the node whose subtree must be walled off
    to make queries safe again.  For violations of an *ancestor*
    constraint (a shrunken covering radius, a shrunken vp cutoff) that
    is not the witnessing node but the root of the subtree bounded by
    the corrupt value: the damage makes the *ancestor's pruning test*
    lie, so only skipping the whole bounded subtree — before the pruning
    test runs — prevents silently short answers.  It never appears in
    ``to_dict`` (it is an in-memory object reference, not evidence).
    """

    kind: str
    where: str
    detail: str
    oid: Optional[int] = None
    node_id: Optional[int] = None
    quarantine_node: Any = field(default=None, compare=False, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``fsck --json``)."""
        return {
            "kind": self.kind,
            "where": self.where,
            "detail": self.detail,
            "oid": self.oid,
            "node_id": self.node_id,
        }

    def __str__(self) -> str:
        return f"[{self.kind}] {self.where}: {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one structural verification pass."""

    tree_kind: str  # "mtree" | "vptree" | "page-graph"
    nodes_checked: int = 0
    objects_seen: int = 0
    faults: List[StructuralFault] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.faults

    def kinds(self) -> List[str]:
        """The distinct fault kinds found (sorted)."""
        return sorted({fault.kind for fault in self.faults})

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``fsck --json``)."""
        return {
            "tree_kind": self.tree_kind,
            "nodes_checked": self.nodes_checked,
            "objects_seen": self.objects_seen,
            "ok": self.ok,
            "fault_kinds": self.kinds(),
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def render(self) -> str:
        """Human-readable report, one line per fault."""
        head = (
            f"fsck {self.tree_kind}: {self.nodes_checked} node(s), "
            f"{self.objects_seen} object(s): "
            + ("clean" if self.ok else f"{len(self.faults)} fault(s)")
        )
        return "\n".join([head] + [f"  {fault}" for fault in self.faults])

    def raise_if_bad(self) -> None:
        """Raise :class:`StructuralCorruptionError` unless the walk was
        clean."""
        if not self.ok:
            raise StructuralCorruptionError(
                f"{self.tree_kind} failed fsck: {len(self.faults)} "
                f"structural fault(s), kinds {self.kinds()}",
                faults=self.faults,
            )


def _mirror_faults(faults: Sequence[StructuralFault]) -> None:
    reg = _obs.registry
    if reg is not None:
        for fault in faults:
            reg.inc("reliability.structural_faults", kind=fault.kind)


# ---------------------------------------------------------------------------
# M-tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScrubUnit:
    """One node plus the ancestor context needed to verify it alone.

    ``ancestors`` holds ``(routing_obj, covering_radius)`` for every
    routing entry on the root-to-node path (nearest last);
    ``constraints`` is the vp-tree analogue: ``(vantage_obj, lower,
    upper)`` shell bounds.  ``path`` holds, aligned index-for-index with
    ``ancestors``/``constraints``, the subtree-root *node* each
    constraint bounds — the quarantine target when that constraint turns
    out to be corrupt.  Snapshot once, verify incrementally — the unit
    is self-contained, so the scrubber never re-walks the path.
    """

    node: Any
    where: str
    depth: int
    ancestors: Tuple[Tuple[Any, float], ...] = ()
    constraints: Tuple[Tuple[Any, float, float], ...] = ()
    path: Tuple[Any, ...] = ()
    is_root: bool = False


def mtree_scrub_units(tree: Any) -> List[ScrubUnit]:
    """Every node of ``tree`` as a self-contained verification unit.

    Also performs the reference-graph sweep: a node reachable through
    two routing entries is reported by :func:`fsck_mtree` as a
    ``doubly_referenced_page`` (the walk does not descend into it twice).
    """
    units: List[ScrubUnit] = []
    if tree.root is None:
        return units
    seen: set = set()

    def walk(node, where, depth, ancestors, path):
        units.append(
            ScrubUnit(
                node=node,
                where=where,
                depth=depth,
                ancestors=tuple(ancestors),
                path=tuple(path),
                is_root=node is tree.root,
            )
        )
        seen.add(id(node))
        if node.is_leaf:
            return
        for pos, entry in enumerate(node.entries):
            child = getattr(entry, "child", None)
            if child is None or id(child) in seen:
                continue  # fsck_mtree reports the aliasing fault
            walk(
                child,
                f"{where}/{pos}",
                depth + 1,
                ancestors + [(entry.obj, entry.radius)],
                path + [child],
            )

    walk(tree.root, "root", 1, [], [])
    return units


def check_mtree_unit(
    tree: Any, unit: ScrubUnit, tolerance: float = DEFAULT_TOLERANCE
) -> List[StructuralFault]:
    """Verify one M-tree node against its snapshot context.

    Containment is checked for leaf objects (the query-correctness
    invariant); parent distances and entry consistency for every node.
    """
    from ..mtree.entries import LeafEntry, RoutingEntry

    node = unit.node
    metric = tree.metric
    faults: List[StructuralFault] = []
    capacity = (
        tree.layout.leaf_capacity if node.is_leaf else tree.layout.internal_capacity
    )
    if len(node.entries) > capacity:
        faults.append(
            StructuralFault(
                "capacity_overflow",
                unit.where,
                f"{len(node.entries)} entries exceed capacity {capacity}",
                node_id=id(node),
            )
        )
    if not node.is_leaf and len(node.entries) < 2 and not unit.is_root:
        faults.append(
            StructuralFault(
                "undersized_internal",
                unit.where,
                f"internal node holds {len(node.entries)} entry(ies); "
                "the structural minimum is 2",
                node_id=id(node),
            )
        )
    expected_type = LeafEntry if node.is_leaf else RoutingEntry
    parent_obj = unit.ancestors[-1][0] if unit.ancestors else None
    for pos, entry in enumerate(node.entries):
        if not isinstance(entry, expected_type):
            faults.append(
                StructuralFault(
                    "entry_type_mismatch",
                    f"{unit.where}[{pos}]",
                    f"{type(entry).__name__} inside a "
                    f"{'leaf' if node.is_leaf else 'internal'} node",
                    node_id=id(node),
                )
            )
            continue
        radius = getattr(entry, "radius", None)
        if radius is not None and radius < 0:
            faults.append(
                StructuralFault(
                    "negative_radius",
                    f"{unit.where}[{pos}]",
                    f"covering radius {radius} is negative",
                    node_id=id(node),
                )
            )
        if parent_obj is not None:
            expected = metric.distance(entry.obj, parent_obj)
            if abs(entry.dist_to_parent - expected) > tolerance * (
                1 + expected
            ):
                faults.append(
                    StructuralFault(
                        "parent_distance_skew",
                        f"{unit.where}[{pos}]",
                        f"stored d(O, P(O)) = {entry.dist_to_parent:.6g} "
                        f"but recomputation gives {expected:.6g}",
                        oid=getattr(entry, "oid", None),
                        node_id=id(node),
                    )
                )
        if node.is_leaf:
            for level, (robj, rradius) in enumerate(unit.ancestors):
                dist = metric.distance(entry.obj, robj)
                if dist > rradius * (1 + tolerance) + tolerance:
                    # The corrupt value is the *ancestor's* covering
                    # radius: quarantining must wall off the whole
                    # subtree it bounds, or the ancestor's pruning test
                    # keeps lying to queries that never reach this leaf.
                    faults.append(
                        StructuralFault(
                            "radius_violation",
                            f"{unit.where}[{pos}]",
                            f"object {entry.oid} at distance {dist:.6g} "
                            f"escapes covering radius {rradius:.6g}",
                            oid=entry.oid,
                            node_id=id(node),
                            quarantine_node=(
                                unit.path[level]
                                if level < len(unit.path)
                                else None
                            ),
                        )
                    )
                    break  # one escape condemns the entry; move on
    return faults


def _mtree_global_faults(tree: Any, units: Sequence[ScrubUnit]):
    """Shape + accounting checks that need the whole walk: balance,
    object count, duplicate oids, doubly-referenced nodes."""
    faults: List[StructuralFault] = []
    leaf_depths = {unit.depth for unit in units if unit.node.is_leaf}
    if len(leaf_depths) > 1:
        faults.append(
            StructuralFault(
                "unbalanced_leaves",
                "root",
                f"leaves at depths {sorted(leaf_depths)}; "
                "an M-tree is balanced by construction",
            )
        )
    # Reference sweep: every child must be reachable through exactly one
    # routing entry.
    ref_counts: Dict[int, int] = {}
    for unit in units:
        if unit.node.is_leaf:
            continue
        for entry in unit.node.entries:
            child = getattr(entry, "child", None)
            if child is not None:
                ref_counts[id(child)] = ref_counts.get(id(child), 0) + 1
    for unit in units:
        if ref_counts.get(id(unit.node), 0) > 1:
            faults.append(
                StructuralFault(
                    "doubly_referenced_page",
                    unit.where,
                    f"node referenced by {ref_counts[id(unit.node)]} "
                    "routing entries",
                    node_id=id(unit.node),
                )
            )
    oids: List[int] = []
    for unit in units:
        if unit.node.is_leaf:
            oids.extend(entry.oid for entry in unit.node.entries)
    if len(set(oids)) != len(oids):
        dupes = sorted({oid for oid in oids if oids.count(oid) > 1})
        faults.append(
            StructuralFault(
                "duplicate_oid",
                "root",
                f"oids stored more than once: {dupes[:10]}",
            )
        )
    if len(oids) != len(tree):
        faults.append(
            StructuralFault(
                "object_count_mismatch",
                "root",
                f"{len(oids)} objects stored but the tree claims "
                f"{len(tree)} (dropped or duplicated entries)",
            )
        )
    return faults, len(oids)


def fsck_mtree(
    tree: Any,
    tolerance: float = DEFAULT_TOLERANCE,
    deadline: Optional[Any] = None,
) -> FsckReport:
    """Full structural verification of an M-tree.

    ``deadline`` (a :class:`~repro.context.Deadline` / ``Context``) is
    polled once per node, so a foreground fsck can be time-bounded; use
    the :class:`~repro.reliability.scrub.Scrubber` for the resumable
    background variant.
    """
    report = FsckReport(tree_kind="mtree")
    units = mtree_scrub_units(tree)
    for unit in units:
        if deadline is not None:
            deadline.check("mtree fsck")
        report.faults.extend(check_mtree_unit(tree, unit, tolerance))
        report.nodes_checked += 1
    global_faults, n_objects = _mtree_global_faults(tree, units)
    report.faults.extend(global_faults)
    report.objects_seen = n_objects
    _mirror_faults(report.faults)
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.fsck_runs", kind="mtree")
    return report


# ---------------------------------------------------------------------------
# vp-tree
# ---------------------------------------------------------------------------


def vptree_scrub_units(tree: Any) -> List[ScrubUnit]:
    """Every vp-tree node as a self-contained verification unit."""
    units: List[ScrubUnit] = []
    if tree.root is None:
        return units
    seen: set = set()

    def walk(node, where, depth, constraints, path):
        units.append(
            ScrubUnit(
                node=node,
                where=where,
                depth=depth,
                constraints=tuple(constraints),
                path=tuple(path),
                is_root=node is tree.root,
            )
        )
        seen.add(id(node))
        previous_cut = 0.0
        for pos, (cut, child) in enumerate(zip(node.cutoffs, node.children)):
            if child is not None and id(child) not in seen:
                walk(
                    child,
                    f"{where}/{pos}",
                    depth + 1,
                    constraints + [(node.obj, previous_cut, cut)],
                    path + [child],
                )
            previous_cut = cut

    walk(tree.root, "root", 1, [], [])
    return units


def check_vptree_unit(
    tree: Any, unit: ScrubUnit, tolerance: float = DEFAULT_TOLERANCE
) -> List[StructuralFault]:
    """Verify one vp-tree node: shell membership + cutoff shape."""
    node = unit.node
    metric = tree.metric
    faults: List[StructuralFault] = []
    if len(node.cutoffs) != len(node.children):
        faults.append(
            StructuralFault(
                "cutoff_shape_mismatch",
                unit.where,
                f"{len(node.cutoffs)} cutoffs for "
                f"{len(node.children)} children",
                node_id=id(node),
            )
        )
    if node.cutoffs != sorted(node.cutoffs):
        faults.append(
            StructuralFault(
                "cutoffs_unsorted",
                unit.where,
                f"cutoffs {node.cutoffs} are not non-decreasing",
                node_id=id(node),
            )
        )
    for level, (vantage_obj, lower, upper) in enumerate(unit.constraints):
        dist = metric.distance(vantage_obj, node.obj)
        if not (lower - tolerance <= dist <= upper + tolerance * (1 + upper)):
            # As for M-tree radii: the corrupt cutoff lives in the
            # ancestor, so the subtree it bounds is the quarantine unit.
            faults.append(
                StructuralFault(
                    "cutoff_violation",
                    unit.where,
                    f"object {node.oid} at distance {dist:.6g} outside "
                    f"its shell ({lower:.6g}, {upper:.6g}]",
                    oid=node.oid,
                    node_id=id(node),
                    quarantine_node=(
                        unit.path[level]
                        if level < len(unit.path)
                        else None
                    ),
                )
            )
            break
    return faults


def fsck_vptree(
    tree: Any,
    tolerance: float = DEFAULT_TOLERANCE,
    deadline: Optional[Any] = None,
) -> FsckReport:
    """Full structural verification of a vp-tree."""
    report = FsckReport(tree_kind="vptree")
    units = vptree_scrub_units(tree)
    for unit in units:
        if deadline is not None:
            deadline.check("vptree fsck")
        report.faults.extend(check_vptree_unit(tree, unit, tolerance))
        report.nodes_checked += 1
    # One object per node; reference sweep mirrors the M-tree one.
    ref_counts: Dict[int, int] = {}
    for unit in units:
        for child in unit.node.children:
            if child is not None:
                ref_counts[id(child)] = ref_counts.get(id(child), 0) + 1
    for unit in units:
        if ref_counts.get(id(unit.node), 0) > 1:
            report.faults.append(
                StructuralFault(
                    "doubly_referenced_page",
                    unit.where,
                    f"node referenced by {ref_counts[id(unit.node)]} "
                    "parents",
                    node_id=id(unit.node),
                )
            )
    oids = [unit.node.oid for unit in units]
    if len(set(oids)) != len(oids):
        dupes = sorted({oid for oid in oids if oids.count(oid) > 1})
        report.faults.append(
            StructuralFault(
                "duplicate_oid",
                "root",
                f"oids stored more than once: {dupes[:10]}",
            )
        )
    if len(oids) != len(tree):
        report.faults.append(
            StructuralFault(
                "object_count_mismatch",
                "root",
                f"{len(oids)} objects stored but the tree claims "
                f"{len(tree)}",
            )
        )
    report.objects_seen = len(oids)
    _mirror_faults(report.faults)
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.fsck_runs", kind="vptree")
    return report


# ---------------------------------------------------------------------------
# Page graph
# ---------------------------------------------------------------------------


def materialize_page_graph(tree: Any, store: Any) -> int:
    """Write ``tree``'s node graph into ``store`` as one page per node.

    Each payload is ``{"is_leaf", "n_entries", "children": [page ids]}``
    — the reference structure a paged deployment persists.  Returns the
    root's page id.  Chaos tests corrupt the resulting pages (drop a
    child reference, alias two, allocate an unreachable page) and assert
    :func:`fsck_page_graph` reports every one.
    """
    if tree.root is None:
        from ..exceptions import EmptyTreeError

        raise EmptyTreeError("cannot materialise an empty tree")
    page_of: Dict[int, int] = {}
    order: List[Any] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if id(node) in page_of:
            continue
        page_of[id(node)] = store.allocate(None)  # placeholder
        order.append(node)
        if not node.is_leaf:
            stack.extend(entry.child for entry in node.entries)
    for node in order:
        children = (
            []
            if node.is_leaf
            else [page_of[id(entry.child)] for entry in node.entries]
        )
        store.write(
            page_of[id(node)],
            {
                "is_leaf": node.is_leaf,
                "n_entries": len(node.entries),
                "children": children,
            },
        )
    return page_of[id(tree.root)]


def fsck_page_graph(store: Any, root_page: int) -> FsckReport:
    """Verify the page reference graph rooted at ``root_page``.

    Faults: ``dangling_page_ref`` (a child id that cannot be read),
    ``doubly_referenced_page`` (a page reachable through two parents),
    ``orphan_page`` (an allocated page no path from the root reaches),
    ``unreadable_page`` (a payload that is not a page dict).
    """
    report = FsckReport(tree_kind="page-graph")
    ref_counts: Dict[int, int] = {root_page: 1}
    reachable: set = set()
    stack = [root_page]
    while stack:
        page_id = stack.pop()
        if page_id in reachable:
            continue
        reachable.add(page_id)
        try:
            payload = store.read(page_id)
        except (DeadlineExceededError, OperationCancelledError):
            # fsck under a budget stops cleanly rather than recording
            # cancellation as structural damage.
            raise
        except Exception as exc:  # noqa: BLE001 — any failure is a fault
            report.faults.append(
                StructuralFault(
                    "dangling_page_ref",
                    f"page {page_id}",
                    f"referenced page cannot be read: "
                    f"{type(exc).__name__}: {exc}",
                    node_id=page_id,
                )
            )
            continue
        report.nodes_checked += 1
        if not isinstance(payload, dict) or "children" not in payload:
            report.faults.append(
                StructuralFault(
                    "unreadable_page",
                    f"page {page_id}",
                    f"payload {type(payload).__name__} is not a page "
                    "record",
                    node_id=page_id,
                )
            )
            continue
        for child in payload["children"]:
            ref_counts[child] = ref_counts.get(child, 0) + 1
            stack.append(child)
    for page_id, count in sorted(ref_counts.items()):
        if count > 1:
            report.faults.append(
                StructuralFault(
                    "doubly_referenced_page",
                    f"page {page_id}",
                    f"page referenced by {count} parents",
                    node_id=page_id,
                )
            )
    all_pages = set(store.page_ids())
    for page_id in sorted(all_pages - reachable):
        report.faults.append(
            StructuralFault(
                "orphan_page",
                f"page {page_id}",
                "allocated page unreachable from the root",
                node_id=page_id,
            )
        )
    _mirror_faults(report.faults)
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.fsck_runs", kind="page_graph")
    return report


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------


@dataclass
class RepairOutcome:
    """What :func:`repair_mtree` recovered.

    ``tree`` is the rebuilt index; ``report`` its post-repair fsck (clean
    unless the damage reached the object payloads themselves);
    ``generation`` the :class:`~repro.service.GenerationStore` generation
    the repair committed, when a store was given.
    """

    tree: Any
    n_recovered: int
    n_lost: int
    report: FsckReport
    generation: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        lines = [
            f"repair: {self.n_recovered} object(s) recovered, "
            f"{self.n_lost} lost"
        ]
        if self.generation is not None:
            lines.append(f"committed as generation {self.generation}")
        lines.append(self.report.render())
        return "\n".join(lines)


def repair_mtree(
    tree: Any,
    seed: int = 0,
    quarantine: Optional[Any] = None,
    store: Optional[Any] = None,
    artifact_name: str = "tree",
    encode: Optional[Any] = None,
) -> RepairOutcome:
    """Rebuild a structurally damaged M-tree from its surviving objects.

    Structural faults (shrunk radii, skewed parent distances, dropped
    entries) damage the *index*, not the object payloads, so every leaf
    object still reachable — including those inside quarantined pages —
    is harvested, de-duplicated by oid, and handed to the bulk loader,
    which re-derives every radius and parent distance from scratch.  The
    whole tree is rebuilt rather than splicing subtrees: bulk-loaded
    subtrees need not match the height of the hole they would fill, and
    a full rebuild restores balance by construction.

    With ``store`` (a :class:`~repro.service.GenerationStore`) the
    repaired tree is serialised through
    :mod:`repro.persistence` and committed as a new generation, so a
    crash mid-repair leaves the previous generation intact.  A non-empty
    ``quarantine`` is cleared once the rebuilt tree passes fsck.
    """
    from ..mtree.bulkload import bulk_load

    recovered: Dict[int, Any] = {}
    for oid, obj in tree.iter_objects():
        if oid not in recovered:
            recovered[oid] = obj
    oids = sorted(recovered)
    objects = [recovered[oid] for oid in oids]
    n_lost = max(0, len(tree) - len(oids))
    new_tree = bulk_load(
        objects, tree.metric, tree.layout, seed=seed, oids=oids
    )
    report = fsck_mtree(new_tree)
    generation = None
    if store is not None and report.ok:
        from ..persistence import _default_encode, mtree_to_dict
        from .integrity import dumps_artifact

        text = dumps_artifact(
            mtree_to_dict(new_tree, encode or _default_encode)
        )
        store.save({artifact_name: text})
        generation = store.generation
    if quarantine is not None and report.ok:
        quarantine.clear()
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.repairs", ok=report.ok)
    return RepairOutcome(
        tree=new_tree,
        n_recovered=len(oids),
        n_lost=n_lost,
        report=report,
        generation=generation,
    )


def repair_vptree(
    tree: Any,
    seed: int = 0,
    quarantine: Optional[Any] = None,
    store: Optional[Any] = None,
    artifact_name: str = "tree",
    encode: Optional[Any] = None,
) -> RepairOutcome:
    """Rebuild a structurally damaged vp-tree from its surviving objects.

    The vp-tree sibling of :func:`repair_mtree`, and the repair rung of
    the cluster lifecycle ladder
    (:class:`~repro.cluster.lifecycle.ClusterLifecycle`): structural
    faults (shrunken cutoffs, unsorted cutoffs, aliased nodes) damage the
    index, not the object payloads, so every node's object is harvested,
    de-duplicated by oid, and rebuilt from scratch — cutoffs and shells
    re-derived by construction.  With ``store`` the repaired tree is
    committed as a new :class:`~repro.service.GenerationStore`
    generation; a non-empty ``quarantine`` is cleared once the rebuilt
    tree passes fsck.
    """
    from ..vptree.tree import VPTree

    recovered: Dict[int, Any] = {}
    stack = [tree.root] if tree.root is not None else []
    visited: set = set()
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        if node.oid not in recovered:
            recovered[node.oid] = node.obj
        stack.extend(c for c in node.children if c is not None)
    oids = sorted(recovered)
    objects = [recovered[oid] for oid in oids]
    n_lost = max(0, len(tree) - len(oids))
    rebuilt = VPTree.build(
        objects,
        tree.metric,
        arity=tree.arity,
        vantage_selection=tree.vantage_selection,
        seed=seed,
    )
    # VPTree.build assigns positional oids; remap to the recovered ones.
    if oids != list(range(len(oids))):
        remap = {pos: oid for pos, oid in enumerate(oids)}
        nodes = [rebuilt.root] if rebuilt.root is not None else []
        while nodes:
            node = nodes.pop()
            node.oid = remap[node.oid]
            nodes.extend(c for c in node.children if c is not None)
    report = fsck_vptree(rebuilt)
    generation = None
    if store is not None and report.ok:
        from ..persistence import _default_encode, vptree_to_dict
        from .integrity import dumps_artifact

        text = dumps_artifact(
            vptree_to_dict(rebuilt, encode or _default_encode)
        )
        store.save({artifact_name: text})
        generation = store.generation
    if quarantine is not None and report.ok:
        quarantine.clear()
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.repairs", ok=report.ok)
    return RepairOutcome(
        tree=rebuilt,
        n_recovered=len(oids),
        n_lost=n_lost,
        report=report,
        generation=generation,
    )


def fsck_ingest(directory: Any) -> FsckReport:
    """Verify snapshot ↔ WAL continuity of an ingest directory.

    Read-only.  ``directory`` is an :class:`~repro.ingest.IngestService`
    root (holding ``snapshots/`` and ``wal/``).  Checks, in order:

    * the committed snapshot bundle loads and matches its manifest
      digests, and the checkpoint metadata is the expected format
      (``checkpoint_unreadable`` otherwise);
    * every WAL segment's framing is intact up to at most one benign
      torn tail (``wal_damage`` for anything else — bit flips, bad
      magic, mid-log truncation);
    * the sequence numbers the snapshot does *not* cover form one
      contiguous run starting right after the checkpointed high-water
      mark: an interior hole is a ``wal_gap``, a missing head (a
      segment pruned or lost below the first replayable record) is a
      ``snapshot_wal_discontinuity``.  Either way acknowledged inserts
      would vanish on replay, which is exactly what an fsck must say
      out loud before anyone trusts a recovery.

    ``nodes_checked`` counts WAL segments, ``objects_seen`` valid
    records.
    """
    import json
    from pathlib import Path

    from ..exceptions import CorruptedDataError, FormatVersionError
    from ..ingest.wal import read_wal
    from ..service.recovery import GenerationStore

    directory = Path(directory)
    report = FsckReport(tree_kind="ingest")
    checkpoint_seq = 0
    store = GenerationStore(directory / "snapshots")
    try:
        if store.generation is not None:
            bundle = store.load()
            ckpt = json.loads(bundle["checkpoint"])
            if ckpt.get("format") != "metricost-ingest-checkpoint-v1":
                raise FormatVersionError(
                    f"unexpected checkpoint format {ckpt.get('format')!r}"
                )
            checkpoint_seq = int(ckpt["seq"])
    except (
        CorruptedDataError,
        FormatVersionError,
        KeyError,
        ValueError,
    ) as exc:
        report.faults.append(
            StructuralFault(
                kind="checkpoint_unreadable",
                where="snapshots",
                detail=str(exc),
            )
        )
    wal = read_wal(directory / "wal")
    report.nodes_checked = len(wal.segments)
    report.objects_seen = len(wal.records)
    for damage in wal.damage:
        report.faults.append(
            StructuralFault(
                kind="wal_damage",
                where=damage.segment,
                detail=f"{damage.reason} at byte {damage.offset}",
            )
        )
    for lo, hi in wal.gaps:
        if hi > checkpoint_seq:
            report.faults.append(
                StructuralFault(
                    kind="wal_gap",
                    where="wal",
                    detail=(
                        f"records {max(lo, checkpoint_seq + 1)}..{hi} "
                        f"missing past checkpoint seq {checkpoint_seq}"
                    ),
                )
            )
    replayable = [r.seq for r in wal.records if r.seq > checkpoint_seq]
    if replayable and min(replayable) > checkpoint_seq + 1:
        report.faults.append(
            StructuralFault(
                kind="snapshot_wal_discontinuity",
                where="wal",
                detail=(
                    f"first replayable record is seq {min(replayable)} "
                    f"but the snapshot covers only up to "
                    f"{checkpoint_seq}: acknowledged records "
                    f"{checkpoint_seq + 1}..{min(replayable) - 1} are gone"
                ),
            )
        )
    reg = _obs.registry
    if reg is not None:
        reg.inc("reliability.fsck_runs", kind="ingest", ok=report.ok)
    return report
