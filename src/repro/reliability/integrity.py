"""Checksummed artifact envelopes.

Every artifact :mod:`repro.persistence` writes (histogram, N-MCM/L-MCM
statistics, M-tree, vp-tree) is wrapped in an envelope carrying CRC32
checksums of the exact serialised body bytes — one checksum per
``block_size`` block plus one over the whole body.  On load the blocks
are re-verified, so a flipped bit is not just *detected* but *localised*:
:class:`~repro.exceptions.CorruptedDataError` reports the byte offset of
the first mismatching block.

The envelope is itself JSON::

    {"kind": "checksummed-artifact", "version": 1, "algo": "crc32",
     "length": 982, "block_size": 1024, "block_crcs": [...],
     "crc32": 4023233417, "body": "{...the artifact...}"}

Loading is backward compatible by default: a file whose top level is not
an envelope is treated as a legacy unchecksummed artifact and passed
through — but each such load increments the
``reliability.legacy_artifact_loads`` metrics counter, and ``strict=True``
rejects legacy payloads outright (the posture for deployments whose whole
corpus has been rewritten with envelopes).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..exceptions import (
    CorruptedDataError,
    FormatVersionError,
    InvalidParameterError,
)
from ..observability import state as _obs

__all__ = [
    "ENVELOPE_KIND",
    "ENVELOPE_VERSION",
    "DEFAULT_BLOCK_SIZE",
    "ArtifactReport",
    "wrap_artifact",
    "unwrap_artifact",
    "is_wrapped",
    "dumps_artifact",
    "loads_artifact",
    "verify_file",
]

ENVELOPE_KIND = "checksummed-artifact"
ENVELOPE_VERSION = 1
DEFAULT_BLOCK_SIZE = 1024

PathLike = Union[str, Path]


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _block_crcs(data: bytes, block_size: int) -> List[int]:
    return [
        _crc32(data[offset : offset + block_size])
        for offset in range(0, len(data), block_size)
    ]


def is_wrapped(doc: Any) -> bool:
    """True if ``doc`` is a checksummed-artifact envelope."""
    return isinstance(doc, dict) and doc.get("kind") == ENVELOPE_KIND


def wrap_artifact(
    payload: Dict[str, Any], block_size: int = DEFAULT_BLOCK_SIZE
) -> Dict[str, Any]:
    """Envelope ``payload`` with per-block and whole-body CRC32 checksums."""
    if block_size < 1:
        raise InvalidParameterError(
            f"block_size must be >= 1, got {block_size}"
        )
    body = json.dumps(payload, separators=(",", ":"))
    data = body.encode("utf-8")
    # "body" deliberately last: a tamper test can locate the body region
    # in the raw file text after all the checksum metadata.
    return {
        "kind": ENVELOPE_KIND,
        "version": ENVELOPE_VERSION,
        "algo": "crc32",
        "length": len(data),
        "block_size": block_size,
        "block_crcs": _block_crcs(data, block_size),
        "crc32": _crc32(data),
        "body": body,
    }


def unwrap_artifact(
    doc: Dict[str, Any], source: Optional[str] = None
) -> Dict[str, Any]:
    """Verify an envelope and return the inner artifact payload.

    Raises :class:`CorruptedDataError` (with the byte offset of the first
    mismatching block) on any checksum, length or structure violation, and
    :class:`FormatVersionError` on an unreadable envelope version.
    """
    where = f" in {source}" if source else ""
    if not is_wrapped(doc):
        raise CorruptedDataError(f"not a checksummed artifact{where}")
    version = doc.get("version")
    if version != ENVELOPE_VERSION:
        raise FormatVersionError(
            f"unsupported envelope version{where}: expected "
            f"{ENVELOPE_VERSION}, found {version!r}"
        )
    if doc.get("algo") != "crc32":
        raise CorruptedDataError(
            f"unknown checksum algorithm {doc.get('algo')!r}{where}"
        )
    body = doc.get("body")
    if not isinstance(body, str):
        raise CorruptedDataError(f"envelope body missing{where}", offset=0)
    data = body.encode("utf-8")
    declared_length = doc.get("length")
    if declared_length != len(data):
        raise CorruptedDataError(
            f"artifact body is {len(data)} bytes but envelope declares "
            f"{declared_length}{where} (truncated or padded write)",
            offset=min(len(data), declared_length or 0),
        )
    block_size = doc.get("block_size", DEFAULT_BLOCK_SIZE)
    declared_blocks = doc.get("block_crcs", [])
    actual_blocks = _block_crcs(data, block_size)
    if len(declared_blocks) != len(actual_blocks):
        raise CorruptedDataError(
            f"envelope declares {len(declared_blocks)} checksum blocks "
            f"but body has {len(actual_blocks)}{where}",
            offset=min(len(declared_blocks), len(actual_blocks)) * block_size,
        )
    for index, (declared, actual) in enumerate(
        zip(declared_blocks, actual_blocks)
    ):
        if declared != actual:
            offset = index * block_size
            raise CorruptedDataError(
                f"checksum mismatch{where}: block {index} (byte offset "
                f"{offset}) has crc32 {actual:#010x}, envelope declares "
                f"{declared:#010x}",
                offset=offset,
            )
    if doc.get("crc32") != _crc32(data):
        raise CorruptedDataError(
            f"whole-body crc32 mismatch{where} (block checksums tampered "
            "consistently?)"
        )
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise CorruptedDataError(
            f"artifact body is not valid JSON{where}: {exc}", offset=exc.pos
        ) from exc


def dumps_artifact(payload: Dict[str, Any]) -> str:
    """Serialise a payload inside a checksummed envelope."""
    return json.dumps(wrap_artifact(payload))


def loads_artifact(
    text: str, source: Optional[str] = None, strict: bool = False
) -> Dict[str, Any]:
    """Parse artifact text: verify an envelope, pass legacy payloads through.

    Unparseable text (empty file, truncated JSON) raises
    :class:`CorruptedDataError` with the parser's byte position.

    A legacy (unchecksummed) payload passes through with the
    ``reliability.legacy_artifact_loads`` counter incremented — unless
    ``strict=True``, in which case it is rejected with
    :class:`CorruptedDataError`: a fleet that has rewritten its whole
    corpus with envelopes treats any unchecksummed file as tampering.
    """
    where = f" in {source}" if source else ""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptedDataError(
            f"artifact is not valid JSON{where}: {exc}", offset=exc.pos
        ) from exc
    if is_wrapped(doc):
        return unwrap_artifact(doc, source=source)
    if strict:
        raise CorruptedDataError(
            f"legacy unchecksummed artifact rejected{where} (strict mode: "
            "only checksummed envelopes are accepted)"
        )
    if not isinstance(doc, dict):
        raise CorruptedDataError(
            f"artifact root must be an object{where}, "
            f"got {type(doc).__name__}"
        )
    if _obs.registry is not None:
        _obs.registry.inc("reliability.legacy_artifact_loads")
    return doc  # legacy, unchecksummed


@dataclass
class ArtifactReport:
    """Outcome of verifying one artifact file (``python -m repro doctor``)."""

    path: str
    ok: bool
    kind: Optional[str] = None
    version: Optional[int] = None
    checksummed: bool = False
    error: Optional[str] = None
    offset: Optional[int] = None


def verify_file(path: PathLike, strict: bool = False) -> ArtifactReport:
    """Integrity-check one artifact file without materialising the object.

    With ``strict=True`` a legacy unchecksummed file fails verification
    instead of passing through (see :func:`loads_artifact`).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return ArtifactReport(
            path=str(path), ok=False, error=f"unreadable: {exc}"
        )
    try:
        checksummed = is_wrapped(json.loads(text))
    except json.JSONDecodeError:
        checksummed = False  # loads_artifact below reports the parse error
    try:
        payload = loads_artifact(text, source=str(path), strict=strict)
    except CorruptedDataError as exc:
        return ArtifactReport(
            path=str(path),
            ok=False,
            checksummed=checksummed,
            error=str(exc),
            offset=exc.offset,
        )
    except FormatVersionError as exc:
        return ArtifactReport(
            path=str(path), ok=False, checksummed=checksummed, error=str(exc)
        )
    return ArtifactReport(
        path=str(path),
        ok=True,
        kind=payload.get("kind"),
        version=payload.get("version"),
        checksummed=checksummed,
    )
