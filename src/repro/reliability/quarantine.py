"""Quarantine: route queries around structurally damaged index pages.

When the fsck walk (:mod:`repro.reliability.fsck`) or the online scrubber
(:mod:`repro.reliability.scrub`) finds a node whose geometric invariants
are violated, deleting it would lose data and trusting it would silently
drop results.  The middle road is a :class:`QuarantineSet`: traversals
skip quarantined nodes and *account* for what they skipped, so every
answer computed around damage carries an honest completeness estimate
instead of being silently short (see ``docs/robustness.md``).

The set is thread-safe: the scrubber adds nodes from its background
thread while query threads consult membership lock-free (a single
``set.__contains__`` under the GIL).  Strong references to the
quarantined nodes are kept so CPython cannot recycle an ``id()`` while
it is still being used as a membership key.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..observability import state as _obs

__all__ = ["QuarantineSet"]


class QuarantineSet:
    """A thread-safe set of quarantined index nodes.

    Membership is keyed by object identity (``id(node)``), which is how
    the in-memory trees address their pages.  ``add`` optionally records
    the :class:`~repro.reliability.StructuralFault` that condemned the
    node, so an operator can ask *why* a page is quarantined.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: set = set()
        # node id -> (node, fault) — the node reference pins the id.
        self._entries: Dict[int, Any] = {}

    def _mirror(self) -> None:
        reg = _obs.registry
        if reg is not None:
            reg.set_gauge("reliability.quarantined_nodes", len(self._ids))

    def add(self, node: Any, fault: Optional[Any] = None) -> None:
        """Quarantine ``node`` (idempotent), recording the causal fault."""
        with self._lock:
            self._ids.add(id(node))
            self._entries[id(node)] = (node, fault)
            self._mirror()
        reg = _obs.registry
        if reg is not None:
            reg.inc(
                "reliability.quarantine_adds",
                kind=getattr(fault, "kind", "manual"),
            )

    def contains(self, node: Any) -> bool:
        """True if ``node`` is quarantined (lock-free hot-path check)."""
        return id(node) in self._ids

    def discard(self, node: Any) -> None:
        """Lift the quarantine on ``node`` (no-op when absent)."""
        with self._lock:
            self._ids.discard(id(node))
            self._entries.pop(id(node), None)
            self._mirror()

    def clear(self) -> None:
        """Lift every quarantine (e.g. after a successful repair)."""
        with self._lock:
            self._ids.clear()
            self._entries.clear()
            self._mirror()

    def faults(self) -> List[Any]:
        """The recorded faults behind the current quarantines."""
        with self._lock:
            return [
                fault
                for _node, fault in self._entries.values()
                if fault is not None
            ]

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuarantineSet({len(self._ids)} node(s))"
