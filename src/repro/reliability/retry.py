"""Bounded retry with exponential backoff and jitter.

Transient faults (a flaky page read, a filesystem hiccup while loading a
statistics artifact) should cost a retry, not a query.  A
:class:`RetryPolicy` owns the schedule — capped exponential backoff with
uniform jitter — plus per-call accounting: every failed attempt is logged
as a :class:`RetryAttempt`, and when the budget is spent the whole log
rides on the raised :class:`~repro.exceptions.RetryExhaustedError`.

The sleep function is injectable so tests and benches can retry without
actually waiting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from ..exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    IOFaultError,
    RetryExhaustedError,
)
from ..observability import state as _obs

__all__ = ["RetryAttempt", "RetryStats", "RetryPolicy", "RetryingPageStore"]


@dataclass(frozen=True)
class RetryAttempt:
    """One failed attempt: what broke and how long we backed off after."""

    number: int  # 1-based attempt index
    error: str  # "ExceptionType: message"
    delay_s: float  # backoff slept after this failure (0.0 for the last)


@dataclass
class RetryStats:
    """Cumulative accounting across every call through a policy."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    exhausted: int = 0
    total_sleep_s: float = 0.0


class RetryPolicy:
    """Capped exponential backoff with uniform jitter.

    The delay after failed attempt ``i`` (1-based) is drawn uniformly from
    ``[raw * (1 - jitter), raw]`` where
    ``raw = min(max_delay_s, base_delay_s * multiplier**(i - 1))``.
    ``jitter=0`` gives a deterministic schedule; ``jitter=1`` spreads
    retries over the full ``[0, raw]`` window (decorrelating a thundering
    herd of query workers).

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately.  When ``max_attempts`` is spent the policy raises
    :class:`RetryExhaustedError` carrying the attempt log, chained to the
    final underlying error.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.01,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        retry_on: Tuple[Type[BaseException], ...] = (IOFaultError, OSError),
        seed: Optional[int] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if base_delay_s < 0 or max_delay_s < 0:
            raise InvalidParameterError(
                f"delays must be >= 0, got base={base_delay_s}, "
                f"max={max_delay_s}"
            )
        if multiplier < 1.0:
            raise InvalidParameterError(
                f"multiplier must be >= 1, got {multiplier}"
            )
        if not (0.0 <= jitter <= 1.0):
            raise InvalidParameterError(
                f"jitter must lie in [0, 1], got {jitter}"
            )
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.retry_on = tuple(retry_on)
        self._rng = random.Random(seed)
        self._sleep = sleep if sleep is not None else time.sleep
        self.stats = RetryStats()

    def backoff_delay(self, attempt_number: int) -> float:
        """Jittered delay to sleep after failed attempt ``attempt_number``."""
        raw = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt_number - 1),
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        deadline: Optional[Any] = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``fn`` under this policy; return its first success.

        ``deadline`` (a :class:`~repro.context.Deadline` or
        :class:`~repro.context.Context`) bounds the whole call: every
        backoff sleep is capped at the remaining budget, and an exhausted
        budget raises
        :class:`~repro.exceptions.DeadlineExceededError` (chained to the
        last underlying fault) instead of sleeping past it — a 50 ms
        deadline never sleeps a 500 ms schedule.
        """
        reg = _obs.registry
        attempts = []
        self.stats.calls += 1
        if reg is not None:
            reg.inc("retry.calls")
        for number in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check("retrying call")
            self.stats.attempts += 1
            if reg is not None:
                reg.inc("retry.attempts")
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                error = f"{type(exc).__name__}: {exc}"
                if number == self.max_attempts:
                    attempts.append(RetryAttempt(number, error, 0.0))
                    self.stats.exhausted += 1
                    if reg is not None:
                        reg.inc("retry.exhausted")
                    name = getattr(fn, "__name__", repr(fn))
                    raise RetryExhaustedError(
                        f"{name} still failing after {self.max_attempts} "
                        f"attempts (last error: {error})",
                        attempts=attempts,
                    ) from exc
                delay = self.backoff_delay(number)
                if deadline is not None:
                    remaining = deadline.remaining_s()
                    if remaining <= 0.0:
                        attempts.append(RetryAttempt(number, error, 0.0))
                        if reg is not None:
                            reg.inc("retry.deadline_exceeded")
                        raise DeadlineExceededError(
                            f"retry budget cut short by deadline after "
                            f"{number} attempt(s) (last error: {error})"
                        ) from exc
                    delay = min(delay, remaining)
                attempts.append(RetryAttempt(number, error, delay))
                self.stats.retries += 1
                self.stats.total_sleep_s += delay
                if reg is not None:
                    reg.inc("retry.retries")
                    reg.observe("retry.backoff_seconds", delay)
                self._sleep(delay)

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """``fn`` with this policy applied to every invocation."""

        def retried(*args: Any, **kwargs: Any) -> Any:
            return self.call(fn, *args, **kwargs)

        retried.__name__ = getattr(fn, "__name__", "retried")
        return retried


class RetryingPageStore:
    """Page-store front that retries faulting reads under a policy.

    Writes are deliberately *not* retried: re-issuing a write after an
    ambiguous failure can double-apply a torn page, so write faults
    propagate to the caller, which owns the recovery decision.

    ``deadline`` (per-read, or a store-wide default) bounds the retry
    schedule: backoff sleeps are capped at the remaining budget and an
    exhausted budget raises
    :class:`~repro.exceptions.DeadlineExceededError` instead of sleeping
    on (see :meth:`RetryPolicy.call`).
    """

    def __init__(
        self,
        inner: Any,
        policy: RetryPolicy,
        deadline: Optional[Any] = None,
    ):
        self.inner = inner
        self.policy = policy
        self.deadline = deadline

    @property
    def page_size_bytes(self) -> int:
        return self.inner.page_size_bytes

    @property
    def buffer_pages(self) -> int:
        return self.inner.buffer_pages

    @property
    def stats(self):
        return self.inner.stats

    def __len__(self) -> int:
        return len(self.inner)

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def allocate(self, payload: Any) -> int:
        return self.inner.allocate(payload)

    def write(self, page_id: int, payload: Any) -> None:
        self.inner.write(page_id, payload)

    def read(self, page_id: int, deadline: Optional[Any] = None) -> Any:
        budget = deadline if deadline is not None else self.deadline
        return self.policy.call(self.inner.read, page_id, deadline=budget)
