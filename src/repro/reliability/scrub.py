"""Online scrubber: incremental structural verification while serving.

A foreground :func:`~repro.reliability.fsck.fsck_mtree` pass recomputes a
distance per stored object per ancestor — fine for a maintenance window,
hostile at serving time.  The :class:`Scrubber` amortises the same walk:
it snapshots the tree into self-contained
:class:`~repro.reliability.fsck.ScrubUnit` s, then verifies **one node
per step** under an optional :class:`~repro.context.Deadline` /
``Context`` budget and :class:`~repro.service.TokenBucket` rate limit.
Nodes that fail are quarantined into a
:class:`~repro.reliability.QuarantineSet` (when ``auto_quarantine`` is
on), which concurrently running queries consult to route around the
damage — see ``docs/robustness.md``.

Concurrency contract: scrubbing is read-only and safe against concurrent
*queries* (the hammer test in ``tests/service/test_degraded.py`` drives
both from many threads).  It is **not** safe against concurrent inserts
or deletes — the unit snapshot would go stale; pause mutations or
re-:meth:`Scrubber.reset` after a batch of them.

Progress is mirrored into the metrics registry
(``reliability.scrub_nodes``, ``reliability.scrub_faults``, gauge
``reliability.scrub_progress``) so an operator dashboard can watch a
scrub converge.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..exceptions import DeadlineExceededError, OperationCancelledError
from ..observability import state as _obs
from .fsck import (
    FsckReport,
    StructuralFault,
    _mtree_global_faults,
    check_mtree_unit,
    check_vptree_unit,
    mtree_scrub_units,
    vptree_scrub_units,
)

__all__ = ["ScrubProgress", "Scrubber"]


@dataclass
class ScrubProgress:
    """Where a scrub stands: nodes verified, faults found, passes done."""

    nodes_total: int = 0
    nodes_scrubbed: int = 0
    faults_found: int = 0
    quarantined: int = 0
    passes: int = 0

    @property
    def fraction(self) -> float:
        """Fraction of the current pass completed, in ``[0, 1]``."""
        if self.nodes_total == 0:
            return 1.0
        return min(1.0, self.nodes_scrubbed / self.nodes_total)

    @property
    def complete(self) -> bool:
        """True once at least one full pass has finished."""
        return self.passes > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``scrub --json``)."""
        return {
            "nodes_total": self.nodes_total,
            "nodes_scrubbed": self.nodes_scrubbed,
            "faults_found": self.faults_found,
            "quarantined": self.quarantined,
            "passes": self.passes,
            "fraction": self.fraction,
            "complete": self.complete,
        }


class Scrubber:
    """Incrementally verify an index's structural invariants.

    ``tree`` is an M-tree or vp-tree (detected by duck-typing on the
    node shape).  ``rate_limit`` — a
    :class:`~repro.service.TokenBucket` — paces verification so the
    scrub never starves query threads of CPU; ``sleep`` is injectable
    so tests can pace deterministically.  With ``auto_quarantine`` (the
    default) every node that fails its unit check is added to
    ``quarantine`` immediately, shrinking the blast radius of the damage
    while the scrub is still running.

    ``on_fault`` is an optional escalation hook called (outside the
    scrubber's lock) with the list of faults each step surfaces — the
    cluster lifecycle uses it to promote node-level findings into
    router-level shard quarantine the moment they appear, without
    waiting for a pass to finish.
    """

    def __init__(
        self,
        tree: Any,
        quarantine: Optional[Any] = None,
        rate_limit: Optional[Any] = None,
        auto_quarantine: bool = True,
        tolerance: float = 1e-7,
        sleep: Callable[[float], None] = time.sleep,
        on_fault: Optional[
            Callable[[List[StructuralFault]], None]
        ] = None,
    ) -> None:
        self.tree = tree
        self.quarantine = quarantine
        self.rate_limit = rate_limit
        self.auto_quarantine = auto_quarantine
        self.tolerance = tolerance
        self.on_fault = on_fault
        self._sleep = sleep
        self._lock = threading.Lock()
        self._is_mtree = hasattr(tree, "layout")
        self._units: List[Any] = []
        self._cursor = 0
        self.progress = ScrubProgress()
        self.faults: List[StructuralFault] = []
        self.reset()

    def reset(self) -> None:
        """Re-snapshot the tree and restart the current pass.

        Call after any insert/delete batch — the unit snapshot does not
        track mutations.
        """
        with self._lock:
            if self._is_mtree:
                self._units = mtree_scrub_units(self.tree)
            else:
                self._units = vptree_scrub_units(self.tree)
            self._cursor = 0
            self.progress.nodes_total = len(self._units)
            self.progress.nodes_scrubbed = 0
            self._mirror()

    def _mirror(self) -> None:
        reg = _obs.registry
        if reg is not None:
            reg.set_gauge(
                "reliability.scrub_progress", self.progress.fraction
            )

    def _check_unit(self, unit: Any) -> List[StructuralFault]:
        if self._is_mtree:
            return check_mtree_unit(self.tree, unit, self.tolerance)
        return check_vptree_unit(self.tree, unit, self.tolerance)

    def step(self) -> List[StructuralFault]:
        """Verify the next node; returns the faults it surfaced.

        Wraps around at the end of a pass, first appending the
        whole-tree checks (balance, object count, duplicate oids) that
        no single unit can see.
        """
        with self._lock:
            if not self._units:
                self.progress.passes += 1
                return []
            unit = self._units[self._cursor]
            found = self._check_unit(unit)
            self._cursor += 1
            self.progress.nodes_scrubbed += 1
            end_of_pass = self._cursor >= len(self._units)
            if end_of_pass and self._is_mtree:
                global_faults, _ = _mtree_global_faults(
                    self.tree, self._units
                )
                found = found + global_faults
            if end_of_pass:
                self._cursor = 0
                self.progress.nodes_scrubbed = 0
                self.progress.passes += 1
            if found:
                self.faults.extend(found)
                self.progress.faults_found += len(found)
                if self.auto_quarantine and self.quarantine is not None:
                    node_faults = [f for f in found if f.node_id is not None]
                    before = len(self.quarantine)
                    for fault in node_faults:
                        # An ancestor-constraint violation names the
                        # subtree root the corrupt constraint bounds;
                        # walling off that whole subtree (rather than
                        # just the leaf where the symptom surfaced) is
                        # what keeps traversals from false-pruning it.
                        target = fault.quarantine_node
                        if target is None:
                            target = unit.node
                        self.quarantine.add(target, fault)
                    self.progress.quarantined += len(self.quarantine) - before
            self._mirror()
        reg = _obs.registry
        if reg is not None:
            reg.inc("reliability.scrub_nodes")
            if found:
                for fault in found:
                    reg.inc("reliability.scrub_faults", kind=fault.kind)
        if found and self.on_fault is not None:
            self.on_fault(found)
        return found

    def run(
        self,
        budget: Optional[Any] = None,
        max_nodes: Optional[int] = None,
        passes: int = 1,
    ) -> ScrubProgress:
        """Scrub until ``passes`` full passes complete or a limit trips.

        ``budget`` is a :class:`~repro.context.Deadline` or ``Context``;
        expiry (or cancellation) stops the scrub *cleanly* — the cursor
        is kept, so a later ``run()`` resumes where this one stopped
        rather than re-verifying from the root.  ``max_nodes`` bounds
        the number of steps.  When the ``rate_limit`` bucket is dry the
        scrubber sleeps roughly one refill interval instead of spinning.
        """
        target = self.progress.passes + passes
        steps = 0
        while self.progress.passes < target:
            if max_nodes is not None and steps >= max_nodes:
                break
            if budget is not None:
                try:
                    budget.check("scrub step")
                except (DeadlineExceededError, OperationCancelledError):
                    break
            if self.rate_limit is not None:
                while not self.rate_limit.try_take():
                    wait = min(0.05, 1.0 / max(self.rate_limit.rate, 1e-9))
                    self._sleep(wait)
                    if budget is not None and (
                        budget.expired or getattr(budget, "cancelled", False)
                    ):
                        return self.progress
            self.step()
            steps += 1
        return self.progress

    def report(self) -> FsckReport:
        """The faults found so far, as a
        :class:`~repro.reliability.FsckReport`."""
        with self._lock:
            return FsckReport(
                tree_kind="mtree" if self._is_mtree else "vptree",
                nodes_checked=self.progress.passes
                * self.progress.nodes_total
                + self.progress.nodes_scrubbed,
                objects_seen=len(self.tree),
                faults=list(self.faults),
            )
