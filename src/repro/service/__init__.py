"""Survivable concurrent serving for metric similarity queries.

The cost model (PAPER.md) predicts per-query resource use; this package
is about what happens when many such queries share one process and the
predictions go wrong.  Four mechanisms, composable and individually
testable (see ``docs/robustness.md``):

* **deadlines & cancellation** — :class:`~repro.context.Deadline` /
  :class:`~repro.context.Context` (re-exported here) bound a query's
  *time*, enforced at traversal checkpoints down through the retry loop;
* **admission control & shedding** — :class:`AdmissionController` and
  :class:`TokenBucket` bound concurrency and arrival rate, rejecting the
  excess in microseconds with :class:`~repro.exceptions.OverloadError`;
* **circuit breakers** — :class:`CircuitBreaker` /
  :class:`BreakerPageStore` stop hammering a persistently-failing
  dependency (closed → open → half-open);
* **crash-consistent recovery** — :class:`GenerationStore` journals
  multi-file index bundles (``metricost-manifest-v1``) so a kill at any
  byte offset leaves the previous or the new generation fully readable,
  never a mix.

:class:`QueryService` composes them into one front door;
``python -m repro serve-bench`` measures it under overload.
"""

from __future__ import annotations

from ..context import Context, Deadline
from .admission import AdmissionController, TokenBucket
from .breaker import DEFAULT_TRIP_ON, BreakerPageStore, CircuitBreaker
from .recovery import (
    MANIFEST_FORMAT,
    GenerationStore,
    RecoveryPerformed,
    SimulatedCrashError,
)
from .service import (
    MTreeBackend,
    OptimizerBackend,
    QueryOutcome,
    QueryRequest,
    QueryService,
    ServiceReport,
    VPTreeBackend,
    percentile,
)

__all__ = [
    "Deadline",
    "Context",
    "AdmissionController",
    "TokenBucket",
    "CircuitBreaker",
    "BreakerPageStore",
    "DEFAULT_TRIP_ON",
    "GenerationStore",
    "RecoveryPerformed",
    "SimulatedCrashError",
    "MANIFEST_FORMAT",
    "QueryRequest",
    "QueryOutcome",
    "ServiceReport",
    "MTreeBackend",
    "VPTreeBackend",
    "OptimizerBackend",
    "QueryService",
    "percentile",
]
