"""Admission control and load shedding for the concurrent query service.

A saturated metric-query server has two failure modes: unbounded queueing
(latency grows without bound, every caller times out) or collapse (the
working set thrashes, throughput drops below what fewer queries would
achieve).  The classic fix is to *bound* concurrency and queueing and to
reject the excess immediately:

* :class:`AdmissionController` — a semaphore of ``max_concurrent``
  execution slots fronted by a bounded wait queue of ``max_queue`` slots.
  A request that finds the queue full is rejected with
  :class:`~repro.exceptions.OverloadError` in microseconds — the caller
  can retry elsewhere — instead of waiting behind work that cannot finish
  in time;
* :class:`TokenBucket` — a rate limiter for callers that want to cap the
  *arrival* rate rather than the concurrency.

Both are thread-safe and both mirror their decisions into the metrics
registry (``service.admitted`` / ``service.rejected`` /
``service.queue_depth``) when observability is installed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..exceptions import InvalidParameterError, OverloadError
from ..observability import state as _obs

__all__ = ["AdmissionController", "TokenBucket"]


class AdmissionController:
    """Bounded concurrency plus a bounded wait queue; excess is shed.

    ``max_concurrent`` requests run at once; up to ``max_queue`` more may
    wait (at most ``queue_timeout_s`` each, when set).  Anything beyond
    that is rejected *fast* with :class:`OverloadError` — the controller
    takes one lock, sees the queue is full, and raises; no sleeping, no
    syscalls.

    Use as a context manager::

        with controller.admit():
            ...run the query...
    """

    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout_s: Optional[float] = None,
    ):
        if max_concurrent < 1:
            raise InvalidParameterError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 0:
            raise InvalidParameterError(
                f"max_queue must be >= 0, got {max_queue}"
            )
        if queue_timeout_s is not None and queue_timeout_s < 0:
            raise InvalidParameterError(
                f"queue_timeout_s must be >= 0, got {queue_timeout_s}"
            )
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self._semaphore = threading.Semaphore(max_concurrent)
        self._lock = threading.Lock()
        self._waiting = 0
        self._running = 0
        self.admitted = 0
        self.rejected = 0

    def _mirror_depths(self) -> None:
        reg = _obs.registry
        if reg is not None:
            reg.set_gauge("service.queue_depth", self._waiting)
            reg.set_gauge("service.running", self._running)

    def try_acquire(self) -> bool:
        """One execution slot without waiting; False when none is free."""
        if not self._semaphore.acquire(blocking=False):
            return False
        with self._lock:
            self._running += 1
            self.admitted += 1
            self._mirror_depths()
        reg = _obs.registry
        if reg is not None:
            reg.inc("service.admitted")
        return True

    def acquire(self, timeout_s: Optional[float] = None) -> None:
        """One execution slot, queueing within bounds; sheds the excess.

        Raises :class:`OverloadError` with ``reason="queue_full"`` when
        the wait queue is already at capacity, or ``reason="timeout"``
        when the queue wait exceeded ``timeout_s`` (default: the
        controller's ``queue_timeout_s``).
        """
        if self.try_acquire():
            return
        with self._lock:
            if self._waiting >= self.max_queue:
                self.rejected += 1
                reg = _obs.registry
                if reg is not None:
                    reg.inc("service.rejected", reason="queue_full")
                raise OverloadError(
                    f"admission queue full "
                    f"({self._waiting} waiting, cap {self.max_queue})",
                    reason="queue_full",
                )
            self._waiting += 1
            self._mirror_depths()
        timeout = timeout_s if timeout_s is not None else self.queue_timeout_s
        try:
            got = self._semaphore.acquire(
                timeout=timeout if timeout is not None else None
            )
        finally:
            with self._lock:
                self._waiting -= 1
                self._mirror_depths()
        if not got:
            with self._lock:
                self.rejected += 1
            reg = _obs.registry
            if reg is not None:
                reg.inc("service.rejected", reason="timeout")
            raise OverloadError(
                f"gave up after waiting {timeout:g} s for a slot",
                reason="timeout",
            )
        with self._lock:
            self._running += 1
            self.admitted += 1
            self._mirror_depths()
        reg = _obs.registry
        if reg is not None:
            reg.inc("service.admitted")

    def release(self) -> None:
        with self._lock:
            self._running -= 1
            self._mirror_depths()
        self._semaphore.release()

    @contextmanager
    def admit(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        """``acquire``/``release`` as a context manager."""
        self.acquire(timeout_s=timeout_s)
        try:
            yield
        finally:
            self.release()

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    @property
    def running(self) -> int:
        with self._lock:
            return self._running


class TokenBucket:
    """A token-bucket rate limiter: ``rate`` tokens/s, burst ``capacity``.

    Thread-safe; the clock is injectable for deterministic tests.
    ``try_take`` is non-blocking — a caller without a token is rejected
    (the shedding discipline), not delayed.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise InvalidParameterError(f"rate must be > 0, got {rate}")
        if capacity <= 0:
            raise InvalidParameterError(
                f"capacity must be > 0, got {capacity}"
            )
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        self._tokens = capacity
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.rate
            )
            self._last = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (no wait) otherwise."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def take_or_raise(self, tokens: float = 1.0) -> None:
        """``try_take`` that sheds: raises ``OverloadError(rate_limited)``."""
        if not self.try_take(tokens):
            reg = _obs.registry
            if reg is not None:
                reg.inc("service.rejected", reason="rate_limited")
            raise OverloadError(
                f"rate limit exceeded ({self.rate:g}/s, "
                f"burst {self.capacity:g})",
                reason="rate_limited",
            )

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens
