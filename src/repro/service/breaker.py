"""Circuit breakers for the page store and index backends.

A page store that is *persistently* faulting (a dying disk, a chaos
policy with a high fault rate) should not be hammered with retries by
every query: each retried read burns a worker's deadline budget for
nothing.  A :class:`CircuitBreaker` watches consecutive failures and,
past a threshold, **opens**: calls are rejected immediately with
:class:`~repro.exceptions.CircuitOpenError` (microseconds, no I/O) until
a recovery timeout elapses.  Then the breaker goes **half-open**,
admitting a limited number of probe calls; enough successes close it,
one failure re-opens it.

State machine::

    closed --[failure_threshold consecutive failures]--> open
    open   --[recovery_timeout_s elapsed]-------------> half_open
    half_open --[half_open_successes successes]-------> closed
    half_open --[any failure]-------------------------> open

Every transition is mirrored into the metrics registry as the counter
``service.breaker.state`` labelled ``name``/``from``/``to``, plus the
gauge ``service.breaker.state_code`` (closed=0, open=1, half_open=2), so
a metrics snapshot shows the breaker history.

:class:`BreakerPageStore` wraps any page store (raw, faulty, retrying)
with a breaker on reads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Tuple, Type

from ..exceptions import (
    CircuitOpenError,
    CorruptedDataError,
    DeadlineExceededError,
    InvalidParameterError,
    IOFaultError,
    OperationCancelledError,
    RetryExhaustedError,
)
from ..observability import state as _obs

__all__ = ["CircuitBreaker", "BreakerPageStore", "DEFAULT_TRIP_ON"]

# The PR 1 fault classes: what a breaker counts as dependency failure.
# Deadline/cancellation errors deliberately do NOT trip a breaker — they
# say the *caller* ran out of budget, not that the dependency is sick.
DEFAULT_TRIP_ON: Tuple[Type[BaseException], ...] = (
    IOFaultError,
    RetryExhaustedError,
    CorruptedDataError,
    OSError,
)

_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


class CircuitBreaker:
    """Closed/open/half-open breaker around one dependency.

    Thread-safe: state transitions happen under a lock; the protected
    call itself runs outside it (so slow calls do not serialise).  The
    clock is injectable so tests can step through the state machine
    without sleeping.
    """

    def __init__(
        self,
        name: str = "dependency",
        failure_threshold: int = 5,
        recovery_timeout_s: float = 1.0,
        half_open_successes: int = 2,
        trip_on: Tuple[Type[BaseException], ...] = DEFAULT_TRIP_ON,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout_s < 0:
            raise InvalidParameterError(
                f"recovery_timeout_s must be >= 0, got {recovery_timeout_s}"
            )
        if half_open_successes < 1:
            raise InvalidParameterError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.half_open_successes = half_open_successes
        self.trip_on = tuple(trip_on)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at: Optional[float] = None
        self.transitions = 0
        self.rejections = 0

    # -- state machine (all called with self._lock held) -------------------

    def _transition_locked(self, to: str) -> None:
        if to == self._state:
            return
        old = self._state
        self._state = to
        self.transitions += 1
        if to == "open":
            self._opened_at = self._clock()
        elif to == "closed":
            self._consecutive_failures = 0
            self._opened_at = None
        if to in ("closed", "half_open"):
            self._half_open_successes = 0
        reg = _obs.registry
        if reg is not None:
            # "from" is a keyword; route the labels through a dict.
            reg.inc(
                "service.breaker.state",
                **{"name": self.name, "from": old, "to": to},
            )
            reg.set_gauge(
                "service.breaker.state_code",
                _STATE_CODES[to],
                name=self.name,
            )

    def _check_admission_locked(self) -> None:
        """Open→half_open on timeout; raise when still open."""
        if self._state == "open":
            assert self._opened_at is not None
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.recovery_timeout_s:
                self._transition_locked("half_open")
            else:
                self.rejections += 1
                reg = _obs.registry
                if reg is not None:
                    reg.inc("service.breaker.rejected", name=self.name)
                raise CircuitOpenError(
                    f"circuit {self.name!r} is open "
                    f"({self._consecutive_failures} consecutive failures)",
                    retry_after_s=self.recovery_timeout_s - elapsed,
                )

    # -- public API --------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, refreshing open→half_open on timeout."""
        with self._lock:
            if self._state == "open":
                assert self._opened_at is not None
                if (
                    self._clock() - self._opened_at
                    >= self.recovery_timeout_s
                ):
                    self._transition_locked("half_open")
            return self._state

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._half_open_successes += 1
                if self._half_open_successes >= self.half_open_successes:
                    self._transition_locked("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open":
                self._transition_locked("open")
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition_locked("open")

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling ``fn`` while
        open.  Exceptions in ``trip_on`` count as dependency failures;
        anything else (including deadline errors) propagates without
        moving the state machine.
        """
        with self._lock:
            self._check_admission_locked()
        try:
            result = fn(*args, **kwargs)
        except (DeadlineExceededError, OperationCancelledError):
            # Caller-budget errors are never dependency failures — even
            # though DeadlineExceededError is a TimeoutError (and hence
            # an OSError, which DEFAULT_TRIP_ON matches).
            raise
        except self.trip_on:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force the breaker closed (administrative override)."""
        with self._lock:
            self._transition_locked("closed")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )


class BreakerPageStore:
    """A page store whose reads run through a :class:`CircuitBreaker`.

    Stacks under/over the other fronts — typical serving order is
    ``BreakerPageStore(RetryingPageStore(FaultyPageStore(PageStore)))``:
    transient faults are retried, persistent ones trip the breaker, and
    an open breaker rejects in microseconds instead of re-running a
    doomed retry schedule.
    """

    def __init__(self, inner: Any, breaker: Optional[CircuitBreaker] = None):
        self.inner = inner
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker("pager")
        )

    @property
    def page_size_bytes(self) -> int:
        return self.inner.page_size_bytes

    @property
    def buffer_pages(self) -> int:
        return self.inner.buffer_pages

    @property
    def stats(self):
        return self.inner.stats

    def __len__(self) -> int:
        return len(self.inner)

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def allocate(self, payload: Any) -> int:
        return self.inner.allocate(payload)

    def write(self, page_id: int, payload: Any) -> None:
        self.inner.write(page_id, payload)

    def read(self, page_id: int, **kwargs: Any) -> Any:
        return self.breaker.call(self.inner.read, page_id, **kwargs)
