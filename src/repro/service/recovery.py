"""Crash-consistent multi-file persistence via a write-ahead manifest.

PR 1 made *single* artifacts atomic (temp + fsync + ``os.replace``), but
an index bundle is several files — tree, distance histogram, statistics —
and a crash between two of their replaces leaves a *mixed* generation: a
new tree with an old histogram silently skews every cost estimate.  This
module closes that gap with generations and a write-ahead journal:

1. **journal** — write ``JOURNAL.json`` declaring the new generation
   number and the artifact names about to be written (atomic);
2. **artifacts** — write each artifact to its own generation-suffixed
   file ``{name}.g{gen}.json`` (atomic each; never overwrites the
   previous generation's files);
3. **commit** — atomically replace ``MANIFEST.json`` (format
   ``metricost-manifest-v1``) to point at the new generation's files,
   with per-file SHA-256 digests.  *This replace is the commit point*;
4. **cleanup** — remove the journal, then garbage-collect the previous
   generation's files.

A crash at any byte offset of any step leaves the store loadable:
before the commit point :meth:`GenerationStore.load` still reads the old
generation in full; after it, the new one.  :meth:`GenerationStore.recover`
rolls an interrupted save forward (journal + committed manifest) or back
(journal, no commit), and sweeps stray temp files.

``save(crash_after_step=k)`` injects a :class:`SimulatedCrashError` after
the k-th step, so tests and ``python -m repro doctor`` can kill the
protocol at *every* step and assert the old-or-new-never-mixed property.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..exceptions import (
    CorruptedDataError,
    FormatVersionError,
    InvalidParameterError,
    MetricostError,
)
from ..persistence import _atomic_write_text

__all__ = [
    "MANIFEST_FORMAT",
    "SimulatedCrashError",
    "RecoveryPerformed",
    "GenerationStore",
]

MANIFEST_FORMAT = "metricost-manifest-v1"
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "JOURNAL.json"

PathLike = Union[str, Path]


class SimulatedCrashError(MetricostError):
    """Raised by ``save(crash_after_step=k)`` to emulate a hard kill.

    ``step`` records how many protocol steps completed before the
    "crash"; everything already written stays on disk exactly as a real
    kill would leave it.
    """

    def __init__(self, message: str, step: int):
        super().__init__(message)
        self.step = step


@dataclass
class RecoveryPerformed:
    """What :meth:`GenerationStore.recover` found and did."""

    action: str  # "clean" | "rolled_forward" | "rolled_back"
    generation: Optional[int]  # the generation now current (None if never saved)
    notes: List[str] = field(default_factory=list)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class GenerationStore:
    """A directory of generation-suffixed artifacts behind one manifest.

    Artifacts are named text documents (callers serialise trees and
    histograms with :mod:`repro.persistence` first).  Not itself
    thread-safe — saves are an administrative operation; serialise them
    externally.  Loads against a *committed* manifest are safe alongside
    a concurrent save, because a save never touches the committed
    generation's files until after the new commit point.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def _artifact_path(self, name: str, generation: int) -> Path:
        return self.directory / f"{name}.g{generation}.json"

    # -- manifest / journal I/O -------------------------------------------

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.manifest_path.exists():
            return None
        try:
            doc = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CorruptedDataError(
                f"manifest is not valid JSON: {exc}", offset=exc.pos
            ) from exc
        if doc.get("format") != MANIFEST_FORMAT:
            raise FormatVersionError(
                f"cannot read manifest: expected format "
                f"{MANIFEST_FORMAT!r}, found {doc.get('format')!r}"
            )
        return doc

    def _read_journal(self) -> Optional[Dict[str, Any]]:
        if not self.journal_path.exists():
            return None
        try:
            return json.loads(self.journal_path.read_text())
        except json.JSONDecodeError:
            # A torn journal write never happens (atomic replace), but a
            # hand-damaged one should not wedge recovery: treat it as an
            # uncommitted save of unknown shape and let recover() sweep.
            return {"generation": None, "artifacts": []}

    @property
    def generation(self) -> Optional[int]:
        """The committed generation number; None before the first save."""
        manifest = self._read_manifest()
        return None if manifest is None else int(manifest["generation"])

    # -- save protocol -----------------------------------------------------

    def total_save_steps(self, artifact_count: int) -> int:
        """Steps in ``save()`` for ``artifact_count`` artifacts.

        journal + one write per artifact + manifest commit + journal
        removal + old-generation GC.
        """
        return artifact_count + 4

    def save(
        self,
        artifacts: Dict[str, str],
        crash_after_step: Optional[int] = None,
    ) -> int:
        """Atomically replace the committed bundle; returns the new
        generation number.

        ``artifacts`` maps names (filename-safe stems) to serialised
        text.  ``crash_after_step=k`` performs the first ``k`` protocol
        steps and then raises :class:`SimulatedCrashError`; ``k=0``
        crashes before anything is written.
        """
        if not artifacts:
            raise InvalidParameterError("need at least one artifact to save")
        for name in artifacts:
            if not name or "/" in name or name.startswith("."):
                raise InvalidParameterError(
                    f"artifact name {name!r} is not filename-safe"
                )
        step = 0

        def checkpoint() -> None:
            nonlocal step
            step += 1
            if crash_after_step is not None and step > crash_after_step:
                raise SimulatedCrashError(
                    f"simulated crash after step {crash_after_step} "
                    f"of {self.total_save_steps(len(artifacts))}",
                    step=crash_after_step,
                )

        old_manifest = self._read_manifest()
        old_generation = (
            int(old_manifest["generation"]) if old_manifest else 0
        )
        generation = old_generation + 1
        names = sorted(artifacts)

        # Step 1: journal the intent (write-ahead).
        checkpoint()
        _atomic_write_text(
            self.journal_path,
            json.dumps(
                {
                    "format": MANIFEST_FORMAT,
                    "generation": generation,
                    "artifacts": names,
                }
            ),
        )

        # Steps 2..n+1: the artifact files, one atomic write each.
        for name in names:
            checkpoint()
            _atomic_write_text(
                self._artifact_path(name, generation), artifacts[name]
            )

        # Step n+2: the commit point.
        checkpoint()
        manifest = {
            "format": MANIFEST_FORMAT,
            "generation": generation,
            "artifacts": {
                name: {
                    "file": self._artifact_path(name, generation).name,
                    "sha256": _sha256(artifacts[name]),
                }
                for name in names
            },
        }
        _atomic_write_text(self.manifest_path, json.dumps(manifest))

        # Step n+3: the journal has served its purpose.
        checkpoint()
        self.journal_path.unlink(missing_ok=True)

        # Step n+4: GC the superseded generation's files.
        checkpoint()
        if old_manifest is not None:
            self._remove_generation_files(old_manifest)
        return generation

    def _remove_generation_files(self, manifest: Dict[str, Any]) -> None:
        for entry in manifest.get("artifacts", {}).values():
            (self.directory / entry["file"]).unlink(missing_ok=True)

    # -- load / recover ----------------------------------------------------

    def load(self) -> Dict[str, str]:
        """The committed bundle: name -> artifact text.

        Verifies each file against its manifest digest; a mismatch (or a
        missing file) raises :class:`CorruptedDataError`.  Raises
        :class:`InvalidParameterError` when no generation was ever
        committed.
        """
        manifest = self._read_manifest()
        if manifest is None:
            raise InvalidParameterError(
                f"no committed manifest in {self.directory}"
            )
        loaded: Dict[str, str] = {}
        for name, entry in manifest["artifacts"].items():
            path = self.directory / entry["file"]
            if not path.exists():
                raise CorruptedDataError(
                    f"manifest references missing artifact {entry['file']!r}"
                )
            text = path.read_text()
            if _sha256(text) != entry["sha256"]:
                raise CorruptedDataError(
                    f"artifact {entry['file']!r} does not match its "
                    f"manifest digest"
                )
            loaded[name] = text
        return loaded

    def recover(self) -> RecoveryPerformed:
        """Repair after a crash: roll an in-flight save forward or back.

        Idempotent; call on every open.  Rules:

        * no journal — nothing was in flight; just sweep stray temp files;
        * journal present, manifest already at the journaled generation —
          the commit point was passed: roll *forward* (finish cleanup);
        * journal present, manifest older/absent — the commit point was
          not reached: roll *back* (delete the partial new generation).
        """
        notes: List[str] = []
        swept = self._sweep_tmp_files()
        if swept:
            notes.append(f"removed {swept} stray temp file(s)")
        journal = self._read_journal()
        manifest = self._read_manifest()
        current = None if manifest is None else int(manifest["generation"])
        if journal is None:
            return RecoveryPerformed(
                action="clean", generation=current, notes=notes
            )
        journaled = journal.get("generation")
        if journaled is not None and current == journaled:
            # Commit happened; the crash hit cleanup.  Finish it.
            self.journal_path.unlink(missing_ok=True)
            removed = self._gc_stale_files(manifest)
            notes.append(
                f"rolled forward generation {journaled}"
                + (f"; removed {removed} stale file(s)" if removed else "")
            )
            return RecoveryPerformed(
                action="rolled_forward", generation=current, notes=notes
            )
        # Commit never happened: the journaled generation is garbage.
        removed = 0
        for name in journal.get("artifacts", []):
            if journaled is None:
                continue
            path = self._artifact_path(name, journaled)
            if path.exists():
                path.unlink()
                removed += 1
        if journaled is None:
            # Unreadable journal: fall back to sweeping everything the
            # committed manifest does not own.
            removed += self._gc_stale_files(manifest)
        self.journal_path.unlink(missing_ok=True)
        notes.append(
            f"rolled back uncommitted generation {journaled}"
            + (f"; removed {removed} partial file(s)" if removed else "")
        )
        return RecoveryPerformed(
            action="rolled_back", generation=current, notes=notes
        )

    def stale_files(self) -> List[str]:
        """Read-only census of files the committed manifest does not own.

        Returns the names of generation-suffixed files (``*.g*.json``)
        outside the committed generation plus stray ``*.tmp`` files —
        exactly what :meth:`recover` would reclaim.  Used by
        ``python -m repro doctor`` / ``gc`` to *report* crash debris
        without mutating the store.
        """
        manifest = self._read_manifest()
        owned = set()
        if manifest is not None:
            owned = {
                entry["file"] for entry in manifest["artifacts"].values()
            }
        stale = [
            path.name
            for path in self.directory.glob("*.g*.json")
            if path.name not in owned
        ]
        stale.extend(path.name for path in self.directory.glob("*.tmp"))
        return sorted(stale)

    def _sweep_tmp_files(self) -> int:
        removed = 0
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _gc_stale_files(self, manifest: Optional[Dict[str, Any]]) -> int:
        """Remove generation files the committed manifest does not own."""
        owned = set()
        if manifest is not None:
            owned = {
                entry["file"] for entry in manifest["artifacts"].values()
            }
        removed = 0
        for path in self.directory.glob("*.g*.json"):
            if path.name not in owned:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
