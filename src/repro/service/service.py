"""A thread-safe concurrent query service over the metric indexes.

:class:`QueryService` composes the survivability pieces into one front
door: every submitted query passes (in order) the token-bucket rate
limiter, the admission controller, and the backend's circuit breaker,
then executes with a :class:`~repro.context.Deadline` threaded all the
way down to the tree traversal and the page store's retry loop.  Every
terminal condition — success, shed, open circuit, blown deadline,
degraded execution, hard failure — is a :class:`QueryOutcome` with a
``status``, never a hang and never an unhandled worker exception.

:meth:`QueryService.run` drives a batch through ``workers`` threads and
summarises into a :class:`ServiceReport` (throughput, p50/p99 of the
accepted, shed counts), which is what ``python -m repro serve-bench``
prints.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..context import Context, Deadline
from ..exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidParameterError,
    MetricostError,
    OperationCancelledError,
    OverloadError,
)
from ..observability import state as _obs
from .admission import AdmissionController, TokenBucket
from .breaker import CircuitBreaker

__all__ = [
    "QueryRequest",
    "QueryOutcome",
    "ServiceReport",
    "MTreeBackend",
    "VPTreeBackend",
    "OptimizerBackend",
    "QueryService",
    "percentile",
]


@dataclass(frozen=True)
class QueryRequest:
    """One similarity query: a range probe or a k-NN probe.

    ``hedged`` marks a duplicate attempt issued by a scatter-gather
    router after its hedge delay; backends and fault injectors may treat
    hedges differently (a transient straggler slows the primary, not the
    hedge), and it keeps router accounting honest.
    """

    kind: str  # "range" | "knn"
    query: Any
    radius: Optional[float] = None  # for kind == "range"
    k: Optional[int] = None  # for kind == "knn"
    request_id: Optional[int] = None
    hedged: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("range", "knn"):
            raise InvalidParameterError(
                f"kind must be 'range' or 'knn', got {self.kind!r}"
            )
        if self.kind == "range" and (
            self.radius is None or self.radius < 0
        ):
            raise InvalidParameterError(
                f"range query needs radius >= 0, got {self.radius}"
            )
        if self.kind == "knn" and (self.k is None or self.k < 1):
            raise InvalidParameterError(
                f"k-NN query needs k >= 1, got {self.k}"
            )


@dataclass
class QueryOutcome:
    """How one request ended.

    ``status`` is one of ``"ok"``, ``"rejected"`` (shed by admission or
    rate limiting), ``"circuit_open"``, ``"deadline"``, ``"cancelled"``,
    ``"error"`` or ``"stale_epoch"`` (the request reached a cluster
    shard view fenced by a membership-epoch bump; see
    :mod:`repro.cluster.lifecycle`).  ``latency_s`` covers the request's
    whole stay in the service, including any queue wait.

    ``degraded`` marks an answer produced around quarantined index
    damage (or via the linear-scan fallback rung); ``completeness`` is
    the backend's estimate of the fraction of the dataset that was
    reachable — an honest ``0.97`` instead of a silently short answer.
    """

    request: QueryRequest
    status: str
    latency_s: float
    items: Optional[List[Any]] = None
    error: Optional[str] = None
    nodes: int = 0
    dists: int = 0
    completeness: float = 1.0
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    if not values:
        raise InvalidParameterError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise InvalidParameterError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ServiceReport:
    """A batch run summarised: counts, latency percentiles, throughput."""

    outcomes: List[QueryOutcome]
    wall_s: float
    workers: int

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def accepted(self) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def degraded(self) -> List[QueryOutcome]:
        """Accepted answers that were computed around index damage."""
        return [o for o in self.outcomes if o.status == "ok" and o.degraded]

    @property
    def throughput_qps(self) -> float:
        return len(self.accepted) / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, q: float, status: str = "ok") -> float:
        values = [
            o.latency_s for o in self.outcomes if o.status == status
        ]
        return percentile(values, q)

    def render(self) -> str:
        lines = [
            f"{self.total} requests over {self.wall_s * 1e3:.1f} ms "
            f"with {self.workers} worker(s): "
            f"{len(self.accepted)} ok "
            f"({len(self.degraded)} degraded), "
            f"{self.count('rejected')} rejected, "
            f"{self.count('circuit_open')} circuit-open, "
            f"{self.count('deadline')} deadline, "
            f"{self.count('cancelled')} cancelled, "
            f"{self.count('error')} error",
        ]
        if self.accepted:
            lines.append(
                f"accepted latency: "
                f"p50 {self.latency_percentile(50) * 1e3:.3f} ms, "
                f"p99 {self.latency_percentile(99) * 1e3:.3f} ms; "
                f"throughput {self.throughput_qps:,.0f} q/s"
            )
        rejected = [
            o.latency_s for o in self.outcomes if o.status == "rejected"
        ]
        if rejected:
            lines.append(
                f"rejection latency: "
                f"p99 {percentile(rejected, 99) * 1e3:.3f} ms "
                f"(shed fast, not queued)"
            )
        return "\n".join(lines)


class MTreeBackend:
    """Executes requests against one M-tree (optionally page-backed).

    When ``pager`` is given, every logical node access replays one page
    read through it — so retry fronts, fault policies and circuit
    breakers stacked on the pager see real traffic and their failures
    surface as query failures.

    ``quarantine`` (a :class:`~repro.reliability.QuarantineSet`) makes
    the backend scrub-aware: traversals route around quarantined nodes
    and every affected outcome is flagged ``degraded`` with its
    ``completeness`` estimate.  When completeness would fall below
    ``min_completeness`` and a ``fallback``
    (:class:`~repro.workloads.LinearScanBaseline`) is configured, the
    request is re-answered by the linear scan over the pristine object
    snapshot — the existing degradation rung — which restores
    completeness 1.0 at linear cost (still flagged ``degraded``).
    """

    name = "mtree"

    def __init__(
        self,
        tree: Any,
        pager: Optional[Any] = None,
        quarantine: Optional[Any] = None,
        fallback: Optional[Any] = None,
        min_completeness: float = 0.0,
    ):
        if not (0.0 <= min_completeness <= 1.0):
            raise InvalidParameterError(
                f"min_completeness must lie in [0, 1], got {min_completeness}"
            )
        self.tree = tree
        self.pager = pager
        self.quarantine = quarantine
        self.fallback = fallback
        self.min_completeness = min_completeness

    def _fallback_execute(
        self, request: QueryRequest, start: float
    ) -> QueryOutcome:
        """Answer via the linear-scan rung (complete, but linear cost)."""
        if request.kind == "range":
            matches, pages, n_dists = self.fallback.range_query(
                request.query, request.radius
            )
            items = list(matches)
        else:
            neighbors, pages, n_dists = self.fallback.knn_query(
                request.query, request.k
            )
            items = list(neighbors)
        reg = _obs.registry
        if reg is not None:
            reg.inc("service.degraded_queries", rung="linear_scan")
        return QueryOutcome(
            request=request,
            status="ok",
            latency_s=time.perf_counter() - start,
            items=items,
            nodes=pages,
            dists=n_dists,
            completeness=1.0,
            degraded=True,
        )

    def execute(
        self, request: QueryRequest, deadline: Optional[Any] = None
    ) -> QueryOutcome:
        start = time.perf_counter()
        if request.kind == "range":
            result = self.tree.range_query(
                request.query,
                request.radius,
                deadline=deadline,
                quarantine=self.quarantine,
            )
            items = result.items
        else:
            result = self.tree.knn_query(
                request.query,
                request.k,
                deadline=deadline,
                quarantine=self.quarantine,
            )
            items = [(n.oid, n.obj, n.distance) for n in result.neighbors]
        completeness = getattr(result, "completeness", 1.0)
        degraded = completeness < 1.0
        if degraded and self.fallback is not None and (
            completeness < self.min_completeness
        ):
            return self._fallback_execute(request, start)
        if degraded:
            reg = _obs.registry
            if reg is not None:
                reg.inc("service.degraded_queries", rung="quarantine")
        if self.pager is not None:
            for page_id in range(
                min(result.stats.nodes_accessed, len(self.pager))
            ):
                if deadline is not None:
                    self.pager.read(page_id, deadline=deadline)
                else:
                    self.pager.read(page_id)
        return QueryOutcome(
            request=request,
            status="ok",
            latency_s=time.perf_counter() - start,
            items=items,
            nodes=result.stats.nodes_accessed,
            dists=result.stats.dists_computed,
            completeness=completeness,
            degraded=degraded,
        )


class VPTreeBackend:
    """Executes requests against one vp-tree (main-memory).

    ``quarantine`` makes the backend scrub-aware exactly like
    :class:`MTreeBackend` (no fallback rung: vp-trees are the in-memory
    tier).
    """

    name = "vptree"

    def __init__(self, tree: Any, quarantine: Optional[Any] = None):
        self.tree = tree
        self.quarantine = quarantine

    def execute(
        self, request: QueryRequest, deadline: Optional[Any] = None
    ) -> QueryOutcome:
        start = time.perf_counter()
        if request.kind == "range":
            result = self.tree.range_query(
                request.query,
                request.radius,
                deadline=deadline,
                quarantine=self.quarantine,
            )
            items = result.items
        else:
            result = self.tree.knn_query(
                request.query,
                request.k,
                deadline=deadline,
                quarantine=self.quarantine,
            )
            items = list(result.neighbors)
        completeness = getattr(result, "completeness", 1.0)
        degraded = completeness < 1.0
        if degraded and _obs.registry is not None:
            _obs.registry.inc("service.degraded_queries", rung="quarantine")
        return QueryOutcome(
            request=request,
            status="ok",
            latency_s=time.perf_counter() - start,
            items=items,
            nodes=0,
            dists=result.stats.dists_computed,
            completeness=completeness,
            degraded=degraded,
        )


class OptimizerBackend:
    """Executes requests through the cost-based optimizer's ladder."""

    name = "optimizer"

    def __init__(self, optimizer: Any):
        self.optimizer = optimizer

    def execute(
        self, request: QueryRequest, deadline: Optional[Any] = None
    ) -> QueryOutcome:
        start = time.perf_counter()
        if request.kind == "range":
            outcome = self.optimizer.run_range(
                request.query, request.radius, deadline=deadline
            )
        else:
            outcome = self.optimizer.run_knn(
                request.query, request.k, deadline=deadline
            )
        return QueryOutcome(
            request=request,
            status="ok",
            latency_s=time.perf_counter() - start,
            items=list(outcome.items),
            nodes=outcome.nodes,
            dists=outcome.dists,
        )


class QueryService:
    """The concurrent front door: shed, admit, breaker-guard, execute.

    ``submit`` never raises for per-request conditions — every path
    returns a :class:`QueryOutcome` whose ``status`` says what happened —
    so a pool of workers can hammer it without any exception plumbing.
    Unexpected (non-library) exceptions still propagate: those are bugs,
    not load.
    """

    def __init__(
        self,
        backend: Any,
        admission: Optional[AdmissionController] = None,
        rate_limiter: Optional[TokenBucket] = None,
        breaker: Optional[CircuitBreaker] = None,
        default_deadline_s: Optional[float] = None,
    ):
        self.backend = backend
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.rate_limiter = rate_limiter
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(getattr(backend, "name", "backend"))
        )
        self.default_deadline_s = default_deadline_s
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {}

    def _count(self, status: str) -> None:
        with self._lock:
            self.stats[status] = self.stats.get(status, 0) + 1
        reg = _obs.registry
        if reg is not None:
            reg.inc("service.requests", status=status)

    def submit(
        self,
        request: QueryRequest,
        deadline: Optional[Any] = None,
        context: Optional[Context] = None,
    ) -> QueryOutcome:
        """Run one request through the full pipeline; returns its outcome.

        ``deadline`` overrides the service default; ``context`` adds
        cooperative cancellation on top (and its own deadline, if set).
        """
        start = time.perf_counter()
        if deadline is None and self.default_deadline_s is not None:
            deadline = Deadline.after(self.default_deadline_s)
        budget: Optional[Any] = context if context is not None else deadline
        if context is not None and context.deadline is None and deadline is not None:
            context.deadline = deadline

        def finish(
            status: str, error: Optional[str] = None
        ) -> QueryOutcome:
            latency = time.perf_counter() - start
            self._count(status)
            reg = _obs.registry
            if reg is not None:
                reg.observe("service.latency_seconds", latency, status=status)
            return QueryOutcome(
                request=request,
                status=status,
                latency_s=latency,
                error=error,
            )

        try:
            if self.rate_limiter is not None:
                self.rate_limiter.take_or_raise()
            with self.admission.admit():
                if budget is not None:
                    budget.check("admitted query")
                outcome = self.breaker.call(
                    self.backend.execute, request, deadline=budget
                )
        except OverloadError as exc:
            return finish("rejected", error=str(exc))
        except CircuitOpenError as exc:
            return finish("circuit_open", error=str(exc))
        except DeadlineExceededError as exc:
            return finish("deadline", error=str(exc))
        except OperationCancelledError as exc:
            return finish("cancelled", error=str(exc))
        except MetricostError as exc:
            return finish(
                "error", error=f"{type(exc).__name__}: {exc}"
            )
        outcome.latency_s = time.perf_counter() - start
        self._count("ok")
        reg = _obs.registry
        if reg is not None:
            reg.observe(
                "service.latency_seconds", outcome.latency_s, status="ok"
            )
        return outcome

    def run(
        self,
        requests: Sequence[QueryRequest],
        workers: int = 4,
        deadline_ms: Optional[float] = None,
    ) -> ServiceReport:
        """Drive a batch through ``workers`` threads; summarise.

        Each request gets its *own* deadline of ``deadline_ms`` (when
        set), measured from the moment a worker picks it up.  Outcomes
        come back in request order.
        """
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers}"
            )
        pending: "queue.Queue[Optional[int]]" = queue.Queue()
        for index in range(len(requests)):
            pending.put(index)
        for _ in range(workers):
            pending.put(None)  # one poison pill per worker
        outcomes: List[Optional[QueryOutcome]] = [None] * len(requests)
        worker_errors: List[BaseException] = []

        def work() -> None:
            while True:
                index = pending.get()
                if index is None:
                    return
                deadline = (
                    Deadline.after_ms(deadline_ms)
                    if deadline_ms is not None
                    else None
                )
                try:
                    outcomes[index] = self.submit(
                        requests[index], deadline=deadline
                    )
                # metalint: ignore[cancellation-hygiene] — submit()
                # already converts cancellation into an outcome, so
                # anything caught here is an unexpected worker crash;
                # it is re-raised on the caller thread after join().
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    worker_errors.append(exc)
                    return

        started = time.perf_counter()
        threads = [
            threading.Thread(target=work, name=f"query-worker-{i}")
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started
        if worker_errors:
            raise worker_errors[0]
        done = [o for o in outcomes if o is not None]
        if len(done) != len(requests):
            raise MetricostError(
                f"worker pool lost {len(requests) - len(done)} request(s)"
            )
        return ServiceReport(outcomes=done, wall_s=wall_s, workers=workers)
