"""Storage simulation: disk cost model and paged store."""

from .diskmodel import DiskModel, QueryCost
from .pager import PageStore, PagerStats

__all__ = ["DiskModel", "QueryCost", "PageStore", "PagerStats"]
