"""The disk cost model of Section 4.1.

``c_IO = t_pos + NS * t_trans`` — a positioning time plus a transfer time
proportional to the node size — and ``c_CPU`` per distance computation.
The paper's worked example uses ``c_IO = (10 + NS * 1) ms`` (NS in KB) and
``c_CPU = 5 ms``, which yields an optimal node size of 8 KB for the
10^6-object, 5-dimensional clustered tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = ["DiskModel", "QueryCost"]


@dataclass(frozen=True)
class DiskModel:
    """Linear disk access cost: ``t_pos + size_kb * t_trans`` per node read.

    Times are milliseconds, matching the paper's example values.
    """

    positioning_ms: float = 10.0
    transfer_ms_per_kb: float = 1.0
    distance_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.positioning_ms < 0:
            raise InvalidParameterError(
                f"positioning_ms must be >= 0, got {self.positioning_ms}"
            )
        if self.transfer_ms_per_kb < 0:
            raise InvalidParameterError(
                f"transfer_ms_per_kb must be >= 0, got {self.transfer_ms_per_kb}"
            )
        if self.distance_ms < 0:
            raise InvalidParameterError(
                f"distance_ms must be >= 0, got {self.distance_ms}"
            )

    def io_cost_ms(self, node_size_kb: float) -> float:
        """``c_IO`` for one node read of the given size."""
        if node_size_kb <= 0:
            raise InvalidParameterError(
                f"node_size_kb must be > 0, got {node_size_kb}"
            )
        return self.positioning_ms + node_size_kb * self.transfer_ms_per_kb

    def query_cost_ms(
        self, nodes: float, dists: float, node_size_kb: float
    ) -> "QueryCost":
        """Combine node reads and distance computations into milliseconds."""
        if nodes < 0 or dists < 0:
            raise InvalidParameterError(
                f"costs must be >= 0, got nodes={nodes}, dists={dists}"
            )
        io_ms = nodes * self.io_cost_ms(node_size_kb)
        cpu_ms = dists * self.distance_ms
        return QueryCost(io_ms=io_ms, cpu_ms=cpu_ms)


@dataclass(frozen=True)
class QueryCost:
    """I/O and CPU time of one query under a :class:`DiskModel`."""

    io_ms: float
    cpu_ms: float

    @property
    def total_ms(self) -> float:
        return self.io_ms + self.cpu_ms
