"""A simulated page store with access accounting.

The M-tree counts logical node reads itself; this pager adds the next layer
a real deployment would have — a fixed-size page store with an optional LRU
buffer pool — so that experiments can also report *physical* reads under
caching, an extension beyond the paper's buffer-less I/O counting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..exceptions import InvalidParameterError
from ..observability import state as _obs

__all__ = ["PageStore", "PagerStats"]


@dataclass
class PagerStats:
    """Accounting of a :class:`PageStore`.

    When observability is installed (:func:`repro.observability.install`)
    the same quantities are mirrored, update for update, into the registry
    counters ``pager.logical_reads`` / ``pager.physical_reads`` /
    ``pager.writes`` / ``pager.buffer_hits`` — this dataclass stays the
    per-store view, the registry the process-wide one.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    @property
    def buffer_hits(self) -> int:
        return self.logical_reads - self.physical_reads

    @classmethod
    def from_registry(cls, registry=None) -> "PagerStats":
        """Process-wide pager stats as seen by the metrics registry.

        A thin view for callers that want aggregate accounting across
        every live :class:`PageStore`; with observability disabled the
        result is all zeros.
        """
        registry = registry if registry is not None else _obs.registry
        if registry is None:
            return cls()
        return cls(
            logical_reads=int(registry.counter_value("pager.logical_reads")),
            physical_reads=int(
                registry.counter_value("pager.physical_reads")
            ),
            writes=int(registry.counter_value("pager.writes")),
        )


class PageStore:
    """Fixed-size pages addressed by id, with an optional LRU buffer.

    ``buffer_pages = 0`` disables caching: every logical read is physical,
    which is the paper's implicit model (node accesses == page reads).

    Thread safety: all operations hold an internal lock, so a store (and
    its LRU recency list) can be shared by the concurrent query service
    (:mod:`repro.service`) without torn ``OrderedDict`` state or lost
    ``stats`` updates.  The lock covers the in-memory bookkeeping only —
    payloads themselves are returned by reference and must not be mutated
    by readers.
    """

    def __init__(self, page_size_bytes: int, buffer_pages: int = 0):
        if page_size_bytes < 1:
            raise InvalidParameterError(
                f"page_size_bytes must be >= 1, got {page_size_bytes}"
            )
        if buffer_pages < 0:
            raise InvalidParameterError(
                f"buffer_pages must be >= 0, got {buffer_pages}"
            )
        self.page_size_bytes = page_size_bytes
        self.buffer_pages = buffer_pages
        self._pages: Dict[int, Any] = {}
        self._buffer: "OrderedDict[int, Any]" = OrderedDict()
        self._next_id = 0
        self._lock = threading.Lock()
        self.stats = PagerStats()

    def allocate(self, payload: Any) -> int:
        """Store a payload in a new page; returns the page id."""
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._pages[page_id] = payload
            self.stats.writes += 1
        if _obs.registry is not None:
            _obs.registry.inc("pager.writes")
        return page_id

    def write(self, page_id: int, payload: Any) -> None:
        """Overwrite an existing page."""
        with self._lock:
            if page_id not in self._pages:
                raise InvalidParameterError(f"unknown page id {page_id}")
            self._pages[page_id] = payload
            self._buffer.pop(page_id, None)
            self.stats.writes += 1
        if _obs.registry is not None:
            _obs.registry.inc("pager.writes")

    def read(self, page_id: int) -> Any:
        """Read a page, through the buffer if one is configured."""
        reg = _obs.registry
        with self._lock:
            if page_id not in self._pages:
                raise InvalidParameterError(f"unknown page id {page_id}")
            self.stats.logical_reads += 1
            if self.buffer_pages > 0 and page_id in self._buffer:
                self._buffer.move_to_end(page_id)
                payload = self._buffer[page_id]
                hit = True
            else:
                self.stats.physical_reads += 1
                payload = self._pages[page_id]
                hit = False
                if self.buffer_pages > 0:
                    self._buffer[page_id] = payload
                    if len(self._buffer) > self.buffer_pages:
                        self._buffer.popitem(last=False)
        if reg is not None:
            reg.inc("pager.logical_reads")
            if hit:
                reg.inc("pager.buffer_hits")
            else:
                reg.inc("pager.physical_reads")
        return payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def page_ids(self) -> list:
        """Every allocated page id, ascending.

        The allocation-table view a structural fsck needs: reachability
        from the root can only be compared against the set of pages that
        actually exist (see
        :func:`repro.reliability.fsck.fsck_page_graph`).
        """
        with self._lock:
            return sorted(self._pages)

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = PagerStats()
