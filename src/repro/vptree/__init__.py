"""The vp-tree access method (binary and m-way)."""

from .stats import VPTreeShape, collect_vptree_shape
from .tree import VPKNNResult, VPNode, VPQueryStats, VPRangeResult, VPTree

__all__ = [
    "VPTree",
    "VPNode",
    "VPQueryStats",
    "VPRangeResult",
    "VPKNNResult",
    "VPTreeShape",
    "collect_vptree_shape",
]
