"""Structural statistics of a built vp-tree.

The Section 5 cost model predicts access probabilities from the overall
distance distribution alone (cutoffs estimated as ``F^{-1}(i/m)``); these
helpers extract the *actual* cutoffs and shape of a built tree so the
validation bench can compare model assumptions against reality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..exceptions import EmptyTreeError
from .tree import VPNode, VPTree

__all__ = ["VPTreeShape", "collect_vptree_shape"]


@dataclass
class VPTreeShape:
    """Aggregate shape of a vp-tree."""

    n_nodes: int
    height: int
    nodes_per_depth: Dict[int, int]
    root_cutoffs: List[float]
    mean_cutoffs_per_depth: Dict[int, List[float]]


def collect_vptree_shape(tree: VPTree) -> VPTreeShape:
    """Walk the tree collecting node counts and average cutoffs by depth."""
    root = tree.root
    if root is None:
        raise EmptyTreeError("cannot collect statistics from an empty vp-tree")
    nodes_per_depth: Dict[int, int] = {}
    cutoffs_per_depth: Dict[int, List[List[float]]] = {}
    stack: List[tuple[VPNode, int]] = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        nodes_per_depth[depth] = nodes_per_depth.get(depth, 0) + 1
        if node.cutoffs:
            cutoffs_per_depth.setdefault(depth, []).append(list(node.cutoffs))
        for child in node.children:
            if child is not None:
                stack.append((child, depth + 1))
    mean_cutoffs = {
        depth: list(np.mean(np.array(rows), axis=0))
        for depth, rows in cutoffs_per_depth.items()
        if rows and all(len(row) == len(rows[0]) for row in rows)
    }
    return VPTreeShape(
        n_nodes=sum(nodes_per_depth.values()),
        height=max(nodes_per_depth),
        nodes_per_depth=nodes_per_depth,
        root_cutoffs=list(root.cutoffs),
        mean_cutoffs_per_depth=mean_cutoffs,
    )
