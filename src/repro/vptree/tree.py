"""The vp-tree (vantage-point tree) of Chiueh / Yianilos, m-way variant.

Section 5 of the paper: each internal node holds a *vantage point* — an
object of the dataset — and ``m`` children; the distances between the
vantage point and the objects below it are split into ``m`` groups of equal
cardinality by cutoff values ``mu_1 <= ... <= mu_{m-1}``; child ``i`` holds
the objects whose distance lies in ``(mu_{i-1}, mu_i]``.  The tree stores
one object per node (the vantage point), so the cost model's ``e(N) = 1``:
accessing a node costs exactly one distance computation.

Range search descends child ``i`` iff ``mu_{i-1} - r_Q < d(Q, O_v) <=
mu_i + r_Q`` (the paper's access criterion, with ``mu_0 = 0`` and ``mu_m``
the distance bound).  The tree is main-memory resident — the paper ignores
vp-tree I/O costs — so queries report distance computations only (node
accesses equal them by construction).
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EmptyTreeError, InvalidParameterError
from ..metrics import Metric
from ..observability import state as _obs

__all__ = ["VPNode", "VPTree", "VPQueryStats", "VPRangeResult", "VPKNNResult"]


@dataclass
class VPQueryStats:
    """Costs paid by one vp-tree query (one distance per accessed node).

    With observability installed the same quantities are mirrored into the
    registry counters ``vptree.nodes_accessed`` / ``vptree.dists_computed``
    (labelled by query ``kind``); see :mod:`repro.observability`.
    """

    nodes_accessed: int = 0
    dists_computed: int = 0

    @classmethod
    def from_registry(
        cls, kind: str = "range", registry=None
    ) -> "VPQueryStats":
        """Accumulated vp-tree stats as the registry saw them (zeros when
        observability is disabled)."""
        registry = registry if registry is not None else _obs.registry
        if registry is None:
            return cls()
        return cls(
            nodes_accessed=int(
                registry.counter_value("vptree.nodes_accessed", kind=kind)
            ),
            dists_computed=int(
                registry.counter_value("vptree.dists_computed", kind=kind)
            ),
        )


@dataclass
class VPRangeResult:
    """Range answer plus quarantine accounting (``completeness < 1.0``
    means damaged subtrees were routed around; see
    :class:`~repro.reliability.QuarantineSet`)."""

    items: List[Tuple[int, Any, float]]  # (oid, object, distance)
    stats: VPQueryStats
    skipped_subtrees: int = 0
    skipped_objects: int = 0
    completeness: float = 1.0

    def oids(self) -> List[int]:
        return [oid for oid, _obj, _dist in self.items]

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class VPKNNResult:
    """k-NN answer plus quarantine accounting (see
    :class:`VPRangeResult`)."""

    neighbors: List[Tuple[int, Any, float]]  # sorted by distance
    stats: VPQueryStats
    skipped_subtrees: int = 0
    skipped_objects: int = 0
    completeness: float = 1.0

    def distances(self) -> List[float]:
        return [dist for _oid, _obj, dist in self.neighbors]

    def oids(self) -> List[int]:
        return [oid for oid, _obj, _dist in self.neighbors]

    def __len__(self) -> int:
        return len(self.neighbors)


class VPNode:
    """One vantage point with its cutoffs and children."""

    __slots__ = ("obj", "oid", "cutoffs", "children")

    def __init__(self, obj: Any, oid: int):
        self.obj = obj
        self.oid = oid
        self.cutoffs: List[float] = []
        self.children: List[Optional["VPNode"]] = []

    @property
    def is_leaf(self) -> bool:
        return not any(child is not None for child in self.children)


class VPTree:
    """An m-way vantage-point tree over a generic metric space."""

    def __init__(
        self,
        metric: Metric,
        arity: int = 2,
        vantage_selection: str = "spread",
        seed: int = 0,
    ):
        if arity < 2:
            raise InvalidParameterError(f"arity must be >= 2, got {arity}")
        if vantage_selection not in ("random", "spread"):
            raise InvalidParameterError(
                "vantage_selection must be 'random' or 'spread', got "
                f"{vantage_selection!r}"
            )
        self.metric = metric
        self.arity = arity
        self.vantage_selection = vantage_selection
        self._rng = np.random.default_rng(seed)
        self._root: Optional[VPNode] = None
        self._n_objects = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        objects: Sequence[Any],
        metric: Metric,
        arity: int = 2,
        vantage_selection: str = "spread",
        seed: int = 0,
    ) -> "VPTree":
        """Build a vp-tree over ``objects`` (oids are input positions)."""
        tree = cls(metric, arity, vantage_selection, seed)
        if len(objects) == 0:
            return tree
        indices = list(range(len(objects)))
        tree._root = tree._build(objects, indices)
        tree._n_objects = len(objects)
        return tree

    def _select_vantage(self, objects: Sequence[Any], indices: List[int]) -> int:
        """Pick the vantage point's position within ``indices``.

        ``spread`` follows Yianilos: sample a few candidates, estimate each
        candidate's distance spread against a sample of the others, keep
        the candidate with the largest spread (better-separated partitions).
        """
        if len(indices) == 1 or self.vantage_selection == "random":
            return int(self._rng.integers(0, len(indices)))
        n_candidates = min(5, len(indices))
        n_probes = min(20, len(indices) - 1)
        candidates = self._rng.choice(len(indices), n_candidates, replace=False)
        best_pos, best_spread = 0, -1.0
        for pos in candidates:
            others = [i for i in range(len(indices)) if i != pos]
            probe_pos = self._rng.choice(
                len(others), min(n_probes, len(others)), replace=False
            )
            probes = [objects[indices[others[p]]] for p in probe_pos]
            dists = np.asarray(
                self.metric.one_to_many(objects[indices[pos]], probes)
            )
            spread = float(dists.var())
            if spread > best_spread:
                best_spread, best_pos = spread, int(pos)
        return best_pos

    def _build(self, objects: Sequence[Any], indices: List[int]) -> VPNode:
        vantage_pos = self._select_vantage(objects, indices)
        vantage_index = indices[vantage_pos]
        node = VPNode(objects[vantage_index], vantage_index)
        rest = indices[:vantage_pos] + indices[vantage_pos + 1 :]
        if not rest:
            return node
        dists = np.asarray(
            self.metric.one_to_many(objects[vantage_index], [objects[i] for i in rest])
        )
        order = np.argsort(dists, kind="stable")
        sorted_rest = [rest[i] for i in order]
        sorted_dists = dists[order]
        # Equal-cardinality groups; cutoffs are the largest distance in each
        # group (so membership is "mu_{i-1} < d <= mu_i").
        m = self.arity
        boundaries = [
            (len(sorted_rest) * (i + 1)) // m for i in range(m)
        ]  # cumulative end positions; last == len(rest)
        start = 0
        for i in range(m):
            end = boundaries[i]
            group = sorted_rest[start:end]
            if group:
                node.children.append(self._build(objects, group))
                node.cutoffs.append(float(sorted_dists[end - 1]))
            else:
                node.children.append(None)
                node.cutoffs.append(
                    float(sorted_dists[end - 1]) if end > 0 else 0.0
                )
            start = end
        # cutoffs has m entries: cutoffs[i] == mu_{i+1}; the last one is the
        # maximum distance in the subtree, kept for search bounds.
        return node

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def root(self) -> Optional[VPNode]:
        return self._root

    def __len__(self) -> int:
        return self._n_objects

    def height(self) -> int:
        def depth(node: Optional[VPNode]) -> int:
            if node is None:
                return 0
            if not node.children:
                return 1
            return 1 + max(depth(child) for child in node.children)

        return depth(self._root)

    def n_nodes(self) -> int:
        count = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(c for c in node.children if c is not None)
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @staticmethod
    def _subtree_size(node: VPNode) -> int:
        """Objects in the subtree rooted at ``node`` (one per node)."""
        size = 0
        stack = [node]
        while stack:
            current = stack.pop()
            size += 1
            stack.extend(c for c in current.children if c is not None)
        return size

    def _completeness(self, skipped_objects: int) -> float:
        if self._n_objects == 0:
            return 1.0
        return (self._n_objects - skipped_objects) / self._n_objects

    def range_query(
        self,
        query: Any,
        radius: float,
        deadline: Optional[Any] = None,
        quarantine: Optional[Any] = None,
    ) -> VPRangeResult:
        """All objects within ``radius``; one distance per accessed node.

        The traversal is *frontier-batched*: every iteration evaluates
        the query's distance to the whole current frontier through one
        :meth:`~repro.metrics.Metric.one_to_many` kernel call instead of
        one scalar ``distance()`` per node.  Whether a child is visited
        depends only on its parent's own distance, so the accessed node
        set — and therefore ``dists_computed`` — is identical to the
        node-at-a-time traversal (pinned by the golden accounting
        tests); only the kernel batch size changes.

        ``deadline`` (a :class:`~repro.context.Deadline` or
        :class:`~repro.context.Context`) is polled once per frontier
        batch, so an over-budget query raises
        :class:`~repro.exceptions.DeadlineExceededError` promptly.

        ``quarantine`` (a :class:`~repro.reliability.QuarantineSet`)
        causes quarantined subtrees to be skipped; the result's
        ``completeness`` reports the reachable fraction of the dataset.
        """
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        reg = _obs.registry
        tracer = _obs.tracer
        span = (
            tracer.span("vptree.range_query", radius=float(radius))
            if tracer is not None
            else nullcontext()
        )
        with span as sp:
            stats = VPQueryStats()
            items: List[Tuple[int, Any, float]] = []
            skipped_subtrees = 0
            skipped_objects = 0
            if self._root is None:
                return VPRangeResult(items, stats)
            if quarantine is not None and quarantine.contains(self._root):
                if reg is not None:
                    reg.inc("vptree.quarantine_skips", kind="range")
                return VPRangeResult(
                    items,
                    stats,
                    skipped_subtrees=1,
                    skipped_objects=self._subtree_size(self._root),
                    completeness=0.0,
                )
            frontier = [self._root]
            while frontier:
                if deadline is not None:
                    deadline.check("vptree range query")
                batch = frontier
                frontier = []
                if len(batch) == 1:
                    batch_dists = [
                        self.metric.distance(query, batch[0].obj)
                    ]
                else:
                    batch_dists = self.metric.one_to_many(
                        query, [n.obj for n in batch]
                    )
                stats.nodes_accessed += len(batch)
                stats.dists_computed += len(batch)
                if reg is not None:
                    reg.inc(
                        "vptree.nodes_accessed", len(batch), kind="range"
                    )
                    reg.inc(
                        "vptree.dists_computed", len(batch), kind="range"
                    )
                for node, dist in zip(batch, batch_dists):
                    dist = float(dist)
                    if dist <= radius:
                        items.append((node.oid, node.obj, dist))
                    previous_cut = 0.0
                    for cut, child in zip(node.cutoffs, node.children):
                        if child is not None:
                            # Quarantine is consulted before the shell
                            # test: a corrupt cutoff must never silently
                            # prune the damaged subtree out of the
                            # accounting.
                            if quarantine is not None and (
                                quarantine.contains(child)
                            ):
                                skipped_subtrees += 1
                                skipped_objects += self._subtree_size(
                                    child
                                )
                                if reg is not None:
                                    reg.inc(
                                        "vptree.quarantine_skips",
                                        kind="range",
                                    )
                            elif previous_cut - radius < dist <= cut + radius:
                                frontier.append(child)
                            elif reg is not None:
                                reg.inc(
                                    "vptree.pruned_subtrees", kind="range"
                                )
                        previous_cut = cut
            if reg is not None:
                reg.inc("vptree.queries", kind="range")
                reg.inc("vptree.results", len(items), kind="range")
            if sp is not None:
                sp.set(
                    nodes=stats.nodes_accessed,
                    dists=stats.dists_computed,
                    results=len(items),
                )
            return VPRangeResult(
                items,
                stats,
                skipped_subtrees=skipped_subtrees,
                skipped_objects=skipped_objects,
                completeness=self._completeness(skipped_objects),
            )

    def knn_query(
        self,
        query: Any,
        k: int,
        deadline: Optional[Any] = None,
        quarantine: Optional[Any] = None,
    ) -> VPKNNResult:
        """Best-first k-NN using per-subtree distance lower bounds.

        Unlike :meth:`range_query`, this traversal stays one node per
        kernel call *by design*: each evaluated distance may tighten the
        k-th bound, which decides whether the next-best node is visited
        at all — batching a frontier would evaluate nodes the
        sequential order proves prunable and inflate ``dists_computed``.

        ``deadline`` is polled once per node pop; ``quarantine`` routes
        around damaged subtrees (see :meth:`range_query`).
        """
        if self._root is None:
            raise EmptyTreeError("cannot run a k-NN query on an empty tree")
        if not (1 <= k <= self._n_objects):
            raise InvalidParameterError(
                f"k must lie in [1, {self._n_objects}], got {k}"
            )
        reg = _obs.registry
        tracer = _obs.tracer
        span = (
            tracer.span("vptree.knn_query", k=k)
            if tracer is not None
            else nullcontext()
        )
        with span as sp:
            stats = VPQueryStats()
            best: List[Tuple[float, int, Any]] = []  # max-heap via negation
            skipped_subtrees = 0
            skipped_objects = 0
            if quarantine is not None and quarantine.contains(self._root):
                if reg is not None:
                    reg.inc("vptree.quarantine_skips", kind="knn")
                return VPKNNResult(
                    [],
                    stats,
                    skipped_subtrees=1,
                    skipped_objects=self._subtree_size(self._root),
                    completeness=0.0,
                )

            def kth() -> float:
                return -best[0][0] if len(best) == k else float("inf")

            counter = itertools.count()
            pending: List[Tuple[float, int, VPNode]] = [
                (0.0, next(counter), self._root)
            ]
            while pending and pending[0][0] <= kth():
                if deadline is not None:
                    deadline.check("vptree k-NN query")
                _bound, _tie, node = heapq.heappop(pending)
                stats.nodes_accessed += 1
                dist = self.metric.distance(query, node.obj)
                stats.dists_computed += 1
                if reg is not None:
                    reg.inc("vptree.nodes_accessed", kind="knn")
                    reg.inc("vptree.dists_computed", kind="knn")
                if dist <= kth():
                    heapq.heappush(best, (-dist, node.oid, node.obj))
                    if len(best) > k:
                        heapq.heappop(best)
                previous_cut = 0.0
                for cut, child in zip(node.cutoffs, node.children):
                    if child is not None:
                        # Lower bound on d(Q, x) for x in the
                        # (previous_cut, cut] shell around the vantage point.
                        lower = max(previous_cut - dist, dist - cut, 0.0)
                        # Quarantine first — the bound uses the stored
                        # cutoffs, which are exactly what may be corrupt.
                        if quarantine is not None and quarantine.contains(
                            child
                        ):
                            skipped_subtrees += 1
                            skipped_objects += self._subtree_size(child)
                            if reg is not None:
                                reg.inc(
                                    "vptree.quarantine_skips", kind="knn"
                                )
                        elif lower <= kth():
                            heapq.heappush(
                                pending, (lower, next(counter), child)
                            )
                        elif reg is not None:
                            reg.inc("vptree.pruned_subtrees", kind="knn")
                    previous_cut = cut
            neighbors = sorted(
                ((oid, obj, -neg) for neg, oid, obj in best),
                key=lambda item: (item[2], item[0]),
            )
            if reg is not None:
                reg.inc("vptree.queries", kind="knn")
                reg.inc("vptree.results", len(neighbors), kind="knn")
            if sp is not None:
                sp.set(
                    nodes=stats.nodes_accessed, dists=stats.dists_computed
                )
            return VPKNNResult(
                neighbors,
                stats,
                skipped_subtrees=skipped_subtrees,
                skipped_objects=skipped_objects,
                completeness=self._completeness(skipped_objects),
            )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation."""
        if self._root is None:
            return
        seen: List[int] = []
        eps = 1e-9

        def walk(node: VPNode) -> None:
            seen.append(node.oid)
            previous_cut = 0.0
            assert len(node.cutoffs) == len(node.children)
            # metalint: ignore[float-discipline] — comparing the list to
            # a sorted copy of the *same* float objects is exact-safe:
            # no arithmetic happens, only reordering.
            assert node.cutoffs == sorted(node.cutoffs), "cutoffs not sorted"
            for cut, child in zip(node.cutoffs, node.children):
                if child is not None:
                    for descendant_oid, descendant_obj in _iter_subtree(child):
                        dist = self.metric.distance(node.obj, descendant_obj)
                        assert previous_cut - eps <= dist <= cut + eps, (
                            f"object {descendant_oid} at distance {dist} "
                            f"outside shell ({previous_cut}, {cut}]"
                        )
                    walk(child)
                previous_cut = cut

        def _iter_subtree(node: VPNode):
            stack = [node]
            while stack:
                current = stack.pop()
                yield current.oid, current.obj
                stack.extend(c for c in current.children if c is not None)

        walk(self._root)
        assert len(seen) == self._n_objects, (
            f"stored {len(seen)} objects, expected {self._n_objects}"
        )
        assert len(set(seen)) == len(seen), "duplicate oids in tree"
