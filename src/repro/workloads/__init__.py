"""Query workloads (biased query model) and actual-cost measurement."""

from .queries import QueryWorkload, sample_workload
from .runner import (
    LinearScanBaseline,
    WorkloadMeasurement,
    run_knn_workload,
    run_range_workload,
    run_vptree_knn_workload,
    run_vptree_range_workload,
)

__all__ = [
    "QueryWorkload",
    "sample_workload",
    "WorkloadMeasurement",
    "run_range_workload",
    "run_knn_workload",
    "run_vptree_range_workload",
    "run_vptree_knn_workload",
    "LinearScanBaseline",
]
