"""Query workload generation under the biased query model.

Section 2, position 2: query objects are drawn from the same distribution
``S`` as the data but do **not** necessarily belong to the indexed set.
Dataset objects carry their generating :class:`~repro.metrics.space.
BRMSpace`, so a workload is simply a fresh sample from the space — with a
membership filter available for experiments that want strictly external
queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Protocol, Sequence

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["QueryWorkload", "sample_workload"]


class _DatasetLike(Protocol):
    """What a dataset must expose to generate a workload from it."""

    def sample_queries(self, count: int, rng: np.random.Generator) -> Sequence[Any]:
        ...

    def objects(self) -> Sequence[Any]:
        ...


@dataclass
class QueryWorkload:
    """A batch of query objects plus the parameters they were drawn with."""

    queries: List[Any]
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def sample_workload(
    dataset: _DatasetLike,
    count: int,
    seed: int = 1,
    exclude_members: bool = False,
) -> QueryWorkload:
    """Draw ``count`` query objects from the dataset's distribution.

    ``exclude_members=True`` rejects queries that coincide with an indexed
    object (relevant for discrete domains such as keyword sets, where a
    fresh sample can collide with the database).
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    if not exclude_members:
        return QueryWorkload(list(dataset.sample_queries(count, rng)), seed)
    members = {_hashable(obj) for obj in dataset.objects()}
    queries: List[Any] = []
    attempts = 0
    limit = 100 * count
    while len(queries) < count:
        attempts += 1
        if attempts > limit:
            raise InvalidParameterError(
                f"could not draw {count} non-member queries in {limit} attempts"
            )
        batch = dataset.sample_queries(count, rng)
        for query in batch:
            if len(queries) >= count:
                break
            if _hashable(query) not in members:
                queries.append(query)
    return QueryWorkload(queries, seed)


def _hashable(obj: Any):
    if isinstance(obj, np.ndarray):
        return obj.tobytes()
    return obj
