"""Measuring *actual* query costs on built indexes.

The validation experiments compare model estimates against averages over a
query workload (the paper averages over 1000 queries).  The runner executes
each query, collects the per-query node accesses / distance computations /
result sizes, and reports means with standard errors so benches can print
confidence alongside the point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..mtree import MTree
from ..vptree import VPTree

__all__ = ["WorkloadMeasurement", "run_range_workload", "run_knn_workload",
           "run_vptree_range_workload", "LinearScanBaseline"]


@dataclass
class WorkloadMeasurement:
    """Mean observed costs over a workload, with dispersion."""

    mean_nodes: float
    mean_dists: float
    mean_results: float
    std_nodes: float
    std_dists: float
    n_queries: int
    mean_nn_distance: Optional[float] = None  # k-NN workloads only

    def stderr_nodes(self) -> float:
        return self.std_nodes / np.sqrt(self.n_queries) if self.n_queries else 0.0

    def stderr_dists(self) -> float:
        return self.std_dists / np.sqrt(self.n_queries) if self.n_queries else 0.0


def _summarise(
    nodes: List[int],
    dists: List[int],
    results: List[int],
    nn_distances: Optional[List[float]] = None,
) -> WorkloadMeasurement:
    nodes_arr = np.asarray(nodes, dtype=np.float64)
    dists_arr = np.asarray(dists, dtype=np.float64)
    results_arr = np.asarray(results, dtype=np.float64)
    return WorkloadMeasurement(
        mean_nodes=float(nodes_arr.mean()),
        mean_dists=float(dists_arr.mean()),
        mean_results=float(results_arr.mean()),
        std_nodes=float(nodes_arr.std(ddof=0)),
        std_dists=float(dists_arr.std(ddof=0)),
        n_queries=len(nodes),
        mean_nn_distance=(
            float(np.mean(nn_distances)) if nn_distances else None
        ),
    )


def run_range_workload(
    tree: MTree,
    queries: Iterable[Any],
    radius: float,
    use_parent_pruning: bool = False,
) -> WorkloadMeasurement:
    """Run ``range(Q, radius)`` for every query on an M-tree."""
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    for query in queries:
        outcome = tree.range_query(query, radius, use_parent_pruning)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
    if not nodes:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results)


def run_knn_workload(
    tree: MTree,
    queries: Iterable[Any],
    k: int,
    use_parent_pruning: bool = False,
) -> WorkloadMeasurement:
    """Run ``NN(Q, k)`` for every query on an M-tree.

    ``mean_nn_distance`` records the average distance of the k-th neighbor
    (compared against ``E[nn_{Q,k}]`` in Figure 2(c)).
    """
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    kth_distances: List[float] = []
    for query in queries:
        outcome = tree.knn_query(query, k, use_parent_pruning)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
        kth_distances.append(outcome.neighbors[-1].distance)
    if not nodes:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results, kth_distances)


def run_vptree_range_workload(
    tree: VPTree, queries: Iterable[Any], radius: float
) -> WorkloadMeasurement:
    """Run ``range(Q, radius)`` for every query on a vp-tree."""
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    for query in queries:
        outcome = tree.range_query(query, radius)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
    if not nodes:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results)


def run_vptree_knn_workload(
    tree: VPTree, queries: Iterable[Any], k: int
) -> WorkloadMeasurement:
    """Run ``NN(Q, k)`` for every query on a vp-tree."""
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    kth: List[float] = []
    for query in queries:
        outcome = tree.knn_query(query, k)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
        kth.append(outcome.neighbors[-1][2])
    if not nodes:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results, kth)


class LinearScanBaseline:
    """Sequential scan: the trivial comparator every index must beat.

    Costs are exact by construction: ``n`` distance computations and
    ``ceil(n * object_bytes / node_size)`` page reads per query.
    """

    def __init__(self, objects, metric, object_bytes: int, node_size_bytes: int):
        if node_size_bytes < object_bytes:
            raise InvalidParameterError(
                "node_size_bytes must hold at least one object"
            )
        self.objects = list(objects)
        self.metric = metric
        per_page = max(1, node_size_bytes // object_bytes)
        self.pages = int(np.ceil(len(self.objects) / per_page))

    def range_query(self, query: Any, radius: float):
        """Return (matches, nodes_accessed, dists_computed)."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        distances = np.asarray(self.metric.one_to_many(query, self.objects))
        matches = [
            (i, self.objects[i], float(d))
            for i, d in enumerate(distances)
            if d <= radius
        ]
        return matches, self.pages, len(self.objects)

    def knn_query(self, query: Any, k: int):
        """Return (neighbors sorted by distance, nodes, dists)."""
        if not (1 <= k <= len(self.objects)):
            raise InvalidParameterError(
                f"k must lie in [1, {len(self.objects)}], got {k}"
            )
        distances = np.asarray(self.metric.one_to_many(query, self.objects))
        order = np.argsort(distances, kind="stable")[:k]
        neighbors = [
            (int(i), self.objects[int(i)], float(distances[int(i)]))
            for i in order
        ]
        return neighbors, self.pages, len(self.objects)
