"""Measuring *actual* query costs on built indexes.

The validation experiments compare model estimates against averages over a
query workload (the paper averages over 1000 queries).  The runner executes
each query, collects the per-query node accesses / distance computations /
result sizes, and reports means with standard errors so benches can print
confidence alongside the point estimates.

Error isolation: with ``capture_errors=True`` (implied whenever a
``fault_policy`` is given) a query that raises is recorded in
``failed_queries``/``errors`` and the workload continues — one bad query
out of 1000 yields a partial :class:`WorkloadMeasurement`, not an aborted
run.  A :class:`~repro.reliability.FaultPolicy` replays each query's page
accesses through a :class:`~repro.reliability.FaultyPageStore`, optionally
under a :class:`~repro.reliability.RetryPolicy`, simulating flaky storage
under the tree (see ``docs/robustness.md``).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

import numpy as np

from ..exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    OperationCancelledError,
)
from ..mtree import MTree
from ..observability import state as _obs
from ..reliability.faults import FaultPolicy, FaultyPageStore
from ..reliability.retry import RetryingPageStore, RetryPolicy
from ..storage.pager import PageStore
from ..vptree import VPTree

__all__ = ["WorkloadMeasurement", "run_range_workload", "run_knn_workload",
           "run_vptree_range_workload", "LinearScanBaseline"]

MAX_RECORDED_ERRORS = 20  # keep the measurement small on pathological runs


@dataclass
class WorkloadMeasurement:
    """Mean observed costs over a workload, with dispersion.

    Means cover the *successful* queries only; ``failed_queries`` counts
    the ones isolated by error capture, and ``errors`` keeps the first few
    error strings for diagnosis.
    """

    mean_nodes: float
    mean_dists: float
    mean_results: float
    std_nodes: float
    std_dists: float
    n_queries: int
    mean_nn_distance: Optional[float] = None  # k-NN workloads only
    failed_queries: int = 0
    errors: List[str] = field(default_factory=list)
    mean_query_seconds: Optional[float] = None  # wall-clock per query

    @property
    def success_rate(self) -> float:
        total = self.n_queries + self.failed_queries
        return self.n_queries / total if total else 0.0

    def stderr_nodes(self) -> float:
        return self.std_nodes / np.sqrt(self.n_queries) if self.n_queries else 0.0

    def stderr_dists(self) -> float:
        return self.std_dists / np.sqrt(self.n_queries) if self.n_queries else 0.0


def _summarise(
    nodes: List[int],
    dists: List[int],
    results: List[int],
    nn_distances: Optional[List[float]] = None,
    failures: Optional[List[str]] = None,
    seconds: Optional[List[float]] = None,
) -> WorkloadMeasurement:
    failures = failures or []
    if not nodes:
        # Every query failed: a degenerate but *reportable* measurement.
        return WorkloadMeasurement(
            mean_nodes=0.0,
            mean_dists=0.0,
            mean_results=0.0,
            std_nodes=0.0,
            std_dists=0.0,
            n_queries=0,
            failed_queries=len(failures),
            errors=failures[:MAX_RECORDED_ERRORS],
        )
    nodes_arr = np.asarray(nodes, dtype=np.float64)
    dists_arr = np.asarray(dists, dtype=np.float64)
    results_arr = np.asarray(results, dtype=np.float64)
    return WorkloadMeasurement(
        mean_nodes=float(nodes_arr.mean()),
        mean_dists=float(dists_arr.mean()),
        mean_results=float(results_arr.mean()),
        std_nodes=float(nodes_arr.std(ddof=0)),
        std_dists=float(dists_arr.std(ddof=0)),
        n_queries=len(nodes),
        mean_nn_distance=(
            float(np.mean(nn_distances)) if nn_distances else None
        ),
        failed_queries=len(failures),
        errors=failures[:MAX_RECORDED_ERRORS],
        mean_query_seconds=(
            float(np.mean(seconds)) if seconds else None
        ),
    )


def _record_query(kind: str, ok: bool, elapsed_s: float) -> None:
    """Mirror one workload query into the registry (no-op when disabled)."""
    reg = _obs.registry
    if reg is None:
        return
    if ok:
        reg.inc("workload.queries", kind=kind)
        reg.observe("workload.query_seconds", elapsed_s, kind=kind)
    else:
        reg.inc("workload.failed_queries", kind=kind)


class _PageReplayer:
    """Replay a query's node-access log through a (possibly faulty) store.

    One page per M-tree node, like the buffer-pool bench: the store raises
    :class:`~repro.exceptions.IOFaultError` (or, retries exhausted,
    :class:`~repro.exceptions.RetryExhaustedError`) when the policy decides
    a read fails — which fails the *query*, exactly as a real device error
    under the index would.
    """

    def __init__(
        self,
        tree: MTree,
        policy: FaultPolicy,
        retry: Optional[RetryPolicy] = None,
    ):
        inner = PageStore(page_size_bytes=tree.layout.node_size_bytes)
        self._page_of = {
            id(node): inner.allocate(None) for node in tree.iter_nodes()
        }
        store = FaultyPageStore(inner, policy)
        self.store = (
            RetryingPageStore(store, retry) if retry is not None else store
        )

    def replay(self, access_log: List[int]) -> None:
        for node_id in access_log:
            self.store.read(self._page_of[node_id])


def _run_mtree_workload(
    tree: MTree,
    queries: Iterable[Any],
    run_one,
    capture_errors: bool,
    fault_policy: Optional[FaultPolicy],
    retry: Optional[RetryPolicy],
    want_kth: bool,
    kind: str,
) -> WorkloadMeasurement:
    capture = capture_errors or fault_policy is not None
    replayer = (
        _PageReplayer(tree, fault_policy, retry)
        if fault_policy is not None
        else None
    )
    tracer = _obs.tracer
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    kth: List[float] = []
    failures: List[str] = []
    seconds: List[float] = []
    n_seen = 0
    for index, query in enumerate(queries):
        n_seen += 1
        log: Optional[List[int]] = [] if replayer is not None else None
        span = (
            tracer.span("workload.query", kind=kind, index=index)
            if tracer is not None
            else nullcontext()
        )
        started = time.perf_counter()
        try:
            with span as sp:
                outcome = run_one(query, log)
                if replayer is not None:
                    replayer.replay(log)
                if sp is not None:
                    sp.set(
                        nodes=outcome.stats.nodes_accessed,
                        dists=outcome.stats.dists_computed,
                        results=len(outcome),
                    )
        except (DeadlineExceededError, OperationCancelledError):
            # Cancellation is control flow, not a query failure: even
            # with capture enabled it must unwind the whole run.
            _record_query(kind, False, 0.0)
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            _record_query(kind, False, 0.0)
            if not capture:
                raise
            failures.append(
                f"query {index}: {type(exc).__name__}: {exc}"
            )
            continue
        elapsed = time.perf_counter() - started
        _record_query(kind, True, elapsed)
        seconds.append(elapsed)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
        if want_kth:
            kth.append(outcome.neighbors[-1].distance)
    if n_seen == 0:
        raise InvalidParameterError("workload is empty")
    return _summarise(
        nodes, dists, results, kth if want_kth else None, failures, seconds
    )


def run_range_workload(
    tree: MTree,
    queries: Iterable[Any],
    radius: float,
    use_parent_pruning: bool = False,
    capture_errors: bool = False,
    fault_policy: Optional[FaultPolicy] = None,
    retry: Optional[RetryPolicy] = None,
) -> WorkloadMeasurement:
    """Run ``range(Q, radius)`` for every query on an M-tree."""
    return _run_mtree_workload(
        tree,
        queries,
        lambda query, log: tree.range_query(
            query, radius, use_parent_pruning, access_log=log
        ),
        capture_errors,
        fault_policy,
        retry,
        want_kth=False,
        kind="range",
    )


def run_knn_workload(
    tree: MTree,
    queries: Iterable[Any],
    k: int,
    use_parent_pruning: bool = False,
    capture_errors: bool = False,
    fault_policy: Optional[FaultPolicy] = None,
    retry: Optional[RetryPolicy] = None,
) -> WorkloadMeasurement:
    """Run ``NN(Q, k)`` for every query on an M-tree.

    ``mean_nn_distance`` records the average distance of the k-th neighbor
    (compared against ``E[nn_{Q,k}]`` in Figure 2(c)).
    """
    return _run_mtree_workload(
        tree,
        queries,
        lambda query, log: tree.knn_query(
            query, k, use_parent_pruning, access_log=log
        ),
        capture_errors,
        fault_policy,
        retry,
        want_kth=True,
        kind="knn",
    )


def run_vptree_range_workload(
    tree: VPTree,
    queries: Iterable[Any],
    radius: float,
    capture_errors: bool = False,
) -> WorkloadMeasurement:
    """Run ``range(Q, radius)`` for every query on a vp-tree."""
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    failures: List[str] = []
    seconds: List[float] = []
    n_seen = 0
    for index, query in enumerate(queries):
        n_seen += 1
        started = time.perf_counter()
        try:
            outcome = tree.range_query(query, radius)
        except (DeadlineExceededError, OperationCancelledError):
            _record_query("vptree_range", False, 0.0)
            raise
        except Exception as exc:  # noqa: BLE001
            _record_query("vptree_range", False, 0.0)
            if not capture_errors:
                raise
            failures.append(f"query {index}: {type(exc).__name__}: {exc}")
            continue
        elapsed = time.perf_counter() - started
        _record_query("vptree_range", True, elapsed)
        seconds.append(elapsed)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
    if n_seen == 0:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results, failures=failures,
                      seconds=seconds)


def run_vptree_knn_workload(
    tree: VPTree,
    queries: Iterable[Any],
    k: int,
    capture_errors: bool = False,
) -> WorkloadMeasurement:
    """Run ``NN(Q, k)`` for every query on a vp-tree."""
    nodes: List[int] = []
    dists: List[int] = []
    results: List[int] = []
    kth: List[float] = []
    failures: List[str] = []
    seconds: List[float] = []
    n_seen = 0
    for index, query in enumerate(queries):
        n_seen += 1
        started = time.perf_counter()
        try:
            outcome = tree.knn_query(query, k)
        except (DeadlineExceededError, OperationCancelledError):
            _record_query("vptree_knn", False, 0.0)
            raise
        except Exception as exc:  # noqa: BLE001
            _record_query("vptree_knn", False, 0.0)
            if not capture_errors:
                raise
            failures.append(f"query {index}: {type(exc).__name__}: {exc}")
            continue
        elapsed = time.perf_counter() - started
        _record_query("vptree_knn", True, elapsed)
        seconds.append(elapsed)
        nodes.append(outcome.stats.nodes_accessed)
        dists.append(outcome.stats.dists_computed)
        results.append(len(outcome))
        kth.append(outcome.neighbors[-1][2])
    if n_seen == 0:
        raise InvalidParameterError("workload is empty")
    return _summarise(nodes, dists, results, kth, failures,
                      seconds=seconds)


class LinearScanBaseline:
    """Sequential scan: the trivial comparator every index must beat.

    Costs are exact by construction: ``n`` distance computations and
    ``ceil(n * object_bytes / node_size)`` page reads per query.
    """

    def __init__(self, objects, metric, object_bytes: int, node_size_bytes: int):
        if node_size_bytes < object_bytes:
            raise InvalidParameterError(
                "node_size_bytes must hold at least one object"
            )
        self.objects = list(objects)
        self.metric = metric
        per_page = max(1, node_size_bytes // object_bytes)
        self.pages = int(np.ceil(len(self.objects) / per_page))

    def range_query(self, query: Any, radius: float):
        """Return (matches, nodes_accessed, dists_computed)."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        distances = np.asarray(self.metric.one_to_many(query, self.objects))
        matches = [
            (i, self.objects[i], float(d))
            for i, d in enumerate(distances)
            if d <= radius
        ]
        return matches, self.pages, len(self.objects)

    def knn_query(self, query: Any, k: int):
        """Return (neighbors sorted by distance, nodes, dists)."""
        if not (1 <= k <= len(self.objects)):
            raise InvalidParameterError(
                f"k must lie in [1, {len(self.objects)}], got {k}"
            )
        distances = np.asarray(self.metric.one_to_many(query, self.objects))
        order = np.argsort(distances, kind="stable")[:k]
        neighbors = [
            (int(i), self.objects[int(i)], float(distances[int(i)]))
            for i in order
        ]
        return neighbors, self.pages, len(self.objects)
