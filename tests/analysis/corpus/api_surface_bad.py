"""Seeded api-surface violation: __all__ exports a phantom name."""

# metalint: module=repro.corpus_api_bad

__all__ = ["phantom_export"]
