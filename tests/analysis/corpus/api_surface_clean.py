"""A bound, documented export surface: no findings expected."""

# metalint: module=repro.corpus_api_clean

from repro.analysis import Finding

__all__ = ["Finding"]
