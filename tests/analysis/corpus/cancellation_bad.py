"""Seeded cancellation-hygiene violation: isolation swallows deadlines."""


def drain(tasks):
    results, failures = [], 0
    for task in tasks:
        try:
            results.append(task())
        except Exception:
            # Swallows DeadlineExceededError/OperationCancelledError
            # along with real failures: a cancelled drain keeps going.
            failures += 1
            continue
    return results, failures


def drain_with_capture(tasks, capture):
    results = []
    for task in tasks:
        try:
            results.append(task())
        except Exception:
            # The conditional re-raise is not an escape route for the
            # capture=True path — still a violation.
            if not capture:
                raise
    return results
