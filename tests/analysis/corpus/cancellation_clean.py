"""Broad isolation with cancellation hygiene: no findings expected."""

from repro.exceptions import DeadlineExceededError, OperationCancelledError


def drain(tasks):
    results, failures = [], 0
    for task in tasks:
        try:
            results.append(task())
        except (DeadlineExceededError, OperationCancelledError):
            raise
        except Exception:
            failures += 1
            continue
    return results, failures


def drain_with_triage(tasks):
    results = []
    for task in tasks:
        try:
            results.append(task())
        except Exception as exc:
            if isinstance(
                exc, (DeadlineExceededError, OperationCancelledError)
            ):
                raise
            continue
    return results
