"""Seeded deadline-propagation violations: dropped and decorative budgets."""

# metalint: module=repro.service.corpus_deadline_bad


def scan(metric, items, query, deadline):
    # Decorative budget: accepts a deadline, runs the batched kernel,
    # never reads the parameter.
    return metric.one_to_many(query, items)


def search(metric, items, query, deadline):
    deadline.check()
    # Drop site: scan() accepts a deadline and reaches the kernels, but
    # the budget is not forwarded — the query becomes unbounded below.
    return scan(metric, items, query, None)
