"""Deadline-propagation clean corpus: the budget threads to the edge."""

# metalint: module=repro.service.corpus_deadline_clean


def scan(metric, items, query, deadline):
    if deadline is not None:
        deadline.check()
    return metric.one_to_many(query, items)


def search(metric, items, query, deadline):
    deadline.check()
    return scan(metric, items, query, deadline)


def estimate(metric, items, query):
    # No deadline parameter at all: nothing to drop, nothing to flag —
    # widening a signature is a design decision, not a lint fix.
    return metric.one_to_many(query, items)
