"""Seeded durability-protocol violations: raw I/O and unfsynced acks."""

# metalint: module=repro.ingest.corpus_durability_bad

import os


class AppendAck:
    def __init__(self, seq):
        self.seq = seq


class BatchAck:
    def __init__(self, count):
        self.count = count


def write_manifest(path, payload):
    # Raw writing-mode open outside a blessed helper: a crash between
    # write and close leaves a torn manifest.
    with open(path, "w") as fh:
        fh.write(payload)


def swap_segment(tmp, final):
    # Raw os.replace outside a blessed helper: the commit point of the
    # atomic-write protocol, used naked.
    os.replace(tmp, final)


def append(fh, record):
    # Ack before any fsync: the classic unfsynced-ack bug.
    fh.write(record)
    return AppendAck(seq=1)


def append_batch(fh, records, sync):
    for record in records:
        fh.write(record)
    if sync:
        os.fsync(fh.fileno())
    # fsync only happens on one branch, so no return is dominated by it.
    return BatchAck(len(records))
