"""Durability-protocol clean corpus: blessed helpers, fsync-before-ack."""

# metalint: module=repro.ingest.corpus_durability_clean

import os


class AppendAck:
    def __init__(self, seq):
        self.seq = seq


def _atomic_write_text(path, payload):
    # Blessed helper: writing-mode open and the rename commit point are
    # allowed here — this *is* the protocol.
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def open_segment(path):
    # Append mode is fine: the WAL appends and then fsyncs.
    return open(path, "ab")


def append(fh, record):
    fh.write(record)
    os.fsync(fh.fileno())
    return AppendAck(seq=1)


def checkpoint(path, payload):
    # Durable via a resolved callee that reaches os.fsync.
    _atomic_write_text(path, payload)
    return AppendAck(seq=2)


def append_guarded(fh, record, sync):
    fh.write(record)
    if sync:
        os.fsync(fh.fileno())
        return AppendAck(seq=3)
    raise RuntimeError  # metalint: ignore[exception-hierarchy] — corpus
