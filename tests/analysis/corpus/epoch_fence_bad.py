"""Seeded epoch-fence violations: silent comparisons and epoch merges."""

# metalint: module=repro.cluster.corpus_epoch_bad


def serve_cached(view, cached):
    # Unfenced equality: a stale hit silently falls through to the
    # cached answer instead of raising StaleEpochError.
    if cached.epoch == view.epoch:
        return cached
    return view


def merge_outcomes(left, right):
    # max() over epochs manufactures a world no shard ever observed.
    return max(left.epoch, right.epoch)


def combined_epoch(left, right):
    # Arithmetic over two epochs: epochs are identities, not quantities.
    return left.epoch + right.epoch
