"""Epoch-fence clean corpus: fenced comparisons, monotonic bumps."""

# metalint: module=repro.cluster.corpus_epoch_clean

from repro.exceptions import InvalidParameterError, StaleEpochError


def require_epoch(view, epoch):
    # Fenced: mismatch raises StaleEpochError, callers re-pin and retry.
    if view.epoch != epoch:
        raise StaleEpochError(
            f"epoch {epoch} superseded by {view.epoch}",
            epoch=view.epoch,
        )
    return view


def install(previous, membership):
    # Fenced: non-monotonic installs are rejected with a raise.
    if membership.epoch <= previous.epoch:
        raise InvalidParameterError("membership epoch must increase")
    return membership


def bump(view):
    # The monotonic bump is the one meaningful epoch arithmetic.
    return view.epoch + 1
