"""Seeded exception-hierarchy violations: builtin raise + bare except."""


def parse_radius(text):
    try:
        value = float(text)
    except:  # noqa: E722 — the seeded bare-except violation
        value = -1.0
    if value < 0:
        raise ValueError("radius must be >= 0")
    return value
