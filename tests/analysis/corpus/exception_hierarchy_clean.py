"""Project-hierarchy raises only: no findings expected."""

from repro.exceptions import InvalidParameterError


def parse_radius(text):
    try:
        value = float(text)
    except ValueError as exc:
        raise InvalidParameterError(f"bad radius: {text!r}") from exc
    if value < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {value}")
    return value
