"""Seeded float-discipline violations: exact == on distances."""

# metalint: module=repro.core.corpus_float_bad


def shells_equal(radius_a, radius_b):
    return radius_a == radius_b


def outside_shell(dist, threshold):
    return dist != threshold
