"""Tolerance-based distance comparison: no findings expected."""

# metalint: module=repro.core.corpus_float_clean

EPS = 1e-9


def shells_equal(radius_a, radius_b):
    return abs(radius_a - radius_b) <= EPS


def is_bounded(threshold):
    # Exact comparison against the infinity sentinel is exempt.
    return threshold != float("inf")
