"""Seeded lock-discipline violations: mutation outside the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self.total = 0

    def record(self, event):
        with self._lock:
            self._events.append(event)
            self.total += 1

    def forget(self, event):
        # Both mutations race record(): _events and total are guarded
        # state (mutated under the lock above) but no lock is held here.
        self._events.remove(event)
        self.total -= 1
