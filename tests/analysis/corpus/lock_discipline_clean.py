"""Lock-discipline conventions done right: no findings expected."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self.total = 0

    def record(self, event):
        with self._lock:
            self._events.append(event)
            self.total += 1

    def forget(self, event):
        with self._lock:
            self._events.remove(event)
            self.total -= 1

    def _drain_locked(self):
        # The `_locked` suffix says the caller holds the lock.
        self._events.clear()
        self.total = 0

    def snapshot(self):
        with self._lock:
            return list(self._events), self.total
