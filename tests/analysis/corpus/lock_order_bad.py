"""Seeded lock-order violations: a cross-class cycle and a self-deadlock."""

import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []
        self.ledger = Ledger()

    def append(self, item):
        with self._lock:
            self.entries.append(item)
            # Holding Journal's lock, acquire Ledger's: edge J -> L.
            self.ledger.reconcile(item)


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.balance = 0
        self.journal = Journal()

    def reconcile(self, item):
        with self._lock:
            self.balance += 1

    def audit(self):
        with self._lock:
            # Holding Ledger's lock, acquire Journal's: edge L -> J.
            # Together with append() this is an acquisition cycle.
            self.journal.append(("audit", self.balance))


class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1
            # refresh() re-acquires the non-reentrant Lock we hold.
            self.refresh()

    def refresh(self):
        with self._lock:
            self.value = max(self.value, 0)
