"""Lock usage with an acyclic acquisition order: no findings expected."""

import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []
        self.ledger = Ledger()

    def append(self, item):
        with self._lock:
            self.entries.append(item)
        # Ledger's lock is only ever taken with Journal's released.
        self.ledger.reconcile(item)


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.balance = 0

    def reconcile(self, item):
        with self._lock:
            self.balance += 1


class Gauge:
    def __init__(self):
        # Reentrant, so bump() may call refresh() while holding it.
        self._lock = threading.RLock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1
            self.refresh()

    def refresh(self):
        with self._lock:
            self.value = max(self.value, 0)
