"""Seeded lockset-race violations: inconsistent locksets across sites."""

import threading


class WalHolder:
    def __init__(self):
        self._lock = threading.Lock()
        self._segments = []
        self._wal = open("/dev/null")  # rebound below: lifecycle-managed

    def rotate(self):
        with self._lock:
            self._segments.append(self._wal)
            self._wal = open("/dev/null")

    def forget(self, segment):
        # Unlocked write of guarded state: _segments is mutated under
        # the lock in rotate() but with an empty lockset here.
        self._segments.remove(segment)

    def checkpoint(self):
        # Unlocked dereference: _wal is rebound by rotate(), so this
        # single-expression deref races the rebind.
        return self._wal.fileno()

    def _flush_locked(self):
        self._segments.clear()

    def flush(self):
        # Naked *_locked call: the helper assumes self._lock is held,
        # the caller provably does not hold it.
        self._flush_locked()
