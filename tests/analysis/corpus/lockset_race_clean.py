"""Lockset-race clean corpus: consistent locksets, interprocedurally.

``_append_impl`` is a plain-named helper mutating guarded state, but
every one of its call sites holds the lock — the flow core's
always-held fixpoint proves it, so lockset-race stays silent where the
older same-method heuristic (lock-discipline) cannot see past the
function boundary.
"""

import threading


class SafeHolder:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._wal = open("/dev/null")

    def clear(self):
        with self._lock:
            self._items = []

    def add(self, item):
        with self._lock:
            self._append_impl(item)

    def _append_impl(self, item):
        self._items.append(item)

    def _flush_locked(self):
        self._items.clear()

    def flush(self):
        with self._lock:
            self._flush_locked()

    def checkpoint(self):
        # Snapshot-then-use: one plain read under the lock, then the
        # local is dereferenced — no race with a concurrent rebind.
        with self._lock:
            wal = self._wal
        return wal.fileno()

    def reopen(self):
        with self._lock:
            self._wal = open("/dev/null")
