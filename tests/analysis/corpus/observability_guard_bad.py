"""Seeded observability-guard violation: unguarded emission in a loop."""

# metalint: module=repro.mtree.corpus_obs_bad

from repro.observability import state as _obs


def visit_all(nodes):
    reg = _obs.registry
    visited = 0
    for _node in nodes:
        visited += 1
        # Crashes when observability is not installed, and costs a call
        # per node when it is but the guard was meant to skip it.
        reg.inc("corpus.nodes_visited")
    return visited
