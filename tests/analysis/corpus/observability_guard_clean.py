"""Snapshot-and-guard emission discipline: no findings expected."""

# metalint: module=repro.mtree.corpus_obs_clean

from contextlib import nullcontext

from repro.observability import state as _obs


def visit_all(nodes):
    reg = _obs.registry
    tracer = _obs.tracer
    visited = 0
    for _node in nodes:
        visited += 1
        if reg is not None:
            reg.inc("corpus.nodes_visited")
        span = (
            tracer.span("corpus.visit") if tracer is not None else nullcontext()
        )
        with span:
            pass
    return visited
