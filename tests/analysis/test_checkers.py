"""Per-rule corpus tests: each bad fixture fires its rule, each clean
fixture stays silent for it.

The corpus under ``tests/analysis/corpus/`` seeds exactly the violations
the checkers exist to catch.  A fixture may legitimately trip *other*
rules too (a bare ``except:`` is both an exception-hierarchy and a
cancellation-hygiene violation), so the bad-side assertions check that
the target rule is among the findings rather than the only one.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: rule -> (bad fixture, expected finding count for that rule, clean fixture)
RULE_FIXTURES = {
    "lock-discipline": ("lock_discipline_bad.py", 2, "lock_discipline_clean.py"),
    "lock-order": ("lock_order_bad.py", 2, "lock_order_clean.py"),
    "cancellation-hygiene": ("cancellation_bad.py", 2, "cancellation_clean.py"),
    "exception-hierarchy": (
        "exception_hierarchy_bad.py",
        2,
        "exception_hierarchy_clean.py",
    ),
    "float-discipline": ("float_discipline_bad.py", 2, "float_discipline_clean.py"),
    "observability-guard": (
        "observability_guard_bad.py",
        1,
        "observability_guard_clean.py",
    ),
    "api-surface": ("api_surface_bad.py", 1, "api_surface_clean.py"),
    "lockset-race": ("lockset_race_bad.py", 3, "lockset_race_clean.py"),
    "durability-protocol": (
        "durability_protocol_bad.py",
        4,
        "durability_protocol_clean.py",
    ),
    "epoch-fence": ("epoch_fence_bad.py", 3, "epoch_fence_clean.py"),
    "deadline-propagation": (
        "deadline_propagation_bad.py",
        2,
        "deadline_propagation_clean.py",
    ),
}


def _run(rule, fixture):
    return analyze_paths([CORPUS / fixture], rules=[rule], root=REPO_ROOT)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_bad_fixture_fires_rule(rule):
    bad, expected, _clean = RULE_FIXTURES[rule]
    report = _run(rule, bad)
    fired = [f for f in report.findings if f.rule == rule]
    assert len(fired) == expected, report.render()
    for finding in fired:
        assert finding.path.endswith(bad)
        assert finding.line > 0
        assert finding.snippet


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_clean_fixture_is_silent(rule):
    _bad, _expected, clean = RULE_FIXTURES[rule]
    report = _run(rule, clean)
    assert [f for f in report.findings if f.rule == rule] == [], report.render()


def test_every_rule_fires_somewhere_in_corpus():
    """Acceptance criterion: all registered project rules are exercised."""
    report = analyze_paths([CORPUS], root=REPO_ROOT)
    fired = {finding.rule for finding in report.findings}
    assert set(RULE_FIXTURES) <= fired, sorted(fired)


def test_lock_order_reports_cycle_and_self_deadlock():
    report = _run("lock-order", "lock_order_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("lock-acquisition cycle" in m for m in messages)
    assert any("self-deadlock" in m for m in messages)


def test_lock_order_survives_name_collisions_across_fixtures():
    """Bad and clean fixtures reuse class names; resolution must stay
    module-local instead of letting one file's classes shadow the other's.
    """
    report = analyze_paths(
        [CORPUS / "lock_order_bad.py", CORPUS / "lock_order_clean.py"],
        rules=["lock-order"],
        root=REPO_ROOT,
    )
    paths = {f.path for f in report.findings}
    assert len(report.findings) == 2, report.render()
    assert all(p.endswith("lock_order_bad.py") for p in paths)


def test_cancellation_findings_name_the_swallowed_exceptions():
    report = _run("cancellation-hygiene", "cancellation_bad.py")
    for finding in report.findings:
        assert "DeadlineExceededError" in finding.message


def test_exception_hierarchy_suggests_project_replacement():
    report = _run("exception-hierarchy", "exception_hierarchy_bad.py")
    messages = " ".join(f.message for f in report.findings)
    assert "InvalidParameterError" in messages


def test_lockset_race_names_all_three_bug_families():
    report = _run("lockset-race", "lockset_race_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("empty lockset" in m and "mutates" in m for m in messages)
    assert any("unlocked dereference" in m for m in messages)
    assert any("_flush_locked" in m for m in messages)


def test_lockset_race_sees_through_always_held_helpers():
    """The interprocedural upgrade over lock-discipline: a plain-named
    helper whose every call site holds the lock is not a race, even
    though the same-method heuristic cannot prove it."""
    clean = CORPUS / "lockset_race_clean.py"
    race = analyze_paths([clean], rules=["lockset-race"], root=REPO_ROOT)
    assert race.findings == [], race.render()
    old = analyze_paths([clean], rules=["lock-discipline"], root=REPO_ROOT)
    assert any(
        "_append_impl" in f.message for f in old.findings
    ), "fixture should exhibit the very false positive the flow core removes"


def test_durability_flags_both_raw_io_and_unfsynced_acks():
    report = _run("durability-protocol", "durability_protocol_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("raw open" in m for m in messages)
    assert any("os.replace" in m for m in messages)
    assert sum("not dominated" in m for m in messages) == 2


def test_epoch_fence_distinguishes_compare_and_merge():
    report = _run("epoch-fence", "epoch_fence_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("unfenced epoch comparison" in m for m in messages)
    assert any("max() over epochs" in m for m in messages)
    assert any("arithmetic combining" in m for m in messages)


def test_deadline_propagation_names_drop_and_decorative_sites():
    report = _run("deadline-propagation", "deadline_propagation_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("never reads it" in m for m in messages)
    assert any("without passing it" in m for m in messages)
