"""Per-rule corpus tests: each bad fixture fires its rule, each clean
fixture stays silent for it.

The corpus under ``tests/analysis/corpus/`` seeds exactly the violations
the checkers exist to catch.  A fixture may legitimately trip *other*
rules too (a bare ``except:`` is both an exception-hierarchy and a
cancellation-hygiene violation), so the bad-side assertions check that
the target rule is among the findings rather than the only one.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: rule -> (bad fixture, expected finding count for that rule, clean fixture)
RULE_FIXTURES = {
    "lock-discipline": ("lock_discipline_bad.py", 2, "lock_discipline_clean.py"),
    "lock-order": ("lock_order_bad.py", 2, "lock_order_clean.py"),
    "cancellation-hygiene": ("cancellation_bad.py", 2, "cancellation_clean.py"),
    "exception-hierarchy": (
        "exception_hierarchy_bad.py",
        2,
        "exception_hierarchy_clean.py",
    ),
    "float-discipline": ("float_discipline_bad.py", 2, "float_discipline_clean.py"),
    "observability-guard": (
        "observability_guard_bad.py",
        1,
        "observability_guard_clean.py",
    ),
    "api-surface": ("api_surface_bad.py", 1, "api_surface_clean.py"),
}


def _run(rule, fixture):
    return analyze_paths([CORPUS / fixture], rules=[rule], root=REPO_ROOT)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_bad_fixture_fires_rule(rule):
    bad, expected, _clean = RULE_FIXTURES[rule]
    report = _run(rule, bad)
    fired = [f for f in report.findings if f.rule == rule]
    assert len(fired) == expected, report.render()
    for finding in fired:
        assert finding.path.endswith(bad)
        assert finding.line > 0
        assert finding.snippet


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_clean_fixture_is_silent(rule):
    _bad, _expected, clean = RULE_FIXTURES[rule]
    report = _run(rule, clean)
    assert [f for f in report.findings if f.rule == rule] == [], report.render()


def test_every_rule_fires_somewhere_in_corpus():
    """Acceptance criterion: all registered project rules are exercised."""
    report = analyze_paths([CORPUS], root=REPO_ROOT)
    fired = {finding.rule for finding in report.findings}
    assert set(RULE_FIXTURES) <= fired, sorted(fired)


def test_lock_order_reports_cycle_and_self_deadlock():
    report = _run("lock-order", "lock_order_bad.py")
    messages = sorted(f.message for f in report.findings)
    assert any("lock-acquisition cycle" in m for m in messages)
    assert any("self-deadlock" in m for m in messages)


def test_lock_order_survives_name_collisions_across_fixtures():
    """Bad and clean fixtures reuse class names; resolution must stay
    module-local instead of letting one file's classes shadow the other's.
    """
    report = analyze_paths(
        [CORPUS / "lock_order_bad.py", CORPUS / "lock_order_clean.py"],
        rules=["lock-order"],
        root=REPO_ROOT,
    )
    paths = {f.path for f in report.findings}
    assert len(report.findings) == 2, report.render()
    assert all(p.endswith("lock_order_bad.py") for p in paths)


def test_cancellation_findings_name_the_swallowed_exceptions():
    report = _run("cancellation-hygiene", "cancellation_bad.py")
    for finding in report.findings:
        assert "DeadlineExceededError" in finding.message


def test_exception_hierarchy_suggests_project_replacement():
    report = _run("exception-hierarchy", "exception_hierarchy_bad.py")
    messages = " ".join(f.message for f in report.findings)
    assert "InvalidParameterError" in messages
