"""CLI tests for ``python -m repro lint``."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis import Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"

FLOAT_BAD = """\
# metalint: module=repro.core.cli_case

def close(dist, threshold):
    return dist == threshold
"""


def test_lint_src_with_repo_baseline_exits_zero(capsys):
    code = main(
        [
            "lint",
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "metalint-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "OK:" in out


def test_lint_corpus_exits_nonzero(capsys):
    code = main(["lint", str(CORPUS), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL:" in out


def test_lint_json_output(capsys):
    code = main(["lint", str(CORPUS), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format"] == "metricost-lint-report-v1"
    assert payload["ok"] is False
    assert payload["counts_by_rule"]["lock-order"] == 2


def test_lint_rules_filter(capsys):
    code = main(
        ["lint", str(CORPUS), "--no-baseline", "--json", "--rules", "api-surface"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["rules_run"] == ["api-surface"]
    assert set(payload["counts_by_rule"]) == {"api-surface"}


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in (
        "api-surface",
        "cancellation-hygiene",
        "exception-hierarchy",
        "float-discipline",
        "lock-discipline",
        "lock-order",
        "observability-guard",
    ):
        assert rule in out


def test_write_baseline_round_trip(tmp_path, capsys):
    case = tmp_path / "case.py"
    case.write_text(FLOAT_BAD, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    code = main(
        ["lint", str(case), "--write-baseline", "--baseline", str(baseline_path)]
    )
    assert code == 0
    assert len(Baseline.load(baseline_path)) == 1
    capsys.readouterr()

    # With the fresh baseline the same violation is grandfathered.
    code = main(["lint", str(case), "--baseline", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out


def test_missing_baseline_file_fails_cleanly(tmp_path, capsys):
    case = tmp_path / "clean.py"
    case.write_text("x = 1\n", encoding="utf-8")
    code = main(
        ["lint", str(case), "--baseline", str(tmp_path / "absent.json")]
    )
    assert code == 0  # no baseline file means no baseline, not a crash
