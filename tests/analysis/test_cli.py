"""CLI tests for ``python -m repro lint``."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis import Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"

FLOAT_BAD = """\
# metalint: module=repro.core.cli_case

def close(dist, threshold):
    return dist == threshold
"""


def test_lint_src_with_repo_baseline_exits_zero(capsys):
    code = main(
        [
            "lint",
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "metalint-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "OK:" in out


def test_lint_corpus_exits_nonzero(capsys):
    code = main(["lint", str(CORPUS), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL:" in out


def test_lint_json_output(capsys):
    code = main(["lint", str(CORPUS), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format"] == "metricost-lint-report-v1"
    assert payload["ok"] is False
    assert payload["counts_by_rule"]["lock-order"] == 2


def test_lint_rules_filter(capsys):
    code = main(
        ["lint", str(CORPUS), "--no-baseline", "--json", "--rules", "api-surface"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["rules_run"] == ["api-surface"]
    assert set(payload["counts_by_rule"]) == {"api-surface"}


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in (
        "api-surface",
        "cancellation-hygiene",
        "deadline-propagation",
        "durability-protocol",
        "epoch-fence",
        "exception-hierarchy",
        "float-discipline",
        "lock-discipline",
        "lock-order",
        "lockset-race",
        "observability-guard",
    ):
        assert rule in out


def test_write_baseline_round_trip(tmp_path, capsys):
    case = tmp_path / "case.py"
    case.write_text(FLOAT_BAD, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    code = main(
        ["lint", str(case), "--write-baseline", "--baseline", str(baseline_path)]
    )
    assert code == 0
    assert len(Baseline.load(baseline_path)) == 1
    capsys.readouterr()

    # With the fresh baseline the same violation is grandfathered.
    code = main(["lint", str(case), "--baseline", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out


def test_missing_baseline_file_fails_cleanly(tmp_path, capsys):
    case = tmp_path / "clean.py"
    case.write_text("x = 1\n", encoding="utf-8")
    code = main(
        ["lint", str(case), "--baseline", str(tmp_path / "absent.json")]
    )
    assert code == 0  # no baseline file means no baseline, not a crash


def test_sarif_output_is_valid_and_stable(capsys):
    code = main(["lint", str(CORPUS), "--no-baseline", "--format", "sarif"])
    first = capsys.readouterr().out
    assert code == 1  # findings still gate the exit code
    payload = json.loads(first)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "metricost-metalint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "lockset-race" in rule_ids and "durability-protocol" in rule_ids
    results = run["results"]
    assert results, "corpus findings must appear as SARIF results"
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert not location["artifactLocation"]["uri"].startswith("/")
        assert location["region"]["startLine"] >= 1

    code = main(["lint", str(CORPUS), "--no-baseline", "--format", "sarif"])
    assert capsys.readouterr().out == first  # deterministic byte-for-byte


def test_sarif_marks_baselined_findings_suppressed(tmp_path, capsys):
    case = tmp_path / "case.py"
    case.write_text(FLOAT_BAD, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    main(
        ["lint", str(case), "--write-baseline", "--baseline", str(baseline_path)]
    )
    capsys.readouterr()
    code = main(
        [
            "lint",
            str(case),
            "--baseline",
            str(baseline_path),
            "--format",
            "sarif",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    results = payload["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"][0]["kind"] == "external"


def test_prune_baseline_removes_stale_entries(tmp_path, capsys):
    case = tmp_path / "case.py"
    case.write_text(FLOAT_BAD, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    main(
        ["lint", str(case), "--write-baseline", "--baseline", str(baseline_path)]
    )
    capsys.readouterr()

    # Fix the violation: the baseline entry goes stale...
    case.write_text("# metalint: module=repro.core.cli_case\nx = 1\n", "utf-8")
    code = main(["lint", str(case), "--baseline", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stale" in out  # the text reporter warns before any pruning

    # ...and --prune-baseline removes exactly it.
    code = main(
        [
            "lint",
            str(case),
            "--baseline",
            str(baseline_path),
            "--prune-baseline",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "pruned 1 stale entry" in out
    assert len(Baseline.load(baseline_path)) == 0


def test_prune_baseline_without_file_is_an_error(tmp_path, capsys):
    case = tmp_path / "clean.py"
    case.write_text("x = 1\n", encoding="utf-8")
    code = main(
        [
            "lint",
            str(case),
            "--baseline",
            str(tmp_path / "absent.json"),
            "--prune-baseline",
        ]
    )
    assert code == 2
    assert "nothing to prune" in capsys.readouterr().err


def test_changed_mode_lints_only_touched_modules(tmp_path, capsys, monkeypatch):
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", "-C", str(tmp_path), *argv],
            check=True,
            capture_output=True,
        )

    # Anchor root resolution inside the scratch repo, not the real one.
    monkeypatch.chdir(tmp_path)
    git("init", "-q")
    git("config", "user.email", "lint@example.com")
    git("config", "user.name", "lint")
    clean = tmp_path / "committed.py"
    clean.write_text(FLOAT_BAD, encoding="utf-8")
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "api.md").write_text("# api\n", encoding="utf-8")
    git("add", "-A")
    git("commit", "-qm", "seed")

    # The committed violation is invisible in --changed mode...
    code = main(["lint", str(tmp_path), "--changed", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0, payload
    assert payload["counts_by_rule"] == {}

    # ...but a new (untracked) file with the same violation is caught.
    touched = tmp_path / "touched.py"
    touched.write_text(FLOAT_BAD, encoding="utf-8")
    code = main(["lint", str(tmp_path), "--changed", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts_by_rule"] == {"float-discipline": 1}
    (paths,) = {f["path"] for f in payload["findings"]}
    assert paths.endswith("touched.py")


def test_changed_mode_outside_git_fails_cleanly(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    case = tmp_path / "case.py"
    case.write_text("x = 1\n", encoding="utf-8")
    code = main(["lint", str(case), "--changed"])
    assert code == 2
    assert "git work tree" in capsys.readouterr().err
