"""Unit tests for the interprocedural flow core (repro.analysis.flow)."""

import ast
from pathlib import Path

from repro.analysis.engine import ProjectContext, load_module
from repro.analysis.flow import (
    ProjectFlow,
    get_flow,
    returns_with_dominators,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _project(tmp_path, files):
    modules = []
    for name, text in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        modules.append(load_module(path, root=tmp_path))
    return ProjectContext(root=tmp_path, modules=modules)


WAL_MODULE = """\
# metalint: module=pkg.wal
import os


class Writer:
    def __init__(self):
        self._fh = open("/dev/null", "ab")

    def append(self, record):
        self._fh.write(record)
        self._sync()

    def _sync(self):
        os.fsync(self._fh.fileno())
"""

SERVICE_MODULE = """\
# metalint: module=pkg.service
from pkg.wal import Writer


class Service:
    def __init__(self):
        self._wal = Writer()

    def ingest(self, record):
        self._wal.append(record)

    def idle(self):
        return 0


def helper():
    w = Writer()
    w.append(b"x")
"""


class TestCallGraph:
    def test_cross_module_resolution_and_reachability(self, tmp_path):
        context = _project(
            tmp_path,
            {"wal.py": WAL_MODULE, "service.py": SERVICE_MODULE},
        )
        flow = ProjectFlow(context)

        ingest = flow.functions["pkg.service.Service.ingest"]
        assert {site.callee for site in ingest.calls} == {
            "pkg.wal.Writer.append"
        }

        reaching = flow.functions_reaching(
            lambda site: site.raw == "os.fsync"
        )
        assert "pkg.wal.Writer._sync" in reaching
        assert "pkg.wal.Writer.append" in reaching
        assert "pkg.service.Service.ingest" in reaching
        assert "pkg.service.helper" in reaching  # via a local ctor binding
        assert "pkg.service.Service.idle" not in reaching

    def test_attr_types_from_ctor_and_annotation(self, tmp_path):
        text = """\
# metalint: module=pkg.owner
from typing import Optional

from pkg.wal import Writer


class Owner:
    def __init__(self):
        self._wal: Optional[Writer] = None

    def start(self):
        self._wal = Writer()

    def use(self):
        self._wal.append(b"x")
"""
        context = _project(
            tmp_path, {"wal.py": WAL_MODULE, "owner.py": text}
        )
        flow = ProjectFlow(context)
        cls = flow.classes["pkg.owner.Owner"]
        assert cls.attr_types["_wal"] == "pkg.wal.Writer"
        use = flow.functions["pkg.owner.Owner.use"]
        assert {site.callee for site in use.calls} == {
            "pkg.wal.Writer.append"
        }

    def test_relative_import_resolution(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/wal.py": WAL_MODULE.replace(
                "# metalint: module=pkg.wal\n", ""
            ),
            "pkg/svc.py": "from .wal import Writer\n\n\ndef go():\n"
            "    w = Writer()\n"
            "    w.append(b'x')\n",
        }
        context = _project(tmp_path, files)
        flow = ProjectFlow(context)
        assert "pkg.svc.go" in flow.functions_reaching(
            lambda site: site.raw == "os.fsync"
        )

    def test_get_flow_memoises_per_context(self, tmp_path):
        context = _project(tmp_path, {"wal.py": WAL_MODULE})
        assert get_flow(context) is get_flow(context)
        fresh = _project(tmp_path, {"wal.py": WAL_MODULE})
        assert get_flow(fresh) is not get_flow(context)


class TestLockset:
    def test_always_locked_fixpoint(self, tmp_path):
        text = """\
import threading


class Holder:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._step_one(item)

    def _step_one(self, item):
        self._step_two(item)

    def _step_two(self, item):
        self._items.append(item)

    def naked(self, item):
        self._orphan(item)

    def _orphan(self, item):
        self._items.pop()
"""
        context = _project(tmp_path, {"holder.py": text})
        flow = ProjectFlow(context)
        (qname,) = [q for q in flow.classes if q.endswith("Holder")]
        always = flow.always_locked_methods(qname)
        assert "_step_one" in always
        assert "_step_two" in always  # transitively, via the fixpoint
        assert "_orphan" not in always
        assert "naked" not in always


class TestDominators:
    def _dominators(self, source):
        func = ast.parse(source).body[0]
        return returns_with_dominators(func)

    def test_straight_line_accumulates(self):
        [(_, doms)] = self._dominators(
            "def f(fh):\n    fh.write(b'x')\n    os.fsync(fh)\n    return Ack()\n"
        )
        assert {"fh.write", "os.fsync"} <= doms
        assert "Ack" in doms  # calls in the return value itself

    def test_branches_intersect(self):
        [(_, doms)] = self._dominators(
            "def f(fh, sync):\n"
            "    if sync:\n"
            "        os.fsync(fh)\n"
            "    else:\n"
            "        log(fh)\n"
            "    return Ack()\n"
        )
        assert "os.fsync" not in doms
        assert "log" not in doms

    def test_branch_local_return_sees_its_prefix(self):
        [(_, doms)] = self._dominators(
            "def f(fh, sync):\n"
            "    if sync:\n"
            "        os.fsync(fh)\n"
            "        return Ack()\n"
            "    raise Boom()\n"
        )
        assert "os.fsync" in doms

    def test_loop_body_not_guaranteed(self):
        [(_, doms)] = self._dominators(
            "def f(items):\n"
            "    for item in items:\n"
            "        os.fsync(item)\n"
            "    return Ack()\n"
        )
        assert "os.fsync" not in doms

    def test_try_body_not_trusted_past_handlers(self):
        [(_, doms)] = self._dominators(
            "def f(fh):\n"
            "    try:\n"
            "        os.fsync(fh)\n"
            "    except OSError:\n"
            "        pass\n"
            "    return Ack()\n"
        )
        assert "os.fsync" not in doms

    def test_finally_always_runs(self):
        [(_, doms)] = self._dominators(
            "def f(fh):\n"
            "    try:\n"
            "        fh.write(b'x')\n"
            "    finally:\n"
            "        os.fsync(fh)\n"
            "    return Ack()\n"
        )
        assert "os.fsync" in doms

    def test_with_body_always_runs(self):
        [(_, doms)] = self._dominators(
            "def f(fh, lock):\n"
            "    with lock:\n"
            "        os.fsync(fh)\n"
            "    return Ack()\n"
        )
        assert "os.fsync" in doms


class TestLiveRepoFacts:
    """Anchor the flow core to the real tree: the protocol checkers
    lean on these exact cross-module facts."""

    def _live_flow(self):
        from repro.analysis.engine import analyze_paths  # noqa: F401

        modules = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            modules.append(load_module(path, root=REPO_ROOT))
        return ProjectFlow(ProjectContext(root=REPO_ROOT, modules=modules))

    def test_generation_store_save_reaches_fsync(self):
        flow = self._live_flow()
        durable = flow.functions_reaching(
            lambda site: site.raw == "os.fsync"
            or site.final_name == "fsync"
        )
        assert "repro.service.recovery.GenerationStore.save" in durable
        assert "repro.ingest.wal.WalWriter.append_batch" in durable
        assert "repro.persistence._atomic_write_text" in durable

    def test_ingest_append_is_dominated_by_wal_append(self):
        flow = self._live_flow()
        info = flow.functions["repro.ingest.service.IngestService.append"]
        acks = [
            doms
            for ret, doms in returns_with_dominators(info.node)
            if isinstance(ret.value, ast.Call)
        ]
        assert acks, "append() should return a constructed ack"
        for doms in acks:
            assert any("append_batch" in raw for raw in doms)
