"""Framework-level tests: suppressions, baselines, fingerprints, registry."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    all_rules,
    analyze_paths,
    create_checkers,
    load_module,
    render_json,
    render_text,
)
from repro.analysis.baseline import assign_occurrences
from repro.analysis.suppress import parse_suppressions
from repro.exceptions import FormatVersionError, InvalidParameterError

FLOAT_BAD = """\
# metalint: module=repro.core.tmp_case

def close(dist, threshold):
    return dist == threshold
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        path = _write(
            tmp_path,
            "case.py",
            FLOAT_BAD.replace(
                "dist == threshold",
                "dist == threshold  # metalint: ignore[float-discipline]",
            ),
        )
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_standalone_comment_covers_next_code_line(self, tmp_path):
        text = FLOAT_BAD.replace(
            "    return dist == threshold",
            "    # metalint: ignore[float-discipline] — exact by design\n"
            "    return dist == threshold",
        )
        path = _write(tmp_path, "case.py", text)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_whole_file_suppression(self, tmp_path):
        text = "# metalint: ignore-file[float-discipline]\n" + FLOAT_BAD
        path = _write(tmp_path, "case.py", text)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_star_suppresses_every_rule(self):
        state = parse_suppressions("x = 1  # metalint: ignore[*]\n")
        assert state.is_suppressed("anything", 1)

    def test_unrelated_rule_not_suppressed(self, tmp_path):
        path = _write(
            tmp_path,
            "case.py",
            FLOAT_BAD.replace(
                "dist == threshold",
                "dist == threshold  # metalint: ignore[lock-discipline]",
            ),
        )
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert len(report.findings) == 1

    def test_module_override_scopes_path_gated_rules(self, tmp_path):
        # Without the override the file is not under repro.core/mtree/...,
        # so float-discipline must not fire at all.
        path = _write(
            tmp_path,
            "case.py",
            FLOAT_BAD.replace("# metalint: module=repro.core.tmp_case\n", ""),
        )
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert report.findings == []

        module = load_module(
            _write(tmp_path, "case2.py", FLOAT_BAD), root=tmp_path
        )
        assert module.module_name == "repro.core.tmp_case"


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert len(report.findings) == 1

        baseline = Baseline.from_findings(report.findings, "known debt")
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 1

        again = analyze_paths(
            [path], rules=["float-discipline"], baseline=loaded, root=tmp_path
        )
        assert again.ok
        assert len(again.baselined) == 1
        assert again.unused_baseline == []

    def test_fingerprint_survives_line_renumbering(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings)

        # Insert lines above the violation: line numbers move, the
        # content fingerprint must not.
        shifted = FLOAT_BAD.replace(
            "def close", "# padding\n# more padding\n\ndef close"
        )
        path.write_text(shifted, encoding="utf-8")
        again = analyze_paths(
            [path], rules=["float-discipline"], baseline=baseline, root=tmp_path
        )
        assert again.ok
        assert len(again.baselined) == 1

    def test_fingerprint_survives_file_move(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings)

        # Rename the file: the exact fingerprint (which embeds the
        # path) no longer matches, but the move pass pairs the finding
        # with the stale entry by (rule, snippet).
        moved = tmp_path / "renamed_case.py"
        path.rename(moved)
        again = analyze_paths(
            [moved], rules=["float-discipline"], baseline=baseline, root=tmp_path
        )
        assert again.ok, again.render()
        assert len(again.baselined) == 1
        assert again.unused_baseline == []

    def test_move_matching_vouches_once_per_entry(self, tmp_path):
        # One grandfathered finding, then the violation is *duplicated*
        # in a second file: the single stale entry may cover one of the
        # two, never both.
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings)

        moved = tmp_path / "renamed_case.py"
        path.rename(moved)
        copy = _write(tmp_path, "copied_case.py", FLOAT_BAD)
        again = analyze_paths(
            [moved, copy],
            rules=["float-discipline"],
            baseline=baseline,
            root=tmp_path,
        )
        assert len(again.baselined) == 1
        assert len(again.findings) == 1

    def test_prune_drops_only_stale_entries(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings, "known debt")
        baseline.entries["deadbeefdeadbeef"] = {
            "fingerprint": "deadbeefdeadbeef"
        }
        again = analyze_paths(
            [path], rules=["float-discipline"], baseline=baseline, root=tmp_path
        )
        assert again.unused_baseline == ["deadbeefdeadbeef"]
        assert baseline.prune(again.unused_baseline) == 1
        assert len(baseline) == 1
        assert "deadbeefdeadbeef" not in baseline

    def test_suppressed_finding_does_not_enter_baseline(self, tmp_path):
        # Suppression beats baseline-writing: a comment-suppressed
        # violation is invisible to --write-baseline...
        suppressed_text = FLOAT_BAD.replace(
            "dist == threshold",
            "dist == threshold  # metalint: ignore[float-discipline]",
        )
        path = _write(tmp_path, "case.py", suppressed_text)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        assert report.suppressed == 1
        baseline = Baseline.from_findings(report.findings)
        assert len(baseline) == 0

        # ...and removing the suppression resurfaces it as a *new*
        # finding, not a baselined one.
        path.write_text(FLOAT_BAD, encoding="utf-8")
        again = analyze_paths(
            [path], rules=["float-discipline"], baseline=baseline, root=tmp_path
        )
        assert len(again.findings) == 1
        assert again.baselined == []

    def test_suppression_wins_over_matching_baseline_entry(self, tmp_path):
        # A finding that is both baselined *and* comment-suppressed
        # counts as suppressed — it must not consume the baseline entry,
        # which is then reported stale.
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings, "known debt")

        path.write_text(
            FLOAT_BAD.replace(
                "dist == threshold",
                "dist == threshold  # metalint: ignore[float-discipline]",
            ),
            encoding="utf-8",
        )
        again = analyze_paths(
            [path], rules=["float-discipline"], baseline=baseline, root=tmp_path
        )
        assert again.suppressed == 1
        assert again.baselined == []
        assert len(again.unused_baseline) == 1

    def test_unused_entries_are_reported(self, tmp_path):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        baseline = Baseline(
            entries={"deadbeefdeadbeef": {"fingerprint": "deadbeefdeadbeef"}}
        )
        report = analyze_paths([path], baseline=baseline, root=tmp_path)
        assert report.unused_baseline == ["deadbeefdeadbeef"]

    def test_load_rejects_wrong_format(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"format": "something-else"}), "utf-8")
        with pytest.raises(FormatVersionError):
            Baseline.load(bad)

    def test_load_rejects_entry_without_fingerprint(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(
            json.dumps(
                {"format": "metricost-lint-baseline-v1", "entries": [{}]}
            ),
            "utf-8",
        )
        with pytest.raises(InvalidParameterError):
            Baseline.load(bad)

    def test_identical_snippets_get_distinct_fingerprints(self):
        findings = [
            Finding("a.py", line, 0, "r", "m", snippet="x == y")
            for line in (3, 9)
        ]
        pairs = assign_occurrences(findings)
        assert len({fp for _f, fp in pairs}) == 2


class TestRegistryAndEngine:
    def test_all_rules_contains_the_project_rules(self):
        assert {
            "api-surface",
            "cancellation-hygiene",
            "deadline-propagation",
            "durability-protocol",
            "epoch-fence",
            "exception-hierarchy",
            "float-discipline",
            "lock-discipline",
            "lock-order",
            "lockset-race",
            "observability-guard",
        } <= set(all_rules())

    def test_unknown_rule_is_rejected(self):
        with pytest.raises(InvalidParameterError):
            create_checkers(["no-such-rule"])

    def test_missing_path_is_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            analyze_paths([tmp_path / "nope.py"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def broken(:\n")
        report = analyze_paths([path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["syntax-error"]

    def test_reports_render_both_ways(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        report = analyze_paths([path], rules=["float-discipline"], root=tmp_path)
        text = render_text(report)
        assert "FAIL" in text and "float-discipline" in text
        payload = json.loads(render_json(report))
        assert payload["format"] == "metricost-lint-report-v1"
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"float-discipline": 1}

    def test_json_output_is_deterministic(self, tmp_path):
        path = _write(tmp_path, "case.py", FLOAT_BAD)
        first = analyze_paths(
            [path], rules=["float-discipline"], root=tmp_path
        ).to_json()
        second = analyze_paths(
            [path], rules=["float-discipline"], root=tmp_path
        ).to_json()
        assert first == second
