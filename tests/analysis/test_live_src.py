"""Meta-tests tying the linter to the real repository.

Two contracts live here:

* the committed golden report pins the exact findings the seeded corpus
  produces, so any behaviour drift in a checker is a visible diff;
* the live ``src/`` tree is lint-clean modulo the committed baseline —
  the same gate CI enforces via ``python -m repro lint``.
"""

import json
from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"
GOLDEN = Path(__file__).parent / "golden_report.json"


def test_corpus_matches_golden_report():
    report = analyze_paths([CORPUS], root=REPO_ROOT)
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert report.to_dict() == golden, (
        "corpus findings drifted from tests/analysis/golden_report.json; "
        "if the change is intentional, regenerate the golden file"
    )


def test_live_src_is_clean_modulo_baseline():
    baseline_path = REPO_ROOT / "metalint-baseline.json"
    baseline = Baseline.load(baseline_path)
    report = analyze_paths(
        [REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT
    )
    assert report.ok, report.render()
    assert report.unused_baseline == [], (
        "stale baseline entries — remove them from metalint-baseline.json: "
        f"{report.unused_baseline}"
    )


def test_baseline_entries_carry_justifications():
    baseline = Baseline.load(REPO_ROOT / "metalint-baseline.json")
    for fingerprint, entry in baseline.entries.items():
        justification = entry.get("justification", "")
        assert justification and "grandfathered by --write-baseline" not in (
            justification
        ), f"baseline entry {fingerprint} needs a real justification"
