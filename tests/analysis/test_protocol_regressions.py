"""Adversarial regressions: the protocol rules vs. the named bug shapes.

PR 10 fixed one real pre-existing violation (``IngestService.checkpoint``
dereferenced ``self._wal`` outside the lock) and hardened the tree
against the historical bug families the checkers exist for.  Each test
here re-plants one of those shapes in a scratch module and proves the
rule still catches it — so a future refactor that weakens a checker
shows up as a failing regression, not as silent blindness.
"""

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint(tmp_path, name, text, rules):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return analyze_paths([path], rules=rules, root=REPO_ROOT)


# The literal pre-fix shape of IngestService.checkpoint: _wal is bound
# under the lock during recovery/close but pruned through self outside
# any lock hold.
PRE_FIX_CHECKPOINT = """\
import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._wal = None

    def _recover(self, wal):
        with self._lock:
            self._wal = wal

    def close(self):
        with self._lock:
            self._wal = None

    def checkpoint(self, seq):
        assert self._wal is not None
        return self._wal.prune(seq)
"""


def test_lockset_race_catches_the_pre_fix_checkpoint_shape(tmp_path):
    report = _lint(
        tmp_path, "pre_fix.py", PRE_FIX_CHECKPOINT, ["lockset-race"]
    )
    assert any(
        "unlocked dereference" in f.message and "_wal" in f.message
        for f in report.findings
    ), report.render()


def test_live_ingest_is_clean_after_the_checkpoint_fix():
    report = analyze_paths(
        [REPO_ROOT / "src" / "repro" / "ingest"],
        rules=["lockset-race"],
        root=REPO_ROOT,
    )
    assert report.findings == [], report.render()


# The unfsynced-ack shape: an ingest-style append that acknowledges
# durability without the WAL write ever being guaranteed.
UNFSYNCED_ACK = """\
# metalint: module=repro.ingest.adversarial_append
import threading


class IngestAck:
    def __init__(self, accepted):
        self.accepted = accepted


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def append(self, items):
        with self._lock:
            self._pending.extend(items)
        return IngestAck(len(items))
"""


def test_durability_catches_the_unfsynced_ack_shape(tmp_path):
    report = _lint(
        tmp_path, "unfsynced.py", UNFSYNCED_ACK, ["durability-protocol"]
    )
    assert any(
        "not dominated" in f.message for f in report.findings
    ), report.render()


# The unfenced-epoch shape: a publish that silently keeps serving when
# the world moved instead of raising StaleEpochError.
UNFENCED_EPOCH = """\
# metalint: module=repro.ingest.adversarial_publish


def publish(current, base, view):
    if current.epoch != base.epoch:
        return current
    return view
"""


def test_epoch_fence_catches_the_unfenced_publish_shape(tmp_path):
    report = _lint(
        tmp_path, "unfenced.py", UNFENCED_EPOCH, ["epoch-fence"]
    )
    assert any(
        "unfenced epoch comparison" in f.message for f in report.findings
    ), report.render()


def test_live_src_is_clean_under_all_protocol_rules():
    """The live-src-clean meta-test, scoped to the four new rules (the
    all-rules version lives in test_live_src.py)."""
    report = analyze_paths(
        [REPO_ROOT / "src"],
        rules=[
            "deadline-propagation",
            "durability-protocol",
            "epoch-fence",
            "lockset-race",
        ],
        root=REPO_ROOT,
    )
    assert report.findings == [], report.render()
    assert set(report.rules_run) == {
        "deadline-propagation",
        "durability-protocol",
        "epoch-fence",
        "lockset-race",
    }
