"""Static-typing configuration gate.

mypy may not be installed in every environment (it is an optional
``lint`` dependency), so these tests pin the *configuration* — the tiers
in ``pyproject.toml`` that CI's lint job runs with — and the repo-wide
invariant that no ``type: ignore`` escape hatches remain in ``src/``.
When mypy is available, the last test actually runs it on the strict
tier.
"""

import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _pyproject():
    return tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    )


def test_mypy_config_defines_the_three_tiers():
    config = _pyproject()
    mypy = config["tool"]["mypy"]
    assert mypy["mypy_path"] == "src"

    overrides = {
        tuple(entry["module"]): entry
        for entry in config["tool"]["mypy"]["overrides"]
    }
    strict = next(
        entry
        for modules, entry in overrides.items()
        if "repro.analysis" in modules
    )
    assert "repro.exceptions" in strict["module"]
    assert strict["disallow_untyped_defs"] is True
    assert strict["disallow_incomplete_defs"] is True


def test_mypy_is_an_optional_lint_dependency():
    config = _pyproject()
    lint_extras = config["project"]["optional-dependencies"]["lint"]
    assert any(dep.startswith("mypy") for dep in lint_extras)


def test_no_type_ignore_comments_in_src():
    offenders = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "type: ignore" in line:
                offenders.append(f"{path.relative_to(REPO_ROOT)}:{number}")
    assert offenders == [], (
        "use typing.cast or fix the types instead of `type: ignore`: "
        f"{offenders}"
    )


def test_mypy_strict_tier_when_available():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro.analysis"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
