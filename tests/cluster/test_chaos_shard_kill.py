"""Tier-1 mirror of the chaos drill: a shard dies mid-workload.

The full-size drill lives in ``scripts/run_shard_chaos.py`` (1k queries,
kill + slow); this scaled-down copy pins the same acceptance bars in the
regular test suite: after 1 of 4 shards is killed mid-workload, every
query still returns a typed ``ok`` answer, completeness never drops
below the surviving object weight, the answer is provably complete over
the reachable objects (no silent short answers), and every pruning
decision carries its exact distance-count proof.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.datasets import clustered_dataset
from repro.reliability import ShardFaultInjector
from repro.service import QueryRequest

N_OBJECTS = 400
N_SHARDS = 4
N_QUERIES = 60
KILL_AT = 15


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 3, seed=61)


def test_mid_workload_shard_kill_keeps_answers_honest(data):
    points = list(data.points)
    router = build_cluster(
        points,
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=61,
        hedge_delay_s=0.02,
        shard_timeout_s=0.5,
        min_completeness=0.5,
    )
    victim = router.shards[1]
    injector = ShardFaultInjector(seed=3)
    victim_weight = victim.n_objects / router.total_objects
    floor = 1.0 - victim_weight
    assert floor >= 0.5  # the workload's completeness bar is reachable

    rng = np.random.default_rng(16)
    all_dists = None
    for i in range(N_QUERIES):
        if i == KILL_AT:
            injector.kill(victim)
        query = rng.normal(size=3)
        if i % 2 == 0:
            radius = float(rng.uniform(0.1, 0.35)) * data.d_plus
            request = QueryRequest(
                "range", query, radius=radius, request_id=i
            )
        else:
            request = QueryRequest(
                "knn", query, k=int(rng.integers(1, 12)), request_id=i
            )
        outcome = router.execute(request)

        # Bar 1: the router never throws and never goes non-ok — a dead
        # shard degrades the answer, it does not fail the query.
        assert outcome.ok, f"query {i}: {outcome.status} ({outcome.error})"

        # Bar 2: completeness floor.  Before the kill everything is
        # reachable; after it, at worst the victim's weight is missing
        # (exactly 1.0 when the cost model pruned the victim anyway).
        if i < KILL_AT:
            assert outcome.completeness == 1.0
        else:
            assert outcome.completeness >= floor - 1e-12
        assert outcome.completeness >= 0.5  # the ISSUE acceptance bar

        # Bar 3: zero silent short answers — verify against single-node
        # ground truth restricted to the reachable objects.
        reachable = {
            oid
            for report in outcome.shard_reports
            if report.status in ("ok", "pruned")
            for oid in router.shards[report.shard_id].oids
        }
        all_dists = np.asarray(data.metric.one_to_many(query, points))
        got = {oid for oid, _obj, _d in outcome.items}
        if request.kind == "range":
            truth = {
                int(j) for j in np.flatnonzero(all_dists <= request.radius)
            }
            assert got == truth & reachable
        else:
            assert len(got) == min(request.k, len(reachable))
            worst = max(
                (d for _oid, _obj, d in outcome.items), default=0.0
            )
            # Every reachable object strictly closer than the worst
            # returned neighbour must be in the answer.
            for j in np.flatnonzero(all_dists < worst - 1e-12):
                if int(j) in reachable:
                    assert int(j) in got

        # Bar 4: pruning decisions carry their exact-count proof.
        for report in outcome.shard_reports:
            if report.status == "pruned":
                assert report.exact_candidates == 0
                stats = router.shards[report.shard_id].stats
                if request.kind == "range":
                    assert (
                        stats.candidate_count(
                            report.pivot_dist, request.radius
                        )
                        == 0
                    )

    # The dead shard was discovered and quarantined via its breaker.
    assert router.quarantine.reason(victim.shard_id) == "breaker_open"
    # Post-kill queries skip the quarantined shard instantly rather than
    # re-timing-out: the victim's last reports say quarantined.
    final = router.execute(
        QueryRequest("range", rng.normal(size=3), radius=0.2 * data.d_plus)
    )
    victim_report = final.shard_reports[victim.shard_id]
    assert victim_report.status in ("quarantined", "pruned")
    if victim_report.status == "quarantined":
        assert victim_report.quarantine_reason == "breaker_open"
