"""Hedged reads under concurrency: a slow shard never sets the pace.

One shard is made deterministically slow (primaries stall 300 ms; hedged
duplicates are exempt, the ``slow_hedged=False`` default), the router
hedges after 20 ms, and 8 worker threads hammer the cluster.  Every
answer must come back complete, won by the hedge, with the stalled
primary cancelled through its :class:`~repro.context.Context` — and the
merged k-NN must never contain a duplicate object from the racing pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.datasets import clustered_dataset
from repro.reliability import ShardFaultInjector
from repro.service import QueryRequest

N_OBJECTS = 240
N_SHARDS = 4
N_QUERIES = 24
WORKERS = 8
SLOW_S = 0.3
HEDGE_DELAY_S = 0.02


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 3, seed=51)


def test_hedge_beats_slow_shard_under_hammer(data):
    router = build_cluster(
        list(data.points),
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=51,
        hedge_delay_s=HEDGE_DELAY_S,
        shard_timeout_s=2.0,
        # Headroom: stalled primaries from all 8 workers can hold slots
        # concurrently; hedges must still be admitted immediately.
        max_concurrent=2 * WORKERS,
        max_queue=4 * WORKERS,
    )
    victim = router.shards[2]
    ShardFaultInjector(seed=2).slow(victim, SLOW_S)

    # Large k keeps every shard a scatter target (little pruning), so the
    # slow shard is exercised by essentially every request.
    requests = [
        QueryRequest("knn", query, k=12, request_id=i)
        for i, query in enumerate(
            np.random.default_rng(15).normal(size=(N_QUERIES, 3))
        )
    ]
    report = router.run(requests, workers=WORKERS)

    assert report.success_rate == 1.0
    assert report.min_completeness == 1.0
    true_dist_cache = {}
    hedge_wins = 0
    primary_cancellations = 0
    for outcome in report.outcomes:
        assert outcome.ok and not outcome.degraded
        # Merged k-NN: k distinct objects, no hedge-pair duplicates.
        oids = [oid for oid, _obj, _d in outcome.items]
        assert len(oids) == len(set(oids)) == 12
        victim_report = outcome.shard_reports[victim.shard_id]
        if victim_report.status != "ok":
            assert victim_report.status == "pruned"
            continue
        # The slow primary lost the race to its hedge...
        assert victim_report.hedged
        assert victim_report.hedge_won
        hedge_wins += 1
        # ...well before the injected stall could have finished.
        assert victim_report.latency_s < SLOW_S
        # ...and was cancelled through its context, not left running.
        labels = dict(victim_report.attempts)
        assert labels.get("hedge") == "ok"
        if labels.get("primary") == "cancelled":
            primary_cancellations += 1
        # The hedged answer is still the exact answer for this shard.
        rid = outcome.request.request_id
        if rid not in true_dist_cache:
            true_dist_cache[rid] = np.asarray(
                data.metric.one_to_many(
                    outcome.request.query, list(data.points)
                )
            )
        for oid, _obj, dist in victim_report.items:
            assert dist == pytest.approx(float(true_dist_cache[rid][oid]))
    assert hedge_wins >= N_QUERIES // 2
    assert primary_cancellations >= hedge_wins // 2
    assert sum(o.shards_hedged for o in report.outcomes) >= hedge_wins
