"""Self-healing ladder: scrub promotion, repair, rebalance, fold, fencing.

Each rung of the escalation ladder is exercised end-to-end: a structural
fault injected into one shard's vp-tree must be *found* by the scrubber,
*promoted* into the router quarantine, *repaired* (with an epoch bump
committed through the generation store), and — when repair is forbidden —
escalated to a rebalance or folded into the honest linear-scan rung.
No rung ever silently shortens an answer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import observability
from repro.cluster import (
    ClusterLifecycle,
    Rebalancer,
    build_cluster,
    load_cluster,
    save_cluster,
)
from repro.datasets import clustered_dataset
from repro.service import QueryRequest

N_OBJECTS = 90
N_SHARDS = 3
BAD_SHARD = 1


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 3, seed=13)


@pytest.fixture()
def router(data):
    return build_cluster(
        list(data.points),
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=13,
    )


@pytest.fixture(autouse=True)
def registry():
    reg = observability.install()
    yield reg
    observability.uninstall()


def corrupt_shard(router, shard_id=BAD_SHARD):
    """Shrink a routing cutoff: the classic silent-pruning structural
    fault — an ancestor's pruning test now lies about its subtree."""
    root = router.membership.shards[shard_id].tree.root
    root.cutoffs[0] *= 0.25


def range_truth(data, query, radius):
    dists = np.asarray(data.metric.one_to_many(query, list(data.points)))
    return {int(i) for i in np.flatnonzero(dists <= radius)}


def assert_exact_answers(router, data, seed=3, n=6):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        query = rng.normal(size=3)
        radius = 0.25 * data.d_plus
        outcome = router.execute(QueryRequest("range", query, radius=radius))
        assert outcome.ok
        assert outcome.completeness == 1.0
        got = {oid for oid, _obj, _d in outcome.items}
        assert got == range_truth(data, query, radius)


class TestScrubPromotion:
    def test_fault_promotes_to_router_quarantine(self, router, data):
        lifecycle = ClusterLifecycle(router, data.d_plus)
        corrupt_shard(router)
        lifecycle.scrub()
        assert router.quarantine.contains(BAD_SHARD)
        assert lifecycle.state(BAD_SHARD) == "quarantined"
        events = [e for e in lifecycle.events if e.to_state == "quarantined"]
        assert events and events[0].trigger == "scrub"
        assert events[0].shard_id == BAD_SHARD

    def test_quarantined_shard_answers_are_honest_not_wrong(
        self, router, data
    ):
        lifecycle = ClusterLifecycle(router, data.d_plus)
        corrupt_shard(router)
        lifecycle.scrub()
        # Between promotion and repair the router skips the quarantined
        # shard: the answer may be *short* but the accounting says so,
        # and nothing outside the ground truth ever appears.
        bad_oids = set(router.membership.shards[BAD_SHARD].oids)
        rng = np.random.default_rng(3)
        for _ in range(6):
            query = rng.normal(size=3)
            radius = 0.25 * data.d_plus
            outcome = router.execute(
                QueryRequest("range", query, radius=radius)
            )
            assert outcome.ok
            assert outcome.completeness < 1.0
            got = {oid for oid, _obj, _d in outcome.items}
            truth = range_truth(data, query, radius)
            assert got == truth - bad_oids

    def test_min_completeness_rung_scans_the_quarantined_shard(
        self, data
    ):
        router = build_cluster(
            list(data.points),
            data.metric,
            n_shards=N_SHARDS,
            d_plus=data.d_plus,
            seed=13,
            min_completeness=1.0,
        )
        lifecycle = ClusterLifecycle(router, data.d_plus)
        corrupt_shard(router)
        lifecycle.scrub()
        assert router.quarantine.contains(BAD_SHARD)
        # The completeness floor forces a linear-scan fallback over the
        # quarantined shard: slower, but exact again.
        assert_exact_answers(router, data)

    def test_healthy_cluster_scrubs_clean(self, router, data):
        lifecycle = ClusterLifecycle(router, data.d_plus)
        report = lifecycle.tick()
        assert report.promotions == 0
        assert report.repairs_ok == 0
        assert all(s == "healthy" for s in lifecycle.states().values())


class TestRepairRung:
    def test_full_ladder_heals_and_bumps_epoch(self, router, data, tmp_path):
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        lifecycle = ClusterLifecycle(router, data.d_plus, rebalancer)
        old_epoch = router.membership.epoch
        corrupt_shard(router)

        report = lifecycle.tick()

        assert report.promotions == 1
        assert report.repairs_ok == 1
        assert report.repairs_failed == 0
        assert not router.quarantine.contains(BAD_SHARD)
        assert lifecycle.state(BAD_SHARD) == "healthy"
        assert router.membership.epoch == old_epoch + 1
        assert_exact_answers(router, data)

        transitions = [e.to_state for e in report.events]
        assert transitions == ["quarantined", "repairing", "healthy"]

        # The repair was committed: a cold restart from the store sees
        # the repaired tree at the new epoch.
        reopened = load_cluster(tmp_path, data.metric)
        assert reopened.membership.epoch == old_epoch + 1
        assert_exact_answers(reopened, data)

    def test_repair_without_store_still_heals_in_memory(self, router, data):
        lifecycle = ClusterLifecycle(router, data.d_plus)
        corrupt_shard(router)
        report = lifecycle.tick()
        assert report.repairs_ok == 1
        assert lifecycle.state(BAD_SHARD) == "healthy"
        assert_exact_answers(router, data)

    def test_metrics_trace_the_ladder(self, router, data, registry):
        lifecycle = ClusterLifecycle(router, data.d_plus)
        corrupt_shard(router)
        lifecycle.tick()
        assert (
            registry.counter_value(
                "cluster.lifecycle.scrub_promotions", new=True
            )
            == 1
        )
        assert registry.counter_value("cluster.lifecycle.repairs", ok=True) == 1
        assert (
            registry.counter_value(
                "cluster.lifecycle.transitions",
                to="quarantined",
                trigger="scrub",
            )
            == 1
        )


class TestEscalation:
    def test_rebalance_rung_when_repair_forbidden(self, router, data, tmp_path):
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        lifecycle = ClusterLifecycle(
            router,
            data.d_plus,
            rebalancer,
            max_repair_attempts=0,
        )
        old_epoch = router.membership.epoch
        corrupt_shard(router)
        report = lifecycle.tick()
        # No repair allowed → the ladder escalates straight to a forced
        # cluster rebalance, which rebuilds every tree from the objects.
        assert report.rebalanced
        assert router.membership.epoch == old_epoch + 1
        assert not router.quarantine.contains(BAD_SHARD)
        assert report.folded == []
        assert_exact_answers(router, data)

    def test_fold_rung_is_the_last_honest_resort(self, router, data):
        lifecycle = ClusterLifecycle(
            router,
            data.d_plus,
            max_repair_attempts=0,
            escalate_to_rebalance=False,
        )
        corrupt_shard(router)
        report = lifecycle.tick()
        assert report.folded == [BAD_SHARD]
        assert lifecycle.state(BAD_SHARD) == "folded"
        assert router.membership.shards[BAD_SHARD].scan_only
        # Folded = permanent linear scan: slower, never wrong.
        assert_exact_answers(router, data)

    def test_folded_shard_is_not_scrubbed_again(self, router, data):
        lifecycle = ClusterLifecycle(
            router,
            data.d_plus,
            max_repair_attempts=0,
            escalate_to_rebalance=False,
        )
        corrupt_shard(router)
        lifecycle.tick()
        follow_up = lifecycle.tick()
        assert follow_up.promotions == 0
        assert follow_up.folded == []


class TestEpochFencing:
    def test_old_shard_view_gets_stale_epoch(self, router, data):
        old_shards = list(router.membership.shards)
        old_epoch = router.membership.epoch
        replacement = build_cluster(
            list(data.points),
            data.metric,
            n_shards=N_SHARDS,
            d_plus=data.d_plus,
            seed=14,
        )
        router.install_membership(
            list(replacement.membership.shards), old_epoch + 1
        )
        outcome = old_shards[0].submit(
            QueryRequest("range", np.zeros(3), radius=0.1)
        )
        assert outcome.status == "stale_epoch"

    def test_queries_during_rebalance_see_one_epoch_never_a_mix(
        self, router, data, tmp_path
    ):
        from repro.cluster import plan_rebalance

        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        old_epoch = router.membership.epoch
        plan = plan_rebalance(router, data.d_plus, seed=5)
        outcomes = []
        errors = []
        start = threading.Event()

        def hammer():
            rng = np.random.default_rng(99)
            start.wait()
            try:
                for _ in range(40):
                    query = rng.normal(size=3)
                    outcomes.append(
                        router.execute(
                            QueryRequest(
                                "range", query, radius=0.25 * data.d_plus
                            )
                        )
                    )
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        worker = threading.Thread(target=hammer)
        worker.start()
        start.set()
        rebalancer.execute(router, plan)
        worker.join()

        assert errors == []
        assert router.membership.epoch == old_epoch + 1
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.completeness == 1.0
            # Every answer names exactly one epoch — old or new.
            assert outcome.epoch in (old_epoch, old_epoch + 1)
            got = {oid for oid, _obj, _d in outcome.items}
            assert got == range_truth(
                data, outcome.request.query, outcome.request.radius
            )
