"""Pivot-based partitioning: coverage, exact pruning proofs, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ShardStats, choose_pivots, partition_objects
from repro.datasets import clustered_dataset
from repro.exceptions import EmptyDatasetError, InvalidParameterError

N_OBJECTS = 160
N_SHARDS = 4


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 4, seed=31)


@pytest.fixture(scope="module")
def part(data):
    return partition_objects(
        list(data.points), data.metric, N_SHARDS, data.d_plus, seed=31
    )


def test_every_object_in_exactly_one_shard(part):
    merged = np.concatenate(part.shard_indices)
    assert merged.size == N_OBJECTS
    assert np.array_equal(np.sort(merged), np.arange(N_OBJECTS))
    for shard_id, members in enumerate(part.shard_indices):
        assert np.all(part.assignments[members] == shard_id)


def test_objects_assigned_to_nearest_pivot(part, data):
    points = list(data.points)
    for i in range(0, N_OBJECTS, 7):
        dists = [data.metric(points[i], p) for p in part.pivots]
        assert part.assignments[i] == int(np.argmin(dists))


def test_pivot_distances_exact_and_sorted(part, data):
    points = list(data.points)
    for stats, members in zip(part.stats, part.shard_indices):
        recomputed = np.sort(
            np.asarray(
                data.metric.one_to_many(stats.pivot, [points[i] for i in members])
            )
        )
        assert np.allclose(stats.pivot_distances, recomputed)
        assert np.all(np.diff(stats.pivot_distances) >= 0)
        assert stats.n_objects == members.size
        assert stats.covering_radius == stats.pivot_distances[-1]


def test_dists_computed_accounting_is_exact(part):
    # Pivot selection spends n per pivot; the assignment matrix spends
    # n per pivot again; statistics reuse the matrix rows for free.
    assert part.dists_computed == 2 * N_SHARDS * N_OBJECTS


def test_zero_candidate_count_is_a_pruning_proof(part, data):
    """candidate_count == 0 must certify that *no* shard member matches."""
    rng = np.random.default_rng(7)
    points = list(data.points)
    proofs = 0
    for _ in range(40):
        query = rng.normal(size=4)
        radius = float(rng.uniform(0.01, 0.15) * data.d_plus)
        for stats, members in zip(part.stats, part.shard_indices):
            pivot_dist = float(data.metric(query, stats.pivot))
            if stats.candidate_count(pivot_dist, radius) == 0:
                proofs += 1
                true_dists = np.asarray(
                    data.metric.one_to_many(
                        query, [points[i] for i in members]
                    )
                )
                assert np.all(true_dists > radius)
    assert proofs > 0, "no pruning proof ever fired; widen the radius range"


def test_candidate_count_upper_bounds_true_matches(part, data):
    rng = np.random.default_rng(8)
    points = list(data.points)
    for _ in range(20):
        query = rng.normal(size=4)
        radius = float(rng.uniform(0.05, 0.5) * data.d_plus)
        for stats, members in zip(part.stats, part.shard_indices):
            pivot_dist = float(data.metric(query, stats.pivot))
            true_matches = sum(
                1
                for i in members
                if data.metric(query, points[i]) <= radius
            )
            assert stats.candidate_count(pivot_dist, radius) >= true_matches


def test_expected_matches_stays_in_range(part, data):
    rng = np.random.default_rng(9)
    for _ in range(10):
        query = rng.normal(size=4)
        for stats in part.stats:
            pivot_dist = float(data.metric(query, stats.pivot))
            expected = stats.expected_matches(pivot_dist, 0.1 * data.d_plus)
            assert 0.0 <= expected <= stats.n_objects
            # A query ball covering the whole domain expects everything.
            assert stats.expected_matches(
                0.0, pivot_dist + data.d_plus
            ) == pytest.approx(stats.n_objects)


def test_knn_upper_bounds_dominate_true_distances(part, data):
    """Sorted true query distances are elementwise <= the k bounds."""
    rng = np.random.default_rng(10)
    points = list(data.points)
    k = 5
    for _ in range(10):
        query = rng.normal(size=4)
        for stats, members in zip(part.stats, part.shard_indices):
            pivot_dist = float(data.metric(query, stats.pivot))
            bounds = stats.knn_upper_bounds(pivot_dist, k)
            take = min(k, stats.n_objects)
            assert bounds.shape == (take,)
            true_sorted = np.sort(
                np.asarray(
                    data.metric.one_to_many(
                        query, [points[i] for i in members]
                    )
                )
            )[:take]
            assert np.all(true_sorted <= bounds + 1e-9)


def test_parameter_validation(data):
    points = list(data.points)
    with pytest.raises(InvalidParameterError):
        choose_pivots(points, data.metric, 0)
    with pytest.raises(EmptyDatasetError):
        choose_pivots(points[:2], data.metric, 3)
    with pytest.raises(EmptyDatasetError):
        ShardStats.from_objects(0, [], points[0], data.metric, data.d_plus)
    stats = ShardStats.from_objects(
        0, points[:10], points[0], data.metric, data.d_plus
    )
    with pytest.raises(InvalidParameterError):
        stats.candidate_count(0.5, -0.1)
    with pytest.raises(InvalidParameterError):
        stats.expected_matches(0.5, -0.1)
    with pytest.raises(InvalidParameterError):
        stats.knn_upper_bounds(0.5, 0)
