"""Crash-safe shard rebalance: planning, two-phase commit, kill-at-every-step.

The acceptance bar from the issue: a kill at *any* journal step must
leave the cluster answering from exactly one epoch — the old one or the
new one, never a mix — and ``recover()``/``resume()`` must always drive
the protocol to completion afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Rebalancer,
    Router,
    build_cluster,
    load_cluster,
    plan_rebalance,
    save_cluster,
)
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError, StaleEpochError
from repro.service import QueryRequest
from repro.service.recovery import SimulatedCrashError

N_OBJECTS = 90
N_SHARDS = 3


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 3, seed=7)


def make_router(data) -> Router:
    return build_cluster(
        list(data.points),
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=7,
    )


def range_truth(data, query, radius):
    dists = np.asarray(data.metric.one_to_many(query, list(data.points)))
    return {int(i) for i in np.flatnonzero(dists <= radius)}


def answered_oids(router, query, radius):
    outcome = router.execute(QueryRequest("range", query, radius=radius))
    assert outcome.ok
    assert outcome.completeness == 1.0
    return {oid for oid, _obj, _d in outcome.items}, outcome


def all_cluster_oids(router):
    oids = []
    for shard in router.membership.shards:
        oids.extend(shard.oids)
    return sorted(oids)


class TestSaveLoad:
    def test_round_trip_preserves_answers_and_epoch(self, data, tmp_path):
        router = make_router(data)
        steps = save_cluster(router, tmp_path, data.d_plus)
        assert steps > 0
        reloaded = load_cluster(tmp_path, data.metric)
        assert reloaded.membership.epoch == router.membership.epoch
        rng = np.random.default_rng(3)
        for _ in range(8):
            query = rng.normal(size=3)
            radius = 0.25 * data.d_plus
            before, _ = answered_oids(router, query, radius)
            after, _ = answered_oids(reloaded, query, radius)
            assert before == after == range_truth(data, query, radius)

    def test_committed_epoch_readable_without_loading_trees(
        self, data, tmp_path
    ):
        router = make_router(data)
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        assert rebalancer.committed_epoch() == router.membership.epoch

    def test_load_on_empty_directory_fails_loudly(self, data, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_cluster(tmp_path, data.metric)


class TestPlanning:
    def test_plan_partitions_every_object_exactly_once(self, data):
        router = make_router(data)
        plan = plan_rebalance(router, data.d_plus, seed=1)
        assert plan.n_shards == N_SHARDS
        assert plan.epoch_from == router.membership.epoch
        assert plan.epoch_to == router.membership.epoch + 1
        flat = sorted(oid for group in plan.oids for oid in group)
        assert flat == all_cluster_oids(router)
        assert plan.total_objects == N_OBJECTS

    def test_plan_costs_are_populated_and_deterministic(self, data):
        router = make_router(data)
        first = plan_rebalance(router, data.d_plus, seed=1)
        second = plan_rebalance(router, data.d_plus, seed=1)
        assert first.old_cost > 0
        assert first.new_cost > 0
        assert first.dists_computed > 0
        assert first.oids == second.oids
        assert first.old_cost == second.old_cost
        assert first.dists_computed == second.dists_computed

    def test_degraded_shard_inflates_old_cost(self, data):
        router = make_router(data)
        baseline = plan_rebalance(router, data.d_plus, seed=1)
        router.quarantine.add(0, "scrub")
        degraded = plan_rebalance(router, data.d_plus, seed=1)
        assert degraded.old_cost > baseline.old_cost
        # A quarantined source makes the fresh layout *more* attractive.
        assert degraded.gain > baseline.gain

    def test_improves_threshold(self, data):
        router = make_router(data)
        plan = plan_rebalance(router, data.d_plus, seed=1)
        assert plan.improves(min_gain=-10.0)
        assert not plan.improves(min_gain=10.0)


class TestExecute:
    def test_rebalance_bumps_epoch_and_preserves_answers(
        self, data, tmp_path
    ):
        router = make_router(data)
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        plan = plan_rebalance(router, data.d_plus, seed=1)
        outcome = rebalancer.execute(router, plan)
        assert outcome.installed
        assert outcome.epoch == plan.epoch_to
        assert router.membership.epoch == plan.epoch_to
        assert rebalancer.committed_epoch() == plan.epoch_to
        assert rebalancer.gc_report()["clean"]
        rng = np.random.default_rng(4)
        for _ in range(8):
            query = rng.normal(size=3)
            radius = 0.25 * data.d_plus
            got, outcome = answered_oids(router, query, radius)
            assert got == range_truth(data, query, radius)
            assert outcome.epoch == plan.epoch_to

    def test_stale_plan_is_rejected(self, data, tmp_path):
        router = make_router(data)
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        stale = plan_rebalance(router, data.d_plus, seed=1)
        fresh = plan_rebalance(router, data.d_plus, seed=2)
        rebalancer.execute(router, fresh)
        with pytest.raises(StaleEpochError):
            rebalancer.execute(router, stale)

    def test_conflicting_journal_is_rejected(self, data, tmp_path):
        router = make_router(data)
        save_cluster(router, tmp_path, data.d_plus)
        rebalancer = Rebalancer(tmp_path, data.metric)
        plan = plan_rebalance(router, data.d_plus, seed=1)
        with pytest.raises(SimulatedCrashError):
            rebalancer.execute(router, plan, crash_after_step=2)
        # The old epoch still serves; a *different* rebalance attempt
        # must refuse to trample the in-flight journal.
        after = plan_rebalance(router, data.d_plus, seed=9, reason="drift")
        bumped = RebalancerPlanWithEpoch(after, after.epoch_to + 1)
        with pytest.raises(InvalidParameterError):
            rebalancer.execute(router, bumped)


class RebalancerPlanWithEpoch:
    """A plan proxy whose target epoch disagrees with the journal."""

    def __init__(self, plan, epoch_to):
        self._plan = plan
        self.epoch_to = epoch_to

    def __getattr__(self, name):
        return getattr(self._plan, name)


class TestKillAtEveryStep:
    """The issue's acceptance criterion, exhaustively."""

    def test_single_epoch_at_every_crash_point(self, data, tmp_path):
        rng = np.random.default_rng(11)
        probes = [rng.normal(size=3) for _ in range(4)]
        radius = 0.25 * data.d_plus
        truths = [range_truth(data, q, radius) for q in probes]

        scratch = Rebalancer(tmp_path / "probe", data.metric)
        total = scratch.total_steps(N_SHARDS)
        assert total == 2 * N_SHARDS + 7

        for k in range(total + 1):
            directory = tmp_path / f"kill-{k}"
            router = make_router(data)
            old_epoch = router.membership.epoch
            save_cluster(router, directory, data.d_plus)
            rebalancer = Rebalancer(directory, data.metric)
            plan = plan_rebalance(router, data.d_plus, seed=1)
            new_epoch = plan.epoch_to
            if k < total:
                with pytest.raises(SimulatedCrashError):
                    rebalancer.execute(router, plan, crash_after_step=k)
            else:
                rebalancer.execute(router, plan)

            # 1. After the crash the store answers from exactly ONE
            #    epoch, and it owns every object exactly once.
            recovered = Rebalancer(directory, data.metric)
            recovered.recover()
            survivor = load_cluster(directory, data.metric)
            assert survivor.membership.epoch in (old_epoch, new_epoch), k
            assert all_cluster_oids(survivor) == list(range(N_OBJECTS)), k
            for query, truth in zip(probes, truths):
                got, outcome = answered_oids(survivor, query, radius)
                assert got == truth, k
                assert outcome.epoch == survivor.membership.epoch, k

            # 2. resume()/re-execute always completes the protocol.
            resumed = recovered.resume(router=None)
            if resumed is None and recovered.committed_epoch() == old_epoch:
                # Crash before the journal became durable: nothing to
                # resume — a fresh run starts over.
                fresh_router = load_cluster(directory, data.metric)
                fresh_plan = plan_rebalance(fresh_router, data.d_plus, seed=1)
                recovered.execute(fresh_router, fresh_plan)
            assert recovered.committed_epoch() == new_epoch, k
            assert recovered.gc_report()["clean"], k
            final = load_cluster(directory, data.metric)
            assert final.membership.epoch == new_epoch, k
            assert all_cluster_oids(final) == list(range(N_OBJECTS)), k
            for query, truth in zip(probes, truths):
                got, _ = answered_oids(final, query, radius)
                assert got == truth, k


class TestGC:
    def make_debris(self, data, directory, crash_after_step):
        router = make_router(data)
        save_cluster(router, directory, data.d_plus)
        rebalancer = Rebalancer(directory, data.metric)
        plan = plan_rebalance(router, data.d_plus, seed=1)
        with pytest.raises(SimulatedCrashError):
            rebalancer.execute(router, plan, crash_after_step=crash_after_step)
        return Rebalancer(directory, data.metric), plan

    def test_pre_commit_crash_is_resumable_not_debris(self, data, tmp_path):
        rebalancer, _plan = self.make_debris(data, tmp_path, 2)
        report = rebalancer.gc_report()
        assert report["journal"] == "resumable"
        assert report["staging_files"]
        assert report["orphaned_staging"] == []
        assert report["clean"]

    def test_post_commit_crash_leaves_reclaimable_debris(
        self, data, tmp_path
    ):
        # Step 11 = after the store journal unlink, before old-gen GC:
        # the richest debris (stale journal + staging + old generation).
        rebalancer, plan = self.make_debris(data, tmp_path, 11)
        report = rebalancer.gc_report()
        assert not report["clean"]
        assert report["journal"] == "stale"
        assert report["orphaned_staging"]
        assert report["stale_generation_files"]
        result = rebalancer.gc()
        assert result["removed"]
        assert rebalancer.gc_report()["clean"]
        assert rebalancer.committed_epoch() == plan.epoch_to

    def test_force_abandons_resumable_rebalance(self, data, tmp_path):
        rebalancer, plan = self.make_debris(data, tmp_path / "a", 2)
        kept = rebalancer.gc(force=False)
        # Without --force the in-flight journal survives the sweep.
        assert kept["report"]["journal"] == "resumable"
        rebalancer2, plan = self.make_debris(data, tmp_path / "b", 2)
        abandoned = rebalancer2.gc(force=True)
        assert "REBALANCE.json" in abandoned["removed"]
        assert rebalancer2.gc_report()["journal"] == "none"
        # The committed old epoch keeps serving after the abandon.
        survivor = load_cluster(tmp_path / "b", data.metric)
        assert survivor.membership.epoch == plan.epoch_from
        assert all_cluster_oids(survivor) == list(range(N_OBJECTS))
