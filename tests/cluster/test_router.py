"""Scatter-gather router: exactness, pruning, quarantine, partial answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Router, Shard, ShardStats, build_cluster
from repro.context import Deadline
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError
from repro.reliability import ShardFaultInjector
from repro.service import QueryRequest

N_OBJECTS = 200
N_SHARDS = 4


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(N_OBJECTS, 3, seed=41)


@pytest.fixture()
def router(data):
    return build_cluster(
        list(data.points),
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=41,
        hedge_delay_s=0.05,
        shard_timeout_s=1.0,
    )


def range_truth(data, query, radius):
    dists = np.asarray(data.metric.one_to_many(query, list(data.points)))
    return {int(i) for i in np.flatnonzero(dists <= radius)}


def knn_truth(data, query, k):
    dists = np.asarray(data.metric.one_to_many(query, list(data.points)))
    order = np.argsort(dists, kind="stable")[:k]
    return [(int(i), float(dists[i])) for i in order]


def queries(data, n, seed=5):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=3) for _ in range(n)]


def test_healthy_range_matches_ground_truth(router, data):
    for i, query in enumerate(queries(data, 15)):
        radius = 0.1 * (1 + i % 4) * data.d_plus
        outcome = router.execute(
            QueryRequest("range", query, radius=radius, request_id=i)
        )
        assert outcome.ok
        assert outcome.completeness == 1.0
        assert not outcome.degraded
        assert {oid for oid, _obj, _d in outcome.items} == range_truth(
            data, query, radius
        )
        # Router accounting: one pivot distance per shard, every shard
        # accounted for exactly once.
        assert outcome.router_dists == N_SHARDS
        assert outcome.shards_total == N_SHARDS
        assert (
            outcome.shards_ok
            + outcome.shards_pruned
            + outcome.shards_failed
        ) == N_SHARDS


def test_healthy_knn_matches_ground_truth(router, data):
    for i, query in enumerate(queries(data, 15, seed=6)):
        k = 1 + (i % 10)
        outcome = router.execute(QueryRequest("knn", query, k=k))
        assert outcome.ok
        assert outcome.completeness == 1.0
        truth = knn_truth(data, query, k)
        assert len(outcome.items) == k
        got = [(oid, d) for oid, _obj, d in outcome.items]
        # Distance-equal ties may resolve to different oids; the distance
        # profile must match exactly and every reported distance must be
        # the object's true distance.
        assert np.allclose(
            sorted(d for _, d in got), sorted(d for _, d in truth)
        )
        true_dists = np.asarray(
            data.metric.one_to_many(query, list(data.points))
        )
        for oid, dist in got:
            assert dist == pytest.approx(float(true_dists[oid]))
        assert len({oid for oid, _ in got}) == k


def test_pruning_fires_and_never_drops_matches(router, data):
    pruned_total = 0
    for query in queries(data, 20, seed=7):
        radius = 0.08 * data.d_plus
        outcome = router.execute(QueryRequest("range", query, radius=radius))
        assert outcome.ok
        pruned_total += outcome.shards_pruned
        assert {oid for oid, _obj, _d in outcome.items} == range_truth(
            data, query, radius
        )
        for report in outcome.shard_reports:
            if report.status == "pruned":
                # The decision carries its proof: an exact annulus count.
                assert report.exact_candidates == 0
                assert report.expected_matches is not None
                assert report.completeness == 1.0
    assert pruned_total > 0, "small-radius workload never pruned a shard"


def test_prune_toggle_answers_identically(data):
    objects = list(data.points)
    kwargs = dict(
        n_shards=N_SHARDS, d_plus=data.d_plus, seed=41, hedging=False
    )
    pruning = build_cluster(objects, data.metric, prune=True, **kwargs)
    exhaustive = build_cluster(objects, data.metric, prune=False, **kwargs)
    for query in queries(data, 8, seed=8):
        request = QueryRequest("range", query, radius=0.1 * data.d_plus)
        a = pruning.execute(request)
        b = exhaustive.execute(request)
        assert a.ok and b.ok
        assert {o for o, _, _ in a.items} == {o for o, _, _ in b.items}
        assert b.shards_pruned == 0


def test_dead_shard_yields_honest_partial_answers(router, data):
    victim = router.shards[1]
    injector = ShardFaultInjector(seed=1)
    injector.kill(victim)
    reachable = {
        oid for shard in router.shards if shard is not victim
        for oid in shard.oids
    }
    weight = victim.n_objects / router.total_objects
    for i, query in enumerate(queries(data, 10, seed=9)):
        radius = 0.3 * data.d_plus
        outcome = router.execute(QueryRequest("range", query, radius=radius))
        # Never an exception, never a silent short answer: status stays
        # ok and the completeness accounting names the missing weight.
        assert outcome.ok
        victim_report = outcome.shard_reports[victim.shard_id]
        if victim_report.status == "pruned":
            assert outcome.completeness == 1.0
        else:
            assert victim_report.status in ("failed", "quarantined")
            assert outcome.completeness == pytest.approx(1.0 - weight)
            assert outcome.degraded
        got = {oid for oid, _obj, _d in outcome.items}
        assert got == range_truth(data, query, radius) & reachable
    # The breaker opened and the router quarantined the shard for it.
    assert router.quarantine.reason(victim.shard_id) == "breaker_open"
    # Heal: chaos lifted, breaker reset, recheck readmits the shard.
    injector.heal(victim)
    victim.breaker.reset()
    assert victim.shard_id in router.recheck()
    outcome = router.execute(
        QueryRequest("knn", queries(data, 1, seed=10)[0], k=5)
    )
    assert outcome.ok and outcome.completeness == 1.0


def test_object_weighted_completeness_pinned_at_three_quarters(data):
    """Regression: 1 of 4 equal shards quarantined => exactly 0.75.

    The min rule would report 0.0 here and make every partial answer
    look worthless; the object-weighted rule reports the reachable
    fraction of the dataset.
    """
    points = list(data.points)[:100]
    shards = []
    for i in range(4):
        members = points[25 * i : 25 * (i + 1)]
        stats = ShardStats.from_objects(
            i, members, members[0], data.metric, data.d_plus
        )
        shards.append(
            Shard(
                shard_id=i,
                objects=members,
                oids=list(range(25 * i, 25 * (i + 1))),
                metric=data.metric,
                stats=stats,
                seed=i,
            )
        )
    router = Router(shards, data.metric, hedging=False)
    router.quarantine.add(1, "manual")
    for query in queries(data, 5, seed=11):
        outcome = router.execute(
            QueryRequest("range", query, radius=0.4 * data.d_plus)
        )
        assert outcome.ok
        assert outcome.degraded
        assert outcome.completeness == 0.75  # pinned, exact
        report = outcome.shard_reports[1]
        assert report.status == "quarantined"
        assert report.quarantine_reason == "manual"


def test_min_completeness_rung_falls_back_to_scan(data):
    objects = list(data.points)
    router = build_cluster(
        objects,
        data.metric,
        n_shards=N_SHARDS,
        d_plus=data.d_plus,
        seed=41,
        min_completeness=1.0,
        hedging=False,
    )
    # Quarantine a healthy shard: scatter skips it, completeness drops
    # below the rung, and the fallback linear scan restores the answer.
    router.quarantine.add(2, "manual")
    query = queries(data, 1, seed=12)[0]
    radius = 0.3 * data.d_plus
    outcome = router.execute(QueryRequest("range", query, radius=radius))
    assert outcome.ok
    assert outcome.fallback_used
    assert outcome.degraded
    assert outcome.completeness == 1.0
    assert {oid for oid, _obj, _d in outcome.items} == range_truth(
        data, query, radius
    )
    scanned = [r for r in outcome.shard_reports if r.scanned]
    assert any(r.shard_id == 2 for r in scanned)


def test_blown_budget_returns_typed_outcome(router, data):
    query = queries(data, 1, seed=13)[0]
    outcome = router.execute(
        QueryRequest("range", query, radius=0.2 * data.d_plus),
        deadline=Deadline.after(0.0),
    )
    assert outcome.status == "deadline"
    assert not outcome.ok
    assert outcome.error


def test_router_run_batch_report(router, data):
    requests = [
        QueryRequest("range", q, radius=0.15 * data.d_plus, request_id=i)
        if i % 2 == 0
        else QueryRequest("knn", q, k=3, request_id=i)
        for i, q in enumerate(queries(data, 12, seed=14))
    ]
    report = router.run(requests, workers=4)
    assert report.total == 12
    assert report.success_rate == 1.0
    assert report.min_completeness == 1.0
    rendered = report.render()
    assert "12 routed requests" in rendered
    assert "pruned" in rendered


def test_router_parameter_validation(router, data):
    with pytest.raises(InvalidParameterError):
        Router([], data.metric)
    with pytest.raises(InvalidParameterError):
        Router(router.shards, data.metric, hedge_delay_s=-1.0)
    with pytest.raises(InvalidParameterError):
        Router(router.shards, data.metric, shard_timeout_s=0.0)
    with pytest.raises(InvalidParameterError):
        Router(router.shards, data.metric, min_completeness=1.5)
    with pytest.raises(InvalidParameterError):
        router.quarantine.add(0, "bogus-reason")
