"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.datasets import clustered_dataset, uniform_dataset
from repro.metrics import L2, EditDistance, LInf
from repro.mtree import MTree, NodeLayout, bulk_load, vector_layout

settings.register_profile(
    "ci",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


def pytest_configure(config):
    # CI installs pytest-timeout and runs with --timeout=120 so a
    # deadlocked hammer test fails instead of wedging the job.  Locally
    # the plugin may be absent; register the marker as a no-op so
    # @pytest.mark.timeout(...) never warns or errors.
    if not config.pluginmanager.hasplugin("timeout"):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test timeout "
            "(no-op without pytest-timeout)",
        )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_uniform():
    """300 uniform points in 4-D under L2."""
    return uniform_dataset(300, 4, metric=L2(), seed=7)


@pytest.fixture(scope="session")
def small_clustered():
    """500 clustered points in 6-D under L_inf."""
    return clustered_dataset(500, 6, seed=8)


@pytest.fixture(scope="session")
def tiny_layout():
    """A small-capacity layout that forces several tree levels."""
    return NodeLayout(node_size_bytes=256, object_bytes=24, min_utilization=0.3)


@pytest.fixture(scope="session")
def small_tree(small_clustered, tiny_layout):
    """A bulk-loaded M-tree over the clustered fixture."""
    layout = NodeLayout(
        node_size_bytes=512,
        object_bytes=4 * small_clustered.dim,
        min_utilization=0.3,
    )
    tree = bulk_load(
        small_clustered.points, small_clustered.metric, layout, seed=3
    )
    return tree


@pytest.fixture(scope="session")
def edit_metric():
    return EditDistance()


@pytest.fixture
def words():
    return [
        "casa",
        "cassa",
        "cosa",
        "causa",
        "caso",
        "rosa",
        "roso",
        "riso",
        "viso",
        "vaso",
        "verso",
        "verde",
        "vero",
        "nero",
        "pero",
        "però",
        "per",
        "tre",
        "treno",
        "terno",
    ]
