"""Tests for complex similarity queries: tree execution + cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ComplexRangeCostModel,
    DistanceHistogram,
    NodeStat,
    estimate_distance_histogram,
)
from repro.datasets import uniform_dataset
from repro.exceptions import InvalidParameterError
from repro.metrics import L2, LInf
from repro.mtree import bulk_load, collect_node_stats, vector_layout


@pytest.fixture(scope="module")
def setup():
    data = uniform_dataset(2000, 5, seed=1)
    tree = bulk_load(data.points, data.metric, vector_layout(5), seed=2)
    hist = estimate_distance_histogram(
        data.points, data.metric, data.d_plus, n_bins=100
    )
    model = ComplexRangeCostModel(
        hist, collect_node_stats(tree, data.d_plus), data.size
    )
    rng = np.random.default_rng(3)
    return data, tree, model, rng


def brute_force_and(points, metric, predicates):
    out = []
    for i, p in enumerate(points):
        if all(metric.distance(q, p) <= r for q, r in predicates):
            out.append(i)
    return out


def brute_force_or(points, metric, predicates):
    out = []
    for i, p in enumerate(points):
        if any(metric.distance(q, p) <= r for q, r in predicates):
            out.append(i)
    return out


class TestComplexQueryExecution:
    def test_and_matches_brute_force(self, setup):
        data, tree, _model, rng = setup
        predicates = [(rng.random(5), 0.3), (rng.random(5), 0.35)]
        result = tree.complex_range_query(predicates, mode="and")
        expected = brute_force_and(data.points, data.metric, predicates)
        assert sorted(result.oids()) == expected

    def test_or_matches_brute_force(self, setup):
        data, tree, _model, rng = setup
        predicates = [(rng.random(5), 0.2), (rng.random(5), 0.25)]
        result = tree.complex_range_query(predicates, mode="or")
        expected = brute_force_or(data.points, data.metric, predicates)
        assert sorted(result.oids()) == expected

    def test_three_predicates(self, setup):
        data, tree, _model, rng = setup
        predicates = [(rng.random(5), 0.4) for _ in range(3)]
        and_result = tree.complex_range_query(predicates, mode="and")
        or_result = tree.complex_range_query(predicates, mode="or")
        assert set(and_result.oids()) <= set(or_result.oids())

    def test_single_predicate_equals_range(self, setup):
        data, tree, _model, rng = setup
        query = rng.random(5)
        plain = tree.range_query(query, 0.3)
        complex_result = tree.complex_range_query([(query, 0.3)], mode="and")
        assert sorted(plain.oids()) == sorted(complex_result.oids())

    def test_distance_accounting(self, setup):
        """p predicates cost p distances per scanned entry."""
        data, tree, _model, rng = setup
        query = rng.random(5)
        predicates = [(query, 0.3), (query, 0.3)]
        single = tree.range_query(query, 0.3)
        double = tree.complex_range_query(predicates, mode="and")
        # Same query twice: same nodes accessed, double the distances.
        assert double.stats.nodes_accessed == single.stats.nodes_accessed
        assert double.stats.dists_computed == 2 * single.stats.dists_computed

    def test_and_prunes_more_than_or(self, setup):
        data, tree, _model, rng = setup
        predicates = [(rng.random(5), 0.25), (rng.random(5), 0.25)]
        and_result = tree.complex_range_query(predicates, mode="and")
        or_result = tree.complex_range_query(predicates, mode="or")
        assert (
            and_result.stats.nodes_accessed <= or_result.stats.nodes_accessed
        )

    def test_validation(self, setup):
        _data, tree, _model, rng = setup
        query = rng.random(5)
        with pytest.raises(InvalidParameterError):
            tree.complex_range_query([(query, 0.1)], mode="xor")
        with pytest.raises(InvalidParameterError):
            tree.complex_range_query([], mode="and")
        with pytest.raises(InvalidParameterError):
            tree.complex_range_query([(query, -0.1)], mode="and")


class TestComplexCostModel:
    def test_single_predicate_reduces_to_nmcm(self, setup):
        data, tree, model, _rng = setup
        from repro.core import NodeBasedCostModel

        hist = model.hist
        nmcm = NodeBasedCostModel(
            hist, collect_node_stats(tree, data.d_plus), data.size
        )
        estimate = model.and_costs([0.3])
        assert estimate.nodes == pytest.approx(float(nmcm.range_nodes(0.3)))
        assert estimate.dists == pytest.approx(float(nmcm.range_dists(0.3)))
        assert estimate.objs == pytest.approx(float(nmcm.range_objs(0.3)))

    def test_hand_computed_probabilities(self):
        hist = DistanceHistogram.uniform(100, 1.0)
        stats = [NodeStat(radius=0.2, n_entries=4, level=1)]
        model = ComplexRangeCostModel(hist, stats, n_objects=4)
        # AND: F(0.2+0.1) * F(0.2+0.3) = 0.3 * 0.5 = 0.15
        estimate = model.and_costs([0.1, 0.3])
        assert estimate.nodes == pytest.approx(0.15)
        assert estimate.dists == pytest.approx(2 * 4 * 0.15)
        # OR: 1 - 0.7*0.5 = 0.65
        estimate_or = model.or_costs([0.1, 0.3])
        assert estimate_or.nodes == pytest.approx(0.65)
        # selectivity: AND = 0.1*0.3 = 0.03 -> 0.12 objs of n=4
        assert estimate.objs == pytest.approx(4 * 0.03)
        assert estimate_or.objs == pytest.approx(4 * (1 - 0.9 * 0.7))

    def test_and_below_or(self, setup):
        _data, _tree, model, _rng = setup
        radii = [0.25, 0.3]
        assert model.and_costs(radii).nodes <= model.or_costs(radii).nodes
        assert model.and_costs(radii).objs <= model.or_costs(radii).objs

    def test_tracks_actual_on_independent_uniform_queries(self, setup):
        """On uniform data with independent query objects the independence
        approximation should land in a reasonable band."""
        data, tree, model, _rng = setup
        rng = np.random.default_rng(9)
        radii = [0.45, 0.5]
        nodes_sum, dists_sum, objs_sum = 0, 0, 0
        n_queries = 40
        for _ in range(n_queries):
            predicates = [
                (rng.random(5), radii[0]),
                (rng.random(5), radii[1]),
            ]
            result = tree.complex_range_query(predicates, mode="and")
            nodes_sum += result.stats.nodes_accessed
            dists_sum += result.stats.dists_computed
            objs_sum += len(result)
        estimate = model.and_costs(radii)
        assert estimate.nodes == pytest.approx(
            nodes_sum / n_queries, rel=0.5
        )
        assert estimate.dists == pytest.approx(
            dists_sum / n_queries, rel=0.5
        )

    def test_validation(self, setup):
        _data, _tree, model, _rng = setup
        with pytest.raises(InvalidParameterError):
            model.costs([0.1], mode="nand")
        with pytest.raises(InvalidParameterError):
            model.costs([], mode="and")
        with pytest.raises(InvalidParameterError):
            model.costs([-0.1], mode="and")
        hist = DistanceHistogram.uniform(10, 1.0)
        with pytest.raises(InvalidParameterError):
            ComplexRangeCostModel(hist, [], 10)
        with pytest.raises(InvalidParameterError):
            ComplexRangeCostModel(
                hist, [NodeStat(radius=0.1, n_entries=1, level=1)], 0
            )
