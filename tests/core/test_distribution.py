"""Tests for distance-distribution estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    estimate_distance_histogram,
    sample_pairwise_distances,
    subsample_distance_matrix,
)
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.metrics import L2, EditDistance, LInf


class TestSamplePairwise:
    def test_no_self_pairs(self):
        """Sampled pairs are always distinct objects: no zero distances for
        a dataset of distinct points in general position."""
        rng = np.random.default_rng(0)
        points = rng.random((40, 3))
        distances = sample_pairwise_distances(points, L2(), 500, rng)
        assert (distances > 0).all()

    def test_sample_size(self):
        rng = np.random.default_rng(1)
        points = rng.random((10, 2))
        distances = sample_pairwise_distances(points, L2(), 123, rng)
        assert distances.shape == (123,)

    def test_works_on_lists_of_strings(self, words):
        rng = np.random.default_rng(2)
        distances = sample_pairwise_distances(words, EditDistance(), 50, rng)
        assert distances.shape == (50,)
        assert (distances >= 0).all()

    def test_too_few_objects(self):
        with pytest.raises(EmptyDatasetError):
            sample_pairwise_distances(
                np.zeros((1, 2)), L2(), 10, np.random.default_rng(0)
            )

    def test_invalid_pair_count(self):
        with pytest.raises(InvalidParameterError):
            sample_pairwise_distances(
                np.zeros((5, 2)), L2(), 0, np.random.default_rng(0)
            )


class TestSubsampleMatrix:
    def test_shape_and_symmetry(self):
        rng = np.random.default_rng(3)
        points = rng.random((30, 3))
        matrix = subsample_distance_matrix(points, L2(), 12, rng)
        assert matrix.shape == (12, 12)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_caps_at_population(self):
        rng = np.random.default_rng(4)
        points = rng.random((5, 2))
        matrix = subsample_distance_matrix(points, L2(), 100, rng)
        assert matrix.shape == (5, 5)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            subsample_distance_matrix(
                [], L2(), 3, np.random.default_rng(0)
            )


class TestEstimateHistogram:
    def test_small_set_uses_all_pairs(self):
        """For a tiny set, the histogram must be the exact all-pairs one."""
        points = np.array([[0.0], [0.5], [1.0]])
        hist = estimate_distance_histogram(points, LInf(), 1.0, n_bins=2)
        # Pairs: 0.5, 1.0, 0.5 -> bins (0,0.5]: 2/3... with edge effects
        # 0.5 lands exactly on the boundary of bin 0 (right-closed via
        # np.histogram), check total mass and mean instead.
        assert hist.mean() == pytest.approx(2 / 3, abs=0.3)
        assert np.isclose(hist.bin_probs.sum(), 1.0)

    def test_sampled_estimate_close_to_exact(self):
        rng = np.random.default_rng(5)
        points = rng.random((3000, 4))
        exact_sample = points[:300]
        exact = estimate_distance_histogram(
            exact_sample, LInf(), 1.0, n_bins=20
        )
        sampled = estimate_distance_histogram(
            points, LInf(), 1.0, n_bins=20, rng=np.random.default_rng(6)
        )
        xs = np.linspace(0, 1, 21)
        gap = np.abs(
            np.asarray(exact.cdf(xs)) - np.asarray(sampled.cdf(xs))
        ).max()
        assert gap < 0.05

    def test_explicit_pair_budget(self):
        rng = np.random.default_rng(7)
        points = rng.random((100, 2))
        hist = estimate_distance_histogram(
            points, L2(), np.sqrt(2), n_bins=10, n_pairs=50, rng=rng
        )
        assert hist.n_bins == 10

    def test_deterministic_given_rng(self):
        points = np.random.default_rng(8).random((2000, 3))
        first = estimate_distance_histogram(
            points, LInf(), 1.0, n_bins=10, rng=np.random.default_rng(9)
        )
        second = estimate_distance_histogram(
            points, LInf(), 1.0, n_bins=10, rng=np.random.default_rng(9)
        )
        np.testing.assert_array_equal(first.bin_probs, second.bin_probs)

    def test_too_few_objects(self):
        with pytest.raises(EmptyDatasetError):
            estimate_distance_histogram(np.zeros((1, 2)), L2(), 1.0)
