"""Tests for the distance-exponent (fractal) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    estimate_distance_exponent,
    estimate_distance_histogram,
    power_law_histogram,
)
from repro.datasets import clustered_dataset, uniform_dataset
from repro.exceptions import InvalidParameterError


class TestEstimateExponent:
    def test_exact_power_law_recovered(self):
        """A histogram built from F = r^m must fit back to exponent m."""
        for m in (1.0, 2.5, 4.0):
            hist = power_law_histogram(m, 1.0, 1.0, n_bins=400)
            report = estimate_distance_exponent(hist)
            assert report.exponent == pytest.approx(m, rel=0.06)
            assert report.r_squared > 0.99

    def test_uniform_exponent_tracks_dimension(self):
        """For uniform data on [0,1]^D / L_inf, the small-radius exponent
        approaches D (boundary effects pull it slightly below)."""
        exponents = {}
        for dim in (2, 4, 8):
            data = uniform_dataset(4000, dim, seed=1)
            hist = estimate_distance_histogram(
                data.points, data.metric, 1.0, n_bins=200
            )
            exponents[dim] = estimate_distance_exponent(hist).exponent
        assert 1.5 < exponents[2] <= 2.2
        assert 2.8 < exponents[4] <= 4.2
        assert 4.5 < exponents[8] <= 8.2
        assert exponents[2] < exponents[4] < exponents[8]

    def test_clustered_data_has_lower_intrinsic_dimension(self):
        """Clusters concentrate mass at small radii: exponent << D."""
        dim = 10
        clustered_hist = estimate_distance_histogram(
            clustered_dataset(4000, dim, seed=2).points,
            clustered_dataset(4000, dim, seed=2).metric,
            1.0,
            n_bins=200,
        )
        uniform_hist = estimate_distance_histogram(
            uniform_dataset(4000, dim, seed=3).points,
            uniform_dataset(4000, dim, seed=3).metric,
            1.0,
            n_bins=200,
        )
        clustered_m = estimate_distance_exponent(clustered_hist).exponent
        uniform_m = estimate_distance_exponent(uniform_hist).exponent
        assert clustered_m < 0.7 * uniform_m

    def test_report_fields(self):
        hist = power_law_histogram(2.0, 1.0, 1.0)
        report = estimate_distance_exponent(hist)
        assert report.fit_lo < report.fit_hi
        assert report.n_points >= 3
        assert report.cdf_at(0.0) == 0.0
        assert report.cdf_at(10.0) == 1.0

    def test_invalid_window(self):
        hist = DistanceHistogram.uniform(10, 1.0)
        with pytest.raises(InvalidParameterError):
            estimate_distance_exponent(hist, quantile_lo=0.5, quantile_hi=0.2)


class TestPowerLawHistogram:
    def test_cdf_matches_formula(self):
        hist = power_law_histogram(2.0, 1.0, 1.0, n_bins=200)
        for r in (0.1, 0.3, 0.7):
            assert float(hist.cdf(r)) == pytest.approx(
                min(1.0, r**2), abs=0.01
            )

    def test_saturates_at_one(self):
        hist = power_law_histogram(1.0, 3.0, 1.0)  # C=3: saturates at r=1/3
        assert float(hist.cdf(0.5)) == pytest.approx(1.0, abs=0.01)

    def test_feeds_cost_models(self):
        """The two-parameter summary drives the NN machinery end to end."""
        from repro.core import expected_nn_distance

        hist = power_law_histogram(4.0, 1.0, 1.0, n_bins=200)
        value = expected_nn_distance(hist, n=1000, k=1)
        # F = r^4: E[nn_1] = int (1-r^4)^1000 dr ~ Gamma(5/4)/1000^(1/4).
        from math import gamma

        expected = gamma(1.25) / 1000 ** 0.25
        assert value == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"exponent": 0.0},
            {"intercept": 0.0},
            {"d_plus": 0.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        defaults = dict(exponent=2.0, intercept=1.0, d_plus=1.0)
        defaults.update(kwargs)
        with pytest.raises(InvalidParameterError):
            power_law_histogram(**defaults)
