"""Unit and property tests for the distance histogram."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DistanceHistogram
from repro.exceptions import HistogramDomainError, InvalidParameterError

probs_strategy = st.lists(
    st.floats(0.0, 10.0), min_size=1, max_size=30
).filter(lambda xs: sum(xs) > 0)


class TestConstruction:
    def test_from_sample_counts(self):
        hist = DistanceHistogram.from_sample([0.1, 0.1, 0.9], 10, 1.0)
        probs = hist.bin_probs
        assert probs[1] == pytest.approx(2 / 3)
        assert probs[9] == pytest.approx(1 / 3)

    def test_from_sample_rejects_out_of_domain(self):
        with pytest.raises(HistogramDomainError):
            DistanceHistogram.from_sample([0.5, 1.2], 10, 1.0)
        with pytest.raises(HistogramDomainError):
            DistanceHistogram.from_sample([-0.3], 10, 1.0)

    def test_from_sample_tolerates_float_noise(self):
        hist = DistanceHistogram.from_sample([1.0 + 1e-12], 4, 1.0)
        assert hist.cdf(1.0) == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            DistanceHistogram.from_sample([], 10, 1.0)

    @pytest.mark.parametrize("n_bins", [0, -1])
    def test_invalid_bins(self, n_bins):
        with pytest.raises(InvalidParameterError):
            DistanceHistogram.from_sample([0.5], n_bins, 1.0)

    @pytest.mark.parametrize("d_plus", [0.0, -1.0, float("inf")])
    def test_invalid_bound(self, d_plus):
        with pytest.raises(InvalidParameterError):
            DistanceHistogram([1.0], d_plus)

    def test_negative_probs_rejected(self):
        with pytest.raises(InvalidParameterError):
            DistanceHistogram([0.5, -0.5], 1.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(InvalidParameterError):
            DistanceHistogram([0.0, 0.0], 1.0)

    def test_uniform(self):
        hist = DistanceHistogram.uniform(10, 2.0)
        assert hist.cdf(1.0) == pytest.approx(0.5)
        assert hist.pdf(0.5) == pytest.approx(0.5)
        assert hist.mean() == pytest.approx(1.0)


class TestCDF:
    def test_edges(self):
        hist = DistanceHistogram([1, 1, 2], 3.0)
        assert hist.cdf(0.0) == 0.0
        assert hist.cdf(3.0) == 1.0
        assert hist.cdf(-0.5) == 0.0
        assert hist.cdf(99.0) == 1.0

    def test_linear_interpolation_within_bins(self):
        hist = DistanceHistogram([1, 0, 1], 3.0)
        assert hist.cdf(0.5) == pytest.approx(0.25)
        assert hist.cdf(1.5) == pytest.approx(0.5)  # empty middle bin
        assert hist.cdf(2.5) == pytest.approx(0.75)

    def test_vectorised(self):
        hist = DistanceHistogram.uniform(4, 1.0)
        xs = np.array([0.0, 0.25, 0.5, 1.0])
        np.testing.assert_allclose(hist.cdf(xs), xs)

    @given(probs_strategy, st.floats(0.0, 5.0))
    def test_cdf_in_unit_range(self, probs, x):
        hist = DistanceHistogram(probs, 5.0)
        value = hist.cdf(x)
        assert 0.0 <= value <= 1.0

    @given(probs_strategy)
    def test_cdf_monotone(self, probs):
        hist = DistanceHistogram(probs, 5.0)
        xs = np.linspace(-1, 6, 141)
        values = np.asarray(hist.cdf(xs))
        assert (np.diff(values) >= -1e-12).all()


class TestPDF:
    def test_density_integrates_to_one(self):
        hist = DistanceHistogram([3, 1, 2, 2], 4.0)
        xs = np.linspace(0, 4, 4001)
        integral = np.trapezoid(np.asarray(hist.pdf(xs)), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_density_zero_outside(self):
        hist = DistanceHistogram.uniform(5, 1.0)
        assert hist.pdf(-0.1) == 0.0
        assert hist.pdf(1.1) == 0.0

    def test_density_matches_mass(self):
        hist = DistanceHistogram([1, 3], 2.0)
        assert hist.pdf(0.5) == pytest.approx(0.25)
        assert hist.pdf(1.5) == pytest.approx(0.75)


class TestQuantile:
    def test_inverse_of_cdf(self):
        hist = DistanceHistogram([1, 2, 1], 3.0)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert hist.cdf(hist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_extremes(self):
        hist = DistanceHistogram.uniform(4, 1.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        hist = DistanceHistogram.uniform(4, 1.0)
        with pytest.raises(InvalidParameterError):
            hist.quantile(1.5)
        with pytest.raises(InvalidParameterError):
            hist.quantile(-0.1)

    @given(probs_strategy, st.floats(0.001, 0.999))
    def test_roundtrip_property(self, probs, q):
        hist = DistanceHistogram(probs, 5.0)
        x = hist.quantile(q)
        assert 0.0 <= x <= 5.0
        assert hist.cdf(x) == pytest.approx(q, abs=1e-6)


class TestTruncate:
    def test_eq22_renormalisation(self):
        """Truncation must match Eq. 22: F_i(x) = F(x)/F(bound)."""
        hist = DistanceHistogram([1, 1, 1, 1], 4.0)
        truncated = hist.truncate(2.0)
        assert truncated.d_plus == 2.0
        for x in (0.5, 1.0, 1.5, 2.0):
            expected = hist.cdf(x) / hist.cdf(2.0)
            assert truncated.cdf(x) == pytest.approx(expected)

    def test_bound_above_domain_is_noop_bound(self):
        hist = DistanceHistogram([1, 2], 2.0)
        truncated = hist.truncate(5.0)
        assert truncated.d_plus == 2.0
        np.testing.assert_allclose(
            truncated.cdf(np.linspace(0, 2, 11)),
            hist.cdf(np.linspace(0, 2, 11)),
            atol=1e-12,
        )

    def test_degenerate_no_mass_below_bound(self):
        hist = DistanceHistogram([0, 0, 0, 1], 4.0)
        truncated = hist.truncate(1.0)
        assert truncated.cdf(1.0) == 1.0

    def test_invalid_bound(self):
        hist = DistanceHistogram.uniform(4, 1.0)
        with pytest.raises(InvalidParameterError):
            hist.truncate(0.0)

    @given(probs_strategy, st.floats(0.1, 4.9))
    def test_truncated_is_valid_cdf(self, probs, bound):
        hist = DistanceHistogram(probs, 5.0)
        truncated = hist.truncate(bound)
        xs = np.linspace(0, truncated.d_plus, 50)
        values = np.asarray(truncated.cdf(xs))
        assert (np.diff(values) >= -1e-12).all()
        assert values[-1] == pytest.approx(1.0)


class TestIntegrationGrid:
    def test_grid_covers_domain(self):
        hist = DistanceHistogram.uniform(5, 2.0)
        grid = hist.integration_grid(4)
        assert grid[0] == 0.0
        assert grid[-1] == 2.0
        assert (np.diff(grid) > 0).all()
        assert len(grid) == 5 * 4 + 1

    def test_invalid_refinement(self):
        hist = DistanceHistogram.uniform(5, 2.0)
        with pytest.raises(InvalidParameterError):
            hist.integration_grid(0)


class TestMean:
    def test_uniform_mean(self):
        assert DistanceHistogram.uniform(100, 2.0).mean() == pytest.approx(1.0)

    def test_point_mass_mean(self):
        hist = DistanceHistogram([0, 0, 1, 0], 4.0)
        assert hist.mean() == pytest.approx(2.5)
