"""Tests for RDDs, discrepancy and the HV index estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    discrepancy,
    estimate_hv,
    rdd_histogram,
)
from repro.datasets import binary_hypercube_dataset, uniform_dataset
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.metrics import LInf


class TestDiscrepancy:
    def test_zero_for_identical(self):
        hist = DistanceHistogram([1, 2, 3], 3.0)
        assert discrepancy(hist, hist) == 0.0

    def test_known_value(self):
        """Uniform vs point mass at the top: mean |F1 - F2| = 1/2 - ..."""
        uniform = DistanceHistogram.uniform(100, 1.0)
        top_mass = DistanceHistogram([0] * 99 + [1], 1.0)
        # F_uniform(x) = x, F_top(x) ~ 0 until the last bin.
        # integral of |x - 0| over [0, 0.99] ~ 0.49.
        value = discrepancy(uniform, top_mass)
        assert value == pytest.approx(0.49, abs=0.02)

    def test_symmetry(self):
        a = DistanceHistogram([1, 2, 3], 3.0)
        b = DistanceHistogram([3, 1, 1], 3.0)
        assert discrepancy(a, b) == pytest.approx(discrepancy(b, a))

    def test_triangle_inequality_on_functional_space(self):
        a = DistanceHistogram([1, 2, 3, 4], 4.0)
        b = DistanceHistogram([4, 3, 2, 1], 4.0)
        c = DistanceHistogram([1, 1, 1, 1], 4.0)
        assert discrepancy(a, b) <= (
            discrepancy(a, c) + discrepancy(c, b) + 1e-12
        )

    def test_bounded_by_one(self):
        a = DistanceHistogram([1] + [0] * 9, 1.0)
        b = DistanceHistogram([0] * 9 + [1], 1.0)
        assert 0.0 <= discrepancy(a, b) <= 1.0

    def test_mismatched_bounds_rejected(self):
        a = DistanceHistogram([1], 1.0)
        b = DistanceHistogram([1], 2.0)
        with pytest.raises(InvalidParameterError):
            discrepancy(a, b)

    def test_invalid_grid(self):
        a = DistanceHistogram([1], 1.0)
        with pytest.raises(InvalidParameterError):
            discrepancy(a, a, grid_points=1)


class TestRDD:
    def test_rdd_is_histogram_of_viewpoint_distances(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        rdd = rdd_histogram(
            np.array([0.0, 0.0]), points, LInf(), 1.0, n_bins=4
        )
        # Distances from origin: 0, 1, 1 (piecewise-linear CDF smooths the
        # point masses within their bins).
        assert rdd.cdf(0.25) == pytest.approx(1 / 3)
        assert rdd.cdf(0.74) == pytest.approx(1 / 3)
        assert rdd.cdf(1.0) == 1.0

    def test_empty_targets_rejected(self):
        with pytest.raises(EmptyDatasetError):
            rdd_histogram(np.zeros(2), [], LInf(), 1.0)


class TestEstimateHV:
    def test_perfectly_homogeneous_space(self):
        """All points on a circle (through the centre symmetry) have nearly
        identical RDDs under rotation-invariant sampling; simpler: use a
        dataset of two alternating points where every viewpoint sees the
        same multiset of distances."""
        points = np.array([[0.0, 0.0], [1.0, 1.0]] * 50)
        report = estimate_hv(
            points,
            LInf(),
            1.0,
            n_viewpoints=10,
            n_targets=100,
            rng=np.random.default_rng(0),
        )
        assert report.hv > 0.95
        assert report.hv_corrected >= report.hv - 1e-12

    def test_hypercube_matches_analytic(self):
        from repro.datasets import hv_binary_hypercube_with_midpoint

        data = binary_hypercube_dataset(6)
        report = estimate_hv(
            data.objects(),
            data.metric,
            data.d_plus,
            n_viewpoints=data.size,
            n_targets=data.size,
            n_bins=100,
            rng=np.random.default_rng(1),
        )
        assert report.hv == pytest.approx(
            hv_binary_hypercube_with_midpoint(6), abs=0.03
        )

    def test_report_fields(self):
        data = uniform_dataset(300, 4, seed=2)
        report = estimate_hv(
            data.objects(),
            data.metric,
            data.d_plus,
            n_viewpoints=10,
            n_targets=200,
            rng=np.random.default_rng(3),
        )
        assert report.n_viewpoints == 10
        assert report.n_targets == 200
        assert report.discrepancies.shape == (45,)  # 10 choose 2
        assert 0.0 <= report.mean_discrepancy <= 1.0
        assert report.hv == pytest.approx(1 - report.mean_discrepancy)
        assert report.noise_floor >= 0.0

    def test_g_delta_curve(self):
        data = uniform_dataset(200, 3, seed=4)
        report = estimate_hv(
            data.objects(),
            data.metric,
            data.d_plus,
            n_viewpoints=8,
            n_targets=150,
            rng=np.random.default_rng(5),
        )
        assert report.g_delta(1.0) == 1.0
        assert report.g_delta(0.0) <= report.g_delta(0.5)
        curve = report.g_delta_curve([0.0, 0.5, 1.0])
        assert (np.diff(curve) >= 0).all()
        with pytest.raises(InvalidParameterError):
            report.g_delta(2.0)

    def test_validation_errors(self):
        data = uniform_dataset(50, 2, seed=6)
        with pytest.raises(EmptyDatasetError):
            estimate_hv([data.points[0]], data.metric, 1.0)
        with pytest.raises(InvalidParameterError):
            estimate_hv(data.objects(), data.metric, 1.0, n_viewpoints=1)
        with pytest.raises(InvalidParameterError):
            estimate_hv(data.objects(), data.metric, 1.0, n_targets=1)

    def test_noise_correction_helps_homogeneous_space(self):
        """With identical RDDs, the corrected HV should be closer to 1 than
        the raw estimate (which carries the sampling-noise floor)."""
        points = np.array([[0.0, 0.0], [1.0, 1.0]] * 100)
        report = estimate_hv(
            points,
            LInf(),
            1.0,
            n_viewpoints=12,
            n_targets=60,  # small on purpose: visible noise floor
            rng=np.random.default_rng(7),
        )
        assert report.hv_corrected >= report.hv
