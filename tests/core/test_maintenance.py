"""Tests for the incremental distance-distribution maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IncrementalDistanceHistogram,
    estimate_distance_histogram,
)
from repro.datasets import clustered_dataset, keyword_dataset
from repro.exceptions import InvalidParameterError
from repro.metrics import L2, EditDistance, LInf


class TestInsertPath:
    def test_converges_to_batch_estimate(self):
        data = clustered_dataset(2000, 6, seed=1)
        incremental = IncrementalDistanceHistogram(
            data.metric, 1.0, n_bins=40, seed=2
        )
        incremental.insert_many(list(data.points))
        batch = estimate_distance_histogram(
            data.points, data.metric, 1.0, n_bins=40
        )
        grid = np.linspace(0, 1, 41)
        gap = np.abs(
            np.asarray(incremental.histogram().cdf(grid))
            - np.asarray(batch.cdf(grid))
        ).max()
        assert gap < 0.03

    def test_counts_grow(self):
        inc = IncrementalDistanceHistogram(L2(), 2.0, seed=3)
        rng = np.random.default_rng(4)
        inc.insert(rng.random(2))
        assert inc.n_distances == 0  # first object has no partner yet
        inc.insert(rng.random(2))
        assert inc.n_distances >= 1
        inc.insert_many(rng.random((20, 2)))
        assert inc.n_objects == 22
        assert inc.n_distances > 20

    def test_reservoir_bounded(self):
        inc = IncrementalDistanceHistogram(
            LInf(), 1.0, reservoir_size=10, seed=5
        )
        inc.insert_many(np.random.default_rng(6).random((200, 3)))
        assert len(inc._reservoir) == 10

    def test_histogram_before_data_rejected(self):
        inc = IncrementalDistanceHistogram(L2(), 1.0)
        with pytest.raises(InvalidParameterError):
            inc.histogram()

    def test_out_of_bound_distance_rejected(self):
        inc = IncrementalDistanceHistogram(L2(), 0.1, seed=7)
        inc.insert(np.array([0.0, 0.0]))
        with pytest.raises(InvalidParameterError):
            inc.insert(np.array([5.0, 5.0]))

    def test_integer_mode(self, words):
        inc = IncrementalDistanceHistogram(
            EditDistance(), 10.0, n_bins=10, integer_valued=True, seed=8
        )
        inc.insert_many(words)
        hist = inc.histogram()
        # Right-inclusive at integers: F(d) counts pairs at distance == d.
        assert hist.cdf(10.0) == 1.0


class TestDeletePath:
    def test_staleness_counter(self):
        inc = IncrementalDistanceHistogram(
            L2(), 2.0, rebuild_threshold=0.2, seed=9
        )
        inc.insert_many(np.random.default_rng(10).random((10, 2)))
        assert not inc.needs_rebuild
        inc.delete()
        inc.delete()
        assert inc.deleted_fraction == pytest.approx(0.2)
        inc.delete()
        assert inc.needs_rebuild

    def test_delete_on_empty_rejected(self):
        inc = IncrementalDistanceHistogram(L2(), 1.0)
        with pytest.raises(InvalidParameterError):
            inc.delete()

    def test_rebuild_resets(self):
        rng = np.random.default_rng(11)
        inc = IncrementalDistanceHistogram(L2(), 2.0, seed=12)
        inc.insert_many(rng.random((50, 2)))
        for _ in range(30):
            inc.delete()
        assert inc.needs_rebuild
        survivors = rng.random((20, 2))
        inc.rebuild_from(list(survivors))
        assert not inc.needs_rebuild
        assert inc.n_objects == 20


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d_plus": 0.0},
            {"n_bins": 0},
            {"reservoir_size": 1},
            {"sample_per_insert": 0},
            {"rebuild_threshold": 0.0},
            {"rebuild_threshold": 1.5},
        ],
    )
    def test_invalid_params(self, kwargs):
        defaults = dict(metric=L2(), d_plus=1.0)
        defaults.update(kwargs)
        with pytest.raises(InvalidParameterError):
            IncrementalDistanceHistogram(**defaults)
