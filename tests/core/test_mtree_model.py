"""Tests for N-MCM and L-MCM against hand-computed sums (Eqs. 5-8, 15-16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    LevelBasedCostModel,
    LevelStat,
    NodeBasedCostModel,
    NodeStat,
    level_stats_from_node_stats,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture
def hist():
    return DistanceHistogram.uniform(100, 1.0)


@pytest.fixture
def node_stats():
    """A tiny 2-level tree: root (radius d+ = 1) with two children."""
    return [
        NodeStat(radius=1.0, n_entries=2, level=1),
        NodeStat(radius=0.3, n_entries=5, level=2),
        NodeStat(radius=0.5, n_entries=7, level=2),
    ]


class TestNodeBased:
    def test_range_nodes_is_sum_of_probabilities(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        r = 0.1
        expected = (
            hist.cdf(1.0 + r) + hist.cdf(0.3 + r) + hist.cdf(0.5 + r)
        )
        assert model.range_nodes(r) == pytest.approx(float(expected))

    def test_range_dists_weights_by_entries(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        r = 0.1
        expected = (
            2 * hist.cdf(1.0 + r)
            + 5 * hist.cdf(0.3 + r)
            + 7 * hist.cdf(0.5 + r)
        )
        assert model.range_dists(r) == pytest.approx(float(expected))

    def test_range_objs_eq8(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        assert model.range_objs(0.25) == pytest.approx(12 * 0.25)

    def test_root_always_accessed(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        # Even at radius 0, the root contributes F(d+) = 1.
        assert float(model.range_nodes(0.0)) >= 1.0

    def test_bounded_by_tree_size(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        assert float(model.range_nodes(1.0)) <= 3.0 + 1e-9
        assert float(model.range_dists(1.0)) <= 14.0 + 1e-9

    def test_monotone_in_radius(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        radii = np.linspace(0, 1, 11)
        nodes_curve = np.asarray(model.range_nodes(radii))
        dists_curve = np.asarray(model.range_dists(radii))
        assert (np.diff(nodes_curve) >= -1e-12).all()
        assert (np.diff(dists_curve) >= -1e-12).all()

    def test_vectorised_matches_scalar(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        radii = np.array([0.0, 0.2, 0.7])
        curve = np.asarray(model.range_nodes(radii))
        for r, value in zip(radii, curve):
            assert value == pytest.approx(float(model.range_nodes(float(r))))

    def test_range_costs_bundle(self, hist, node_stats):
        model = NodeBasedCostModel(hist, node_stats, n_objects=12)
        costs = model.range_costs(0.2)
        assert costs.nodes == pytest.approx(float(model.range_nodes(0.2)))
        assert costs.dists == pytest.approx(float(model.range_dists(0.2)))
        assert costs.objs == pytest.approx(float(model.range_objs(0.2)))

    @pytest.mark.parametrize(
        "bad_stats",
        [
            [],
            [NodeStat(radius=-0.1, n_entries=3, level=1)],
            [NodeStat(radius=0.5, n_entries=0, level=1)],
        ],
    )
    def test_invalid_stats(self, hist, bad_stats):
        with pytest.raises(InvalidParameterError):
            NodeBasedCostModel(hist, bad_stats, n_objects=10)

    def test_invalid_n_objects(self, hist, node_stats):
        with pytest.raises(InvalidParameterError):
            NodeBasedCostModel(hist, node_stats, n_objects=0)


class TestLevelBased:
    def test_eq15_nodes(self, hist):
        stats = [
            LevelStat(level=1, n_nodes=1, avg_radius=1.0),
            LevelStat(level=2, n_nodes=4, avg_radius=0.4),
        ]
        model = LevelBasedCostModel(hist, stats, n_objects=40)
        r = 0.2
        expected = 1 * hist.cdf(1.0 + r) + 4 * hist.cdf(0.4 + r)
        assert model.range_nodes(r) == pytest.approx(float(expected))

    def test_eq16_dists_shifts_levels(self, hist):
        """dists uses M_{l+1}: entries at level l = nodes at level l+1,
        with M_{L+1} = n."""
        stats = [
            LevelStat(level=1, n_nodes=1, avg_radius=1.0),
            LevelStat(level=2, n_nodes=4, avg_radius=0.4),
        ]
        n = 40
        model = LevelBasedCostModel(hist, stats, n_objects=n)
        r = 0.2
        expected = 4 * hist.cdf(1.0 + r) + n * hist.cdf(0.4 + r)
        assert model.range_dists(r) == pytest.approx(float(expected))

    def test_matches_node_based_for_homogeneous_tree(self, hist):
        """When all nodes at a level share the same radius and entry count,
        N-MCM and L-MCM agree exactly for node reads."""
        node_stats = [
            NodeStat(radius=1.0, n_entries=3, level=1),
            NodeStat(radius=0.4, n_entries=5, level=2),
            NodeStat(radius=0.4, n_entries=5, level=2),
            NodeStat(radius=0.4, n_entries=5, level=2),
        ]
        level_stats = level_stats_from_node_stats(node_stats)
        n = 15
        node_model = NodeBasedCostModel(hist, node_stats, n)
        level_model = LevelBasedCostModel(hist, level_stats, n)
        for r in (0.0, 0.1, 0.5):
            assert float(node_model.range_nodes(r)) == pytest.approx(
                float(level_model.range_nodes(r))
            )
            assert float(node_model.range_dists(r)) == pytest.approx(
                float(level_model.range_dists(r))
            )

    def test_level_stats_must_cover_1_to_L(self, hist):
        with pytest.raises(InvalidParameterError):
            LevelBasedCostModel(
                hist,
                [LevelStat(level=2, n_nodes=3, avg_radius=0.5)],
                n_objects=10,
            )
        with pytest.raises(InvalidParameterError):
            LevelBasedCostModel(
                hist,
                [
                    LevelStat(level=1, n_nodes=1, avg_radius=1.0),
                    LevelStat(level=3, n_nodes=2, avg_radius=0.4),
                ],
                n_objects=10,
            )

    def test_height_property(self, hist):
        stats = [
            LevelStat(level=1, n_nodes=1, avg_radius=1.0),
            LevelStat(level=2, n_nodes=3, avg_radius=0.5),
            LevelStat(level=3, n_nodes=9, avg_radius=0.2),
        ]
        model = LevelBasedCostModel(hist, stats, n_objects=90)
        assert model.height == 3


class TestLevelAggregation:
    def test_aggregates_means(self):
        node_stats = [
            NodeStat(radius=1.0, n_entries=2, level=1),
            NodeStat(radius=0.2, n_entries=4, level=2),
            NodeStat(radius=0.4, n_entries=6, level=2),
        ]
        levels = level_stats_from_node_stats(node_stats)
        assert len(levels) == 2
        assert levels[0].n_nodes == 1
        assert levels[1].n_nodes == 2
        assert levels[1].avg_radius == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            level_stats_from_node_stats([])


class TestNNCosts:
    @pytest.fixture
    def model(self, hist):
        stats = [
            LevelStat(level=1, n_nodes=1, avg_radius=1.0),
            LevelStat(level=2, n_nodes=10, avg_radius=0.25),
        ]
        return LevelBasedCostModel(hist, stats, n_objects=100)

    def test_all_methods_run(self, model):
        for method in ("integral", "expected-radius", "min-selectivity"):
            estimate = model.nn_costs(1, method=method)
            assert estimate.nodes > 0
            assert estimate.dists > 0
            assert estimate.method == method
            assert 0 <= estimate.expected_nn_distance <= 1.0

    def test_unknown_method_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            model.nn_costs(1, method="nope")

    def test_integral_close_to_expected_radius_for_k1(self, model):
        """The two estimators should be in the same ballpark (the paper
        plots them as near-coincident for most D)."""
        integral = model.nn_costs(1, method="integral")
        at_radius = model.nn_costs(1, method="expected-radius")
        assert integral.nodes == pytest.approx(at_radius.nodes, rel=0.35)

    def test_nn_costs_bounded_by_tree(self, model):
        estimate = model.nn_costs(1, method="integral")
        assert estimate.nodes <= 11 + 1e-6
        assert estimate.dists <= 1 * 10 + 100 + 1e-6

    def test_nn_monotone_in_k(self, model):
        costs = [
            model.nn_costs(k, method="integral").nodes for k in (1, 2, 5, 20)
        ]
        assert costs == sorted(costs)
