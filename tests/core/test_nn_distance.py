"""Tests for the k-NN distance distribution (Eqs. 9-14)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DistanceHistogram,
    expected_nn_distance,
    min_selectivity_radius,
    nn_distance_cdf,
    nn_distance_pdf_factor,
)
from repro.exceptions import InvalidParameterError


def raw_binomial_tail(f: float, n: int, k: int) -> float:
    """Eq. 9 computed literally: 1 - sum_{i<k} C(n,i) F^i (1-F)^{n-i}."""
    total = 0.0
    for i in range(k):
        total += math.comb(n, i) * f**i * (1 - f) ** (n - i)
    return 1.0 - total


def raw_pdf_factor(f: float, n: int, k: int) -> float:
    """Eq. 10's dP/dF computed literally (sum form, divided by f(r)).

    Eq. 10: p(r) = sum_{i<k} C(n,i) F^{i-1} f (1-F)^{n-i-1} (nF - i)
    so dP/dF = sum_{i<k} C(n,i) F^{i-1} (1-F)^{n-i-1} (nF - i).
    """
    total = 0.0
    for i in range(k):
        total += (
            math.comb(n, i)
            * f ** (i - 1)
            * (1 - f) ** (n - i - 1)
            * (n * f - i)
        )
    return total


class TestCDF:
    @pytest.mark.parametrize("n,k", [(10, 1), (10, 3), (25, 5), (50, 1)])
    def test_matches_raw_binomial(self, n, k):
        hist = DistanceHistogram.uniform(10, 1.0)
        for r in (0.05, 0.2, 0.5, 0.8):
            expected = raw_binomial_tail(float(hist.cdf(r)), n, k)
            assert nn_distance_cdf(hist, n, k, r) == pytest.approx(
                expected, abs=1e-10
            )

    def test_k1_closed_form(self):
        """Eq. 12: P_{Q,1}(r) = 1 - (1 - F(r))^n."""
        hist = DistanceHistogram.uniform(10, 1.0)
        n = 20
        for r in (0.1, 0.4, 0.9):
            f = float(hist.cdf(r))
            assert nn_distance_cdf(hist, n, 1, r) == pytest.approx(
                1 - (1 - f) ** n
            )

    def test_is_cdf_in_r(self):
        hist = DistanceHistogram([1, 2, 3, 4], 4.0)
        grid = np.linspace(0, 4, 41)
        values = np.asarray(nn_distance_cdf(hist, 30, 3, grid))
        assert (np.diff(values) >= -1e-12).all()
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(1.0)

    def test_monotone_decreasing_in_k(self):
        hist = DistanceHistogram.uniform(10, 1.0)
        r = 0.3
        values = [nn_distance_cdf(hist, 50, k, r) for k in (1, 2, 5, 10)]
        assert values == sorted(values, reverse=True)

    def test_huge_n_is_stable(self):
        hist = DistanceHistogram.uniform(100, 1.0)
        # F(1e-7) = 1e-7, so P = 1 - (1 - 1e-7)^1e6 ~ 1 - e^-0.1 ~ 0.095.
        value = nn_distance_cdf(hist, 10**6, 1, 1e-7)
        assert value == pytest.approx(1 - math.exp(-0.1), abs=1e-3)
        assert np.isfinite(value)

    @pytest.mark.parametrize("n,k", [(0, 1), (10, 0), (10, 11)])
    def test_invalid_nk(self, n, k):
        hist = DistanceHistogram.uniform(10, 1.0)
        with pytest.raises(InvalidParameterError):
            nn_distance_cdf(hist, n, k, 0.5)


class TestPDFFactor:
    @pytest.mark.parametrize("n,k", [(10, 1), (15, 2), (30, 4)])
    def test_matches_raw_sum(self, n, k):
        hist = DistanceHistogram.uniform(10, 1.0)
        for r in (0.1, 0.35, 0.6, 0.95):
            f = float(hist.cdf(r))
            assert nn_distance_pdf_factor(hist, n, k, r) == pytest.approx(
                raw_pdf_factor(f, n, k), rel=1e-9
            )

    def test_k1_closed_form(self):
        """Eq. 13: p_{Q,1}(r) = n f(r) (1-F)^{n-1}, so factor = n(1-F)^{n-1}."""
        hist = DistanceHistogram.uniform(10, 1.0)
        n = 12
        for r in (0.2, 0.5, 0.8):
            f = float(hist.cdf(r))
            assert nn_distance_pdf_factor(hist, n, 1, r) == pytest.approx(
                n * (1 - f) ** (n - 1)
            )

    def test_integrates_to_one(self):
        """p_{Q,k} = factor * f(r) must integrate to ~1 over [0, d+]."""
        hist = DistanceHistogram([1, 2, 4, 2, 1], 5.0)
        n, k = 40, 3
        grid = hist.integration_grid(32)
        density = np.asarray(hist.pdf(grid)) * np.asarray(
            nn_distance_pdf_factor(hist, n, k, grid)
        )
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_boundary_values(self):
        hist = DistanceHistogram.uniform(4, 1.0)
        assert nn_distance_pdf_factor(hist, 5, 1, 0.0) == pytest.approx(5.0)
        assert nn_distance_pdf_factor(hist, 5, 5, 1.0) == pytest.approx(5.0)
        assert nn_distance_pdf_factor(hist, 5, 2, 0.0) == 0.0


class TestExpectedNNDistance:
    def test_uniform_k1_closed_form(self):
        """For F uniform on [0,1]: E[nn_1] = integral (1-r)^n dr = 1/(n+1)."""
        hist = DistanceHistogram.uniform(200, 1.0)
        for n in (1, 5, 20):
            assert expected_nn_distance(hist, n, 1) == pytest.approx(
                1 / (n + 1), abs=2e-3
            )

    def test_monotone_in_k(self):
        hist = DistanceHistogram([1, 2, 3, 2, 1], 5.0)
        n = 30
        values = [expected_nn_distance(hist, n, k) for k in (1, 2, 5, 10, 30)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_n(self):
        hist = DistanceHistogram.uniform(100, 1.0)
        values = [expected_nn_distance(hist, n, 1) for n in (2, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_within_domain(self):
        hist = DistanceHistogram([5, 1, 1], 3.0)
        value = expected_nn_distance(hist, 10, 2)
        assert 0.0 <= value <= 3.0

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=5),
    )
    def test_bounds_property(self, n, k):
        if k > n:
            return
        hist = DistanceHistogram([1, 3, 2, 1], 4.0)
        value = expected_nn_distance(hist, n, k)
        assert 0.0 <= value <= 4.0


class TestMinSelectivityRadius:
    def test_uniform(self):
        """r(k): n * F(r) = k -> r = k/n for uniform F on [0,1]."""
        hist = DistanceHistogram.uniform(100, 1.0)
        assert min_selectivity_radius(hist, 100, 1) == pytest.approx(
            0.01, abs=1e-9
        )
        assert min_selectivity_radius(hist, 100, 20) == pytest.approx(
            0.2, abs=1e-9
        )

    def test_monotone_in_k(self):
        hist = DistanceHistogram([1, 2, 3], 3.0)
        values = [min_selectivity_radius(hist, 50, k) for k in (1, 5, 25, 50)]
        assert values == sorted(values)

    def test_k_equals_n(self):
        hist = DistanceHistogram.uniform(10, 1.0)
        assert min_selectivity_radius(hist, 7, 7) == pytest.approx(1.0)
