"""Tests for the tree-statistics-free cost model (§6 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    LevelBasedCostModel,
    StatlessCostModel,
    estimate_distance_histogram,
    predict_level_stats,
)
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError
from repro.mtree import bulk_load, collect_level_stats, vector_layout


@pytest.fixture(scope="module")
def uniform_hist():
    return DistanceHistogram.uniform(100, 1.0)


class TestPredictLevelStats:
    def test_single_leaf_tree(self, uniform_hist):
        shape = predict_level_stats(uniform_hist, 10, 20, 20)
        assert shape.height == 1
        assert shape.level_stats[0].n_nodes == 1
        assert shape.level_stats[0].avg_radius == 1.0  # root keeps d_plus

    def test_two_level_tree(self, uniform_hist):
        shape = predict_level_stats(
            uniform_hist, 1000, 50, 50, utilization=0.65
        )
        assert shape.height == 2
        leaves = shape.level_stats[1].n_nodes
        assert leaves == int(np.ceil(1000 / (0.65 * 50)))

    def test_root_collapse_uses_full_capacity(self, uniform_hist):
        """A level that fits one full node becomes the root directly."""
        shape = predict_level_stats(
            uniform_hist, 1000, 50, 40, utilization=0.65
        )
        # 31 leaves fit a 40-capacity root even though 0.65*40 = 26 < 31.
        assert shape.height == 2

    def test_populations_decrease_geometrically(self, uniform_hist):
        shape = predict_level_stats(uniform_hist, 100_000, 40, 40)
        counts = [stat.n_nodes for stat in shape.level_stats]
        assert counts[0] == 1
        assert counts == sorted(counts)
        assert shape.height >= 3

    def test_radii_shrink_down_the_tree(self, uniform_hist):
        shape = predict_level_stats(uniform_hist, 100_000, 40, 40)
        radii = [stat.avg_radius for stat in shape.level_stats]
        assert radii == sorted(radii, reverse=True)
        assert radii[0] == 1.0

    def test_radius_uses_quantile_correlation(self, uniform_hist):
        shape = predict_level_stats(
            uniform_hist, 10_000, 100, 100, utilization=1.0, radius_slack=1.0
        )
        leaves = shape.level_stats[-1]
        # Uniform F: quantile(1/M) = 1/M exactly.
        assert leaves.avg_radius == pytest.approx(1.0 / leaves.n_nodes, rel=1e-6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_objects": 0},
            {"leaf_capacity": 1},
            {"internal_capacity": 1},
            {"utilization": 0.0},
            {"utilization": 1.5},
            {"radius_slack": 0.5},
        ],
    )
    def test_invalid_params(self, uniform_hist, kwargs):
        defaults = dict(
            n_objects=100, leaf_capacity=10, internal_capacity=10
        )
        defaults.update(kwargs)
        with pytest.raises(InvalidParameterError):
            predict_level_stats(uniform_hist, **defaults)


class TestStatlessCostModel:
    def test_is_a_level_model(self, uniform_hist):
        model = StatlessCostModel(uniform_hist, 1000, 40, 40)
        assert isinstance(model, LevelBasedCostModel)
        assert model.shape.height == model.height

    def test_range_estimates_bounded(self, uniform_hist):
        model = StatlessCostModel(uniform_hist, 1000, 40, 40)
        total_nodes = sum(s.n_nodes for s in model.shape.level_stats)
        assert 0 < float(model.range_nodes(0.2)) <= total_nodes
        assert float(model.range_dists(0.2)) > 0

    def test_predicts_real_tree_within_band(self):
        """The design-time model must land within ~35% of the measured
        L-MCM estimate on a real bulk-loaded tree (the bench narrows
        this to actual-query comparisons)."""
        data = clustered_dataset(2500, 10, seed=1)
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=100
        )
        layout = vector_layout(10)
        tree = bulk_load(data.points, data.metric, layout, seed=2)
        true_model = LevelBasedCostModel(
            hist, collect_level_stats(tree, data.d_plus), data.size
        )
        statless = StatlessCostModel(
            hist, data.size, layout.leaf_capacity, layout.internal_capacity
        )
        radius = 0.01 ** (1 / 10) / 2
        true_value = float(true_model.range_dists(radius))
        statless_value = float(statless.range_dists(radius))
        assert abs(statless_value - true_value) / true_value < 0.35

    def test_shape_close_to_real_tree(self):
        data = clustered_dataset(2500, 10, seed=1)
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=100
        )
        layout = vector_layout(10)
        tree = bulk_load(data.points, data.metric, layout, seed=2)
        true_levels = collect_level_stats(tree, data.d_plus)
        statless = StatlessCostModel(
            hist, data.size, layout.leaf_capacity, layout.internal_capacity
        )
        assert statless.shape.height == len(true_levels)
        predicted_leaves = statless.shape.level_stats[-1].n_nodes
        actual_leaves = true_levels[-1].n_nodes
        assert abs(predicted_leaves - actual_leaves) / actual_leaves < 0.3

    def test_nn_costs_work(self, uniform_hist):
        model = StatlessCostModel(uniform_hist, 500, 30, 30)
        estimate = model.nn_costs(1)
        assert estimate.nodes > 0
        assert estimate.dists > 0
