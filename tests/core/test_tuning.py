"""Tests for the node-size tuner (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NodeSizeTuner, estimate_distance_histogram
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError
from repro.storage import DiskModel


@pytest.fixture(scope="module")
def tuner_setup():
    data = clustered_dataset(800, 5, seed=1)
    hist = estimate_distance_histogram(
        data.points, data.metric, data.d_plus, n_bins=50
    )
    tuner = NodeSizeTuner(
        data.points,
        data.metric,
        data.d_plus,
        object_bytes=20,
        hist=hist,
        disk_model=DiskModel(),
        seed=2,
    )
    return data, tuner


class TestSweep:
    def test_sweep_points(self, tuner_setup):
        _data, tuner = tuner_setup
        result = tuner.sweep([1.0, 4.0, 16.0], radius=0.15)
        assert len(result.points) == 3
        sizes = [p.node_size_kb for p in result.points]
        assert sizes == [1.0, 4.0, 16.0]
        assert result.optimal_node_size_kb in sizes

    def test_io_decreases_with_node_size(self, tuner_setup):
        """Figure 5(a): predicted node reads fall as pages grow."""
        _data, tuner = tuner_setup
        result = tuner.sweep([0.5, 2.0, 8.0, 32.0], radius=0.15)
        nodes = [p.predicted_nodes for p in result.points]
        assert nodes == sorted(nodes, reverse=True)

    def test_cpu_grows_for_large_nodes(self, tuner_setup):
        """The right side of Figure 5(a)'s U: big nodes scan more entries."""
        _data, tuner = tuner_setup
        result = tuner.sweep([4.0, 32.0], radius=0.15)
        assert result.points[1].predicted_dists > result.points[0].predicted_dists

    def test_optimum_minimises_predicted_cost(self, tuner_setup):
        _data, tuner = tuner_setup
        result = tuner.sweep([1.0, 4.0, 16.0], radius=0.15)
        best = min(result.points, key=lambda p: p.predicted_total_ms)
        assert result.optimal_node_size_kb == best.node_size_kb

    def test_actual_measurements_recorded(self, tuner_setup):
        data, tuner = tuner_setup
        queries = data.points[:10]
        result = tuner.sweep([2.0, 8.0], radius=0.15, queries=queries)
        for point in result.points:
            assert point.actual_nodes is not None
            assert point.actual_dists is not None
            assert point.actual_total_ms is not None
            # Prediction and measurement must be the same order of magnitude.
            assert point.actual_total_ms == pytest.approx(
                point.predicted_total_ms, rel=1.0
            )

    def test_predicted_curve(self, tuner_setup):
        _data, tuner = tuner_setup
        result = tuner.sweep([1.0, 8.0], radius=0.1)
        curve = result.predicted_curve()
        assert curve.shape == (2,)
        assert (curve > 0).all()

    def test_invalid_inputs(self, tuner_setup):
        _data, tuner = tuner_setup
        with pytest.raises(InvalidParameterError):
            tuner.sweep([], radius=0.1)
        with pytest.raises(InvalidParameterError):
            tuner.sweep([4.0], radius=-0.1)

    def test_too_few_objects_rejected(self, tuner_setup):
        data, _tuner = tuner_setup
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=10
        )
        with pytest.raises(InvalidParameterError):
            NodeSizeTuner(
                data.points[:1], data.metric, data.d_plus, 20, hist
            )
