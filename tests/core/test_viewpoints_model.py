"""Tests for the query-sensitive (multi-viewpoint) cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NodeBasedCostModel,
    QuerySensitiveCostModel,
    estimate_distance_histogram,
    fit_viewpoints,
)
from repro.datasets import clustered_dataset, uniform_dataset
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.metrics import LInf
from repro.mtree import (
    bulk_load,
    collect_node_records,
    collect_node_stats,
    vector_layout,
)


@pytest.fixture(scope="module")
def bimodal():
    """A deliberately non-homogeneous space: two scales, two densities."""
    rng = np.random.default_rng(4)
    tight = np.clip(rng.normal(0.12, 0.02, size=(800, 4)), 0, 1)
    spread = np.clip(rng.normal(0.7, 0.15, size=(800, 4)), 0, 1)
    points = np.vstack([tight, spread])
    metric = LInf()
    tree = bulk_load(points, metric, vector_layout(4), seed=5)
    return points, tight, spread, metric, tree


class TestFitViewpoints:
    def test_basic_fit(self, bimodal):
        points, _tight, _spread, metric, _tree = bimodal
        vs = fit_viewpoints(points, metric, 1.0, n_viewpoints=6)
        assert vs.size == 6
        assert vs.bandwidth > 0
        assert len(vs.rdds) == 6

    def test_farthest_point_covers_both_modes(self, bimodal):
        points, tight, spread, metric, _tree = bimodal
        vs = fit_viewpoints(
            points, metric, 1.0, n_viewpoints=4,
            rng=np.random.default_rng(0),
        )
        # At least one viewpoint near each cluster centre.
        viewpoint_arr = np.asarray(vs.viewpoints)
        near_tight = (np.abs(viewpoint_arr - 0.12).max(axis=1) < 0.3).any()
        near_spread = (np.abs(viewpoint_arr - 0.7).max(axis=1) < 0.45).any()
        assert near_tight and near_spread

    def test_caps_at_population(self):
        data = uniform_dataset(10, 2, seed=1)
        vs = fit_viewpoints(data.points, data.metric, 1.0, n_viewpoints=50)
        assert vs.size <= 10

    def test_validation(self, bimodal):
        points, _t, _s, metric, _tree = bimodal
        with pytest.raises(EmptyDatasetError):
            fit_viewpoints(points[:1], metric, 1.0)
        with pytest.raises(InvalidParameterError):
            fit_viewpoints(points, metric, 1.0, n_viewpoints=0)
        with pytest.raises(InvalidParameterError):
            fit_viewpoints(points, metric, 1.0, n_targets=1)


class TestQuerySensitiveModel:
    @pytest.fixture(scope="class")
    def model(self, bimodal):
        points, _t, _s, metric, tree = bimodal
        vs = fit_viewpoints(
            points, metric, 1.0, n_viewpoints=16,
            rng=np.random.default_rng(6),
        )
        records = collect_node_records(tree, 1.0)
        return QuerySensitiveCostModel(vs, metric, len(points), records)

    def test_overhead_reported(self, model):
        assert model.overhead_dists == 16

    def test_predictions_vary_with_query(self, model, bimodal):
        _points, tight, spread, _metric, _tree = bimodal
        tight_estimate = model.range_costs(tight[0], 0.1).dists
        spread_estimate = model.range_costs(spread[0], 0.1).dists
        assert tight_estimate != pytest.approx(spread_estimate, rel=0.01)

    def test_beats_global_model_on_nonhomogeneous_space(self, model, bimodal):
        points, tight, spread, metric, tree = bimodal
        hist = estimate_distance_histogram(points, metric, 1.0, n_bins=100)
        global_model = NodeBasedCostModel(
            hist, collect_node_stats(tree, 1.0), len(points)
        )
        queries = list(tight[:15]) + list(spread[:15])
        global_errors, position_errors = [], []
        for query in queries:
            actual = tree.range_query(query, 0.1).stats.dists_computed
            global_errors.append(
                abs(float(global_model.range_dists(0.1)) - actual) / actual
            )
            position_errors.append(
                abs(model.range_costs(query, 0.1).dists - actual) / actual
            )
        assert np.mean(position_errors) < np.mean(global_errors)

    def test_blend_histogram_valid(self, model, bimodal):
        _points, tight, _spread, _metric, _tree = bimodal
        hist = model.blend_histogram(tight[0])
        xs = np.linspace(0, 1, 21)
        values = np.asarray(hist.cdf(xs))
        assert (np.diff(values) >= -1e-12).all()
        assert values[-1] == pytest.approx(1.0)

    def test_blend_estimator_also_runs(self, model, bimodal):
        _points, tight, _s, _m, _tree = bimodal
        estimate = model.range_costs_via_blend(tight[0], 0.1)
        assert estimate.nodes > 0
        assert estimate.dists > 0

    def test_costs_bounded_by_tree(self, model, bimodal):
        points, tight, _s, _m, tree = bimodal
        estimate = model.range_costs(tight[0], 1.0)
        assert estimate.nodes <= tree.n_nodes() + 1e-9
        assert estimate.objs <= len(points) + 1e-9

    def test_negative_radius_rejected(self, model, bimodal):
        _points, tight, _s, _m, _tree = bimodal
        with pytest.raises(InvalidParameterError):
            model.range_costs(tight[0], -0.1)

    def test_validation(self, bimodal):
        points, _t, _s, metric, tree = bimodal
        vs = fit_viewpoints(points, metric, 1.0, n_viewpoints=2)
        with pytest.raises(InvalidParameterError):
            QuerySensitiveCostModel(vs, metric, len(points), [])
        with pytest.raises(InvalidParameterError):
            QuerySensitiveCostModel(
                vs, metric, 0, collect_node_records(tree, 1.0)
            )

    def test_converges_with_more_viewpoints(self, bimodal):
        """More viewpoints pin the triangle intervals tighter; per-query
        error should not increase."""
        points, tight, spread, metric, tree = bimodal
        records = collect_node_records(tree, 1.0)
        queries = list(tight[:8]) + list(spread[:8])
        actuals = [
            tree.range_query(q, 0.1).stats.dists_computed for q in queries
        ]
        errors = {}
        for m in (2, 8, 32):
            vs = fit_viewpoints(
                points, metric, 1.0, n_viewpoints=m,
                rng=np.random.default_rng(7),
            )
            model = QuerySensitiveCostModel(vs, metric, len(points), records)
            errors[m] = np.mean(
                [
                    abs(model.range_costs(q, 0.1).dists - a) / a
                    for q, a in zip(queries, actuals)
                ]
            )
        assert errors[32] <= errors[2] + 0.02
