"""Tests for the vp-tree cost model (Eqs. 19-23)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    VPTreeCostModel,
    vp_root_children_accessed,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture
def uniform_hist():
    return DistanceHistogram.uniform(100, 1.0)


class TestRootChildren:
    def test_eq21_manual(self, uniform_hist):
        """Uniform F, m = 2, r_Q = 0.1: mu_1 = 0.5.
        child 1: F(0.5 + 0.1) - F(0 - 0.1) = 0.6
        child 2: F(1 + 0.1) - F(0.5 - 0.1) = 1 - 0.4 = 0.6
        total = 1.2.
        """
        value = vp_root_children_accessed(uniform_hist, 2, 0.1)
        assert value == pytest.approx(1.2, abs=1e-6)

    def test_zero_radius_covers_exactly_one_child(self, uniform_hist):
        """With r_Q = 0 the query distance falls in exactly one shell."""
        for m in (2, 3, 5):
            value = vp_root_children_accessed(uniform_hist, m, 0.0)
            assert value == pytest.approx(1.0, abs=1e-6)

    def test_large_radius_covers_all_children(self, uniform_hist):
        for m in (2, 4):
            value = vp_root_children_accessed(uniform_hist, m, 1.0)
            assert value == pytest.approx(m, abs=1e-6)

    def test_monotone_in_radius(self, uniform_hist):
        values = [
            vp_root_children_accessed(uniform_hist, 3, r)
            for r in (0.0, 0.05, 0.1, 0.3, 0.6)
        ]
        assert values == sorted(values)

    def test_invalid_params(self, uniform_hist):
        with pytest.raises(InvalidParameterError):
            vp_root_children_accessed(uniform_hist, 1, 0.1)
        with pytest.raises(InvalidParameterError):
            vp_root_children_accessed(uniform_hist, 2, -0.1)


class TestCostModel:
    def test_single_object(self, uniform_hist):
        model = VPTreeCostModel(uniform_hist, 1, arity=2)
        assert model.range_dists(0.1) == 1.0

    def test_bounded_by_n(self, uniform_hist):
        n = 200
        model = VPTreeCostModel(uniform_hist, n, arity=3)
        for r in (0.0, 0.1, 0.5, 1.0):
            value = model.range_dists(r)
            assert 1.0 <= value <= n + 1e-6

    def test_full_radius_visits_everything(self, uniform_hist):
        n = 63
        model = VPTreeCostModel(uniform_hist, n, arity=2)
        assert model.range_dists(1.0) == pytest.approx(n, rel=1e-6)

    def test_monotone_in_radius(self, uniform_hist):
        model = VPTreeCostModel(uniform_hist, 100, arity=3)
        curve = model.range_dists_curve(np.linspace(0, 1, 8))
        assert (np.diff(curve) >= -1e-9).all()

    def test_memoization_does_not_change_result(self, uniform_hist):
        with_memo = VPTreeCostModel(uniform_hist, 80, arity=3, memoize=True)
        without = VPTreeCostModel(uniform_hist, 80, arity=3, memoize=False)
        assert with_memo.range_dists(0.15) == pytest.approx(
            without.range_dists(0.15)
        )

    def test_higher_arity_fewer_levels(self, uniform_hist):
        """Small radius: a higher-arity tree descends fewer nodes."""
        small = VPTreeCostModel(uniform_hist, 255, arity=2)
        large = VPTreeCostModel(uniform_hist, 255, arity=8)
        assert large.range_dists(0.01) <= small.range_dists(0.01)

    def test_invalid_params(self, uniform_hist):
        with pytest.raises(InvalidParameterError):
            VPTreeCostModel(uniform_hist, 0, arity=2)
        with pytest.raises(InvalidParameterError):
            VPTreeCostModel(uniform_hist, 10, arity=1)
        model = VPTreeCostModel(uniform_hist, 10, arity=2)
        with pytest.raises(InvalidParameterError):
            model.range_dists(-0.5)

    def test_nn_dists_monotone_in_k(self, uniform_hist):
        model = VPTreeCostModel(uniform_hist, 200, arity=3)
        values = [model.nn_dists(k) for k in (1, 5, 20)]
        assert values == sorted(values)

    def test_nn_dists_bounded(self, uniform_hist):
        model = VPTreeCostModel(uniform_hist, 100, arity=2)
        value = model.nn_dists(1)
        assert 1.0 <= value <= 100.0

    def test_nn_dists_tracks_actual(self):
        """End-to-end: the footnote-3 NN extension lands within a band of
        measured vp-tree k-NN costs on uniform data."""
        from repro.core import estimate_distance_histogram
        from repro.datasets import uniform_dataset
        from repro.vptree import VPTree
        from repro.workloads import run_vptree_knn_workload, sample_workload

        data = uniform_dataset(1200, 6, seed=5)
        tree = VPTree.build(list(data.points), data.metric, arity=3, seed=6)
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=100
        )
        model = VPTreeCostModel(hist, data.size, arity=3)
        workload = sample_workload(data, 30, seed=7)
        for k in (1, 10):
            measured = run_vptree_knn_workload(tree, workload, k)
            predicted = model.nn_dists(k)
            assert 0.4 * measured.mean_dists < predicted < 2.5 * measured.mean_dists

    def test_nn_dists_validation(self, uniform_hist):
        model = VPTreeCostModel(uniform_hist, 50, arity=2)
        with pytest.raises(InvalidParameterError):
            model.nn_dists(0)
        with pytest.raises(InvalidParameterError):
            model.nn_dists(51)
        with pytest.raises(InvalidParameterError):
            model.nn_dists(1, quantile_points=0)

    def test_zero_radius_cost_is_logarithmic_path(self, uniform_hist):
        """At r = 0 the expected accesses follow a single root-to-leaf path:
        about log_m(n) nodes."""
        n, m = 10_000, 4
        model = VPTreeCostModel(uniform_hist, n, arity=m)
        value = model.range_dists(0.0)
        expected_depth = np.log(n) / np.log(m)
        assert value == pytest.approx(expected_depth, rel=0.5)
