"""Tests for the fractal dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_distance_exponent, estimate_distance_histogram
from repro.datasets import (
    CANTOR_DIMENSION,
    SIERPINSKI_DIMENSION,
    cantor_dust_dataset,
    sierpinski_dataset,
)
from repro.exceptions import InvalidParameterError


class TestSierpinski:
    def test_shape_and_bounds(self):
        data = sierpinski_dataset(500, seed=1)
        assert data.points.shape == (500, 2)
        assert (data.points >= -1e-9).all()
        assert (data.points[:, 0] <= 1 + 1e-9).all()

    def test_points_on_attractor(self):
        """Chaos-game points avoid the central removed triangle."""
        data = sierpinski_dataset(2000, seed=2)
        # The open middle triangle has its centroid at (0.5, sqrt(3)/6);
        # no attractor point lies near it.
        centroid = np.array([0.5, np.sqrt(3) / 6])
        distances = np.linalg.norm(data.points - centroid, axis=1)
        assert distances.min() > 0.02

    def test_distance_exponent_near_hausdorff_dimension(self):
        data = sierpinski_dataset(5000, seed=3)
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=200
        )
        exponent = estimate_distance_exponent(hist).exponent
        assert exponent == pytest.approx(SIERPINSKI_DIMENSION, abs=0.25)

    def test_determinism(self):
        first = sierpinski_dataset(100, seed=4)
        second = sierpinski_dataset(100, seed=4)
        np.testing.assert_array_equal(first.points, second.points)

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            sierpinski_dataset(0)


class TestCantorDust:
    def test_shape_and_bounds(self):
        data = cantor_dust_dataset(500, seed=5)
        assert data.points.shape == (500, 2)
        assert (data.points >= 0).all() and (data.points <= 1).all()

    def test_middle_thirds_removed(self):
        """No coordinate falls in the (1/3, 2/3) gap."""
        data = cantor_dust_dataset(2000, seed=6)
        flat = data.points.ravel()
        in_gap = ((flat > 1 / 3 + 1e-9) & (flat < 2 / 3 - 1e-9)).sum()
        assert in_gap == 0

    def test_distance_exponent_near_theory(self):
        data = cantor_dust_dataset(5000, seed=7)
        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=200
        )
        exponent = estimate_distance_exponent(hist).exponent
        assert exponent == pytest.approx(2 * CANTOR_DIMENSION, abs=0.3)

    def test_query_sampling(self):
        data = cantor_dust_dataset(100, seed=8)
        queries = data.sample_queries(10, np.random.default_rng(9))
        assert np.asarray(queries).shape == (10, 2)

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            cantor_dust_dataset(-1)
