"""Tests for Example 1: binary hypercube + midpoint, exact HV formulas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    binary_hypercube_dataset,
    discrepancy_vertex_vs_midpoint,
    g_delta_binary_hypercube,
    hv_binary_hypercube_with_midpoint,
)
from repro.exceptions import InvalidParameterError


class TestDataset:
    def test_vertex_count(self):
        data = binary_hypercube_dataset(4)
        assert data.points.shape == (17, 4)  # 2^4 + midpoint

    def test_without_midpoint(self):
        data = binary_hypercube_dataset(3, include_midpoint=False)
        assert data.points.shape == (8, 3)
        assert set(np.unique(data.points)) == {0.0, 1.0}

    def test_all_vertices_distinct(self):
        data = binary_hypercube_dataset(5, include_midpoint=False)
        assert len({tuple(p) for p in data.points}) == 32

    def test_midpoint_present(self):
        data = binary_hypercube_dataset(3)
        assert any((p == 0.5).all() for p in data.points)

    def test_distances(self):
        data = binary_hypercube_dataset(6)
        metric = data.metric
        vertex_a = data.points[0]
        vertex_b = data.points[1]
        midpoint = data.points[-1]
        assert metric.distance(vertex_a, vertex_b) == 1.0
        assert metric.distance(vertex_a, midpoint) == 0.5

    def test_dimension_limit(self):
        with pytest.raises(InvalidParameterError):
            binary_hypercube_dataset(21)

    def test_sampler(self):
        data = binary_hypercube_dataset(4)
        sample = np.asarray(data.sample_queries(30, np.random.default_rng(0)))
        assert sample.shape == (30, 4)


class TestExactFormulas:
    def test_paper_value_d10(self):
        """The paper: for D = 10, HV ~ 1 - 0.97e-3 ~ 0.999."""
        hv = hv_binary_hypercube_with_midpoint(10)
        assert hv == pytest.approx(1 - 0.97e-3, abs=2e-5)

    def test_hv_tends_to_one(self):
        values = [hv_binary_hypercube_with_midpoint(d) for d in (2, 5, 10, 20)]
        assert values == sorted(values)
        assert values[-1] > 0.999999

    def test_discrepancy_formula(self):
        # delta = 1/2 - 1/(2^D + 1)
        assert discrepancy_vertex_vs_midpoint(2) == pytest.approx(0.5 - 1 / 5)
        assert discrepancy_vertex_vs_midpoint(10) == pytest.approx(
            0.5 - 1 / 1025
        )

    def test_g_delta_step_shape(self):
        d = 4
        threshold = discrepancy_vertex_vs_midpoint(d)
        low = g_delta_binary_hypercube(d, threshold / 2)
        high = g_delta_binary_hypercube(d, threshold)
        two_d = 2.0**d
        assert low == pytest.approx((two_d**2 + 1) / (two_d + 1) ** 2)
        assert high == 1.0

    def test_g_delta_integrates_to_hv(self):
        """HV = integral of G_Delta over [0, 1] (Def. 2)."""
        d = 6
        ys = np.linspace(0, 1, 20001)
        g = np.array([g_delta_binary_hypercube(d, y) for y in ys])
        integral = np.trapezoid(g, ys)
        assert integral == pytest.approx(
            hv_binary_hypercube_with_midpoint(d), abs=1e-4
        )

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            hv_binary_hypercube_with_midpoint(0)
        with pytest.raises(InvalidParameterError):
            g_delta_binary_hypercube(4, 1.5)


class TestEmpiricalMatchesExact:
    def test_estimated_hv_close_to_exact(self):
        """The HV estimator on the materialised dataset should land near
        the closed form (full-population viewpoints and targets)."""
        from repro.core import estimate_hv

        data = binary_hypercube_dataset(7)
        report = estimate_hv(
            data.objects(),
            data.metric,
            data.d_plus,
            n_viewpoints=data.size,
            n_targets=data.size,
            n_bins=200,
            rng=np.random.default_rng(0),
        )
        exact = hv_binary_hypercube_with_midpoint(7)
        assert report.hv == pytest.approx(exact, abs=0.02)
