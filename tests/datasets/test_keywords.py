"""Tests for the synthetic keyword vocabulary generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PAPER_TEXT_DATASETS,
    keyword_dataset,
    paper_text_dataset,
)
from repro.datasets.keywords import MAX_WORD_LENGTH, MIN_WORD_LENGTH
from repro.exceptions import InvalidParameterError


class TestKeywordDataset:
    def test_size_and_distinctness(self):
        data = keyword_dataset(500, seed=1)
        assert data.size == 500
        assert len(set(data.words)) == 500

    def test_word_lengths_within_bounds(self):
        data = keyword_dataset(300, seed=2)
        for word in data.words:
            assert MIN_WORD_LENGTH <= len(word) <= MAX_WORD_LENGTH

    def test_length_profile(self):
        data = keyword_dataset(1000, seed=3, mean_length=9.0, std_length=2.5)
        lengths = np.array([len(w) for w in data.words])
        assert 8.0 <= lengths.mean() <= 10.0
        assert lengths.std() <= 3.5

    def test_alphabet_is_lowercase_letters(self):
        data = keyword_dataset(200, seed=4)
        for word in data.words:
            assert word.isalpha()
            assert word == word.lower()

    def test_determinism(self):
        first = keyword_dataset(100, seed=11)
        second = keyword_dataset(100, seed=11)
        assert first.words == second.words

    def test_different_seeds_differ(self):
        assert keyword_dataset(100, seed=1).words != keyword_dataset(
            100, seed=2
        ).words

    def test_space_metric_and_bound(self):
        data = keyword_dataset(50, seed=5)
        assert data.metric.name == "edit"
        assert data.d_plus == float(MAX_WORD_LENGTH)
        # Edit distance between any two stored words never exceeds d_plus.
        for a in data.words[:10]:
            for b in data.words[:10]:
                assert data.metric.distance(a, b) <= data.d_plus

    def test_query_sampling(self):
        data = keyword_dataset(100, seed=6)
        queries = data.sample_queries(20, np.random.default_rng(7))
        assert len(queries) == 20
        assert all(isinstance(q, str) for q in queries)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"size": 10, "mean_length": 0.5},
            {"size": 10, "mean_length": 99},
            {"size": 10, "std_length": 0.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(InvalidParameterError):
            keyword_dataset(**kwargs)


class TestPaperPresets:
    def test_all_keys_present(self):
        assert set(PAPER_TEXT_DATASETS) == {"D", "DC", "GL", "OF", "PS"}

    def test_table1_sizes(self):
        expected = {
            "D": 17_936,
            "DC": 12_701,
            "GL": 11_973,
            "OF": 18_719,
            "PS": 19_846,
        }
        for key, size in expected.items():
            assert PAPER_TEXT_DATASETS[key][1] == size

    def test_scaling(self):
        data = paper_text_dataset("DC", scale=0.01)
        assert data.size == round(12_701 * 0.01)

    def test_unknown_key(self):
        with pytest.raises(InvalidParameterError):
            paper_text_dataset("XX")

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            paper_text_dataset("D", scale=0.0)
        with pytest.raises(InvalidParameterError):
            paper_text_dataset("D", scale=1.5)

    def test_presets_are_distinct(self):
        first = paper_text_dataset("D", scale=0.005)
        second = paper_text_dataset("PS", scale=0.005)
        assert first.words != second.words

    def test_edit_distance_histogram_spans_paper_range(self):
        """Distances should occupy roughly the paper's 25-bin range with a
        unimodal interior mode."""
        from repro.core import estimate_distance_histogram

        data = paper_text_dataset("GL", scale=0.02)
        hist = estimate_distance_histogram(
            data.words, data.metric, data.d_plus, n_bins=25
        )
        probs = hist.bin_probs
        mode = int(np.argmax(probs))
        assert 5 <= mode <= 14  # interior mode around the mean word length
        assert hist.mean() > 5.0
