"""Tests for the Table 1 dataset registry."""

from __future__ import annotations

import pytest

from repro.datasets import TABLE1_SPECS, list_datasets, make_dataset
from repro.exceptions import InvalidParameterError


class TestRegistry:
    def test_contains_all_table1_families(self):
        assert {"clustered", "uniform", "D", "DC", "GL", "OF", "PS"} <= set(
            TABLE1_SPECS
        )

    def test_make_vector_dataset(self):
        data = make_dataset("clustered", size=100, dim=4, seed=1)
        assert data.size == 100
        assert data.dim == 4

    def test_make_uniform_dataset(self):
        data = make_dataset("uniform", size=64, dim=3, seed=2)
        assert data.points.shape == (64, 3)

    def test_make_text_dataset(self):
        data = make_dataset("DC", scale=0.005)
        assert data.size == round(12_701 * 0.005)

    def test_unknown_key_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_dataset("nope")

    def test_list_datasets_sorted_and_typed(self):
        specs = list_datasets()
        keys = [spec.key for spec in specs]
        assert keys == sorted(keys)
        kinds = {spec.kind for spec in specs}
        assert kinds == {"vector", "text"}

    def test_spec_build_equivalent_to_make(self):
        spec = TABLE1_SPECS["uniform"]
        built = spec.build(size=10, dim=2, seed=3)
        made = make_dataset("uniform", size=10, dim=2, seed=3)
        import numpy as np

        np.testing.assert_array_equal(built.points, made.points)
