"""Tests for the synthetic vector dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_dataset, uniform_dataset
from repro.exceptions import InvalidParameterError
from repro.metrics import L2


class TestUniform:
    def test_shape_and_bounds(self):
        data = uniform_dataset(200, 7, seed=1)
        assert data.points.shape == (200, 7)
        assert data.size == 200
        assert data.dim == 7
        assert (data.points >= 0).all() and (data.points <= 1).all()

    def test_default_metric_and_bound(self):
        data = uniform_dataset(10, 5)
        assert data.metric.name == "Linf"
        assert data.d_plus == 1.0

    def test_custom_metric_bound(self):
        data = uniform_dataset(10, 4, metric=L2())
        assert data.d_plus == pytest.approx(2.0)

    def test_determinism(self):
        first = uniform_dataset(50, 3, seed=9)
        second = uniform_dataset(50, 3, seed=9)
        np.testing.assert_array_equal(first.points, second.points)

    def test_different_seeds_differ(self):
        first = uniform_dataset(50, 3, seed=1)
        second = uniform_dataset(50, 3, seed=2)
        assert not np.array_equal(first.points, second.points)

    def test_query_sampling_from_same_space(self):
        data = uniform_dataset(50, 3, seed=1)
        queries = data.sample_queries(20, np.random.default_rng(4))
        assert queries.shape == (20, 3)
        assert (queries >= 0).all() and (queries <= 1).all()

    @pytest.mark.parametrize("size,dim", [(0, 3), (-1, 3), (10, 0)])
    def test_invalid_params(self, size, dim):
        with pytest.raises(InvalidParameterError):
            uniform_dataset(size, dim)


class TestClustered:
    def test_shape_and_bounds(self):
        data = clustered_dataset(500, 6, seed=2)
        assert data.points.shape == (500, 6)
        assert (data.points >= 0).all() and (data.points <= 1).all()

    def test_is_actually_clustered(self):
        """Points should concentrate: mean nearest-centre spread ~ sigma."""
        data = clustered_dataset(1000, 5, n_clusters=10, sigma=0.1, seed=3)
        # The distance distribution of a clustered set has more mass at
        # small distances than a uniform one.
        from repro.core import estimate_distance_histogram

        clustered_hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=20
        )
        uniform_points = np.random.default_rng(3).random((1000, 5))
        uniform_hist = estimate_distance_histogram(
            uniform_points, data.metric, data.d_plus, n_bins=20
        )
        small = clustered_hist.cdf(0.25)
        assert small > uniform_hist.cdf(0.25) * 1.2

    def test_cluster_count_one(self):
        data = clustered_dataset(100, 3, n_clusters=1, sigma=0.05, seed=1)
        spread = data.points.std(axis=0)
        assert (spread < 0.15).all()

    def test_determinism(self):
        first = clustered_dataset(50, 4, seed=5)
        second = clustered_dataset(50, 4, seed=5)
        np.testing.assert_array_equal(first.points, second.points)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"sigma": -0.1},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(InvalidParameterError):
            clustered_dataset(100, 3, **kwargs)

    def test_queries_follow_data_distribution(self):
        data = clustered_dataset(400, 4, seed=6)
        queries = data.sample_queries(400, np.random.default_rng(7))
        # Queries should concentrate near the same cluster centres: the
        # mean min-distance from query to data should be much smaller than
        # for uniform queries.
        from repro.metrics import LInf

        metric = LInf()
        def mean_nn(qs):
            return np.mean(
                [np.min(metric.one_to_many(q, data.points)) for q in qs[:50]]
            )

        uniform_queries = np.random.default_rng(8).random((50, 4))
        assert mean_nn(queries) < mean_nn(uniform_queries)


class TestVectorDatasetValidation:
    def test_rejects_non_matrix(self):
        from repro.datasets.vectors import VectorDataset
        from repro.metrics import BRMSpace, LInf

        space = BRMSpace(metric=LInf(), d_plus=1.0)
        with pytest.raises(InvalidParameterError):
            VectorDataset(name="bad", points=np.zeros(5), space=space)
