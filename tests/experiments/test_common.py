"""Tests for the shared experiment plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_dataset, paper_text_dataset
from repro.experiments import (
    PAPER_MIN_UTILIZATION,
    PAPER_NODE_SIZE_BYTES,
    TEXT_HISTOGRAM_BINS,
    VECTOR_HISTOGRAM_BINS,
    build_text_setup,
    build_vector_setup,
    paper_range_radius,
)


class TestConstants:
    def test_paper_values(self):
        assert PAPER_NODE_SIZE_BYTES == 4096
        assert PAPER_MIN_UTILIZATION == 0.3
        assert VECTOR_HISTOGRAM_BINS == 100
        assert TEXT_HISTOGRAM_BINS == 25


class TestVectorSetup:
    @pytest.fixture(scope="class")
    def setup(self):
        data = clustered_dataset(800, 12, seed=1)
        return data, build_vector_setup(data, n_queries=20)

    def test_components_consistent(self, setup):
        data, built = setup
        assert built.n_objects == data.size
        assert built.d_plus == data.d_plus
        assert built.hist.n_bins == VECTOR_HISTOGRAM_BINS
        assert len(built.workload) == 20
        assert len(built.tree) == data.size

    def test_layout_is_paper_node_size(self, setup):
        _data, built = setup
        assert built.tree.layout.node_size_bytes == PAPER_NODE_SIZE_BYTES
        assert built.tree.layout.object_bytes == 4 * 12

    def test_models_share_statistics_source(self, setup):
        """Node model aggregated per level equals the level model."""
        _data, built = setup
        for radius in (0.1, 0.3):
            node_nodes = float(built.node_model.range_nodes(radius))
            level_nodes = float(built.level_model.range_nodes(radius))
            # Same tree, same histogram: the two views differ only by
            # within-level radius averaging.
            assert node_nodes == pytest.approx(level_nodes, rel=0.2)

    def test_deterministic(self):
        data = clustered_dataset(400, 6, seed=2)
        first = build_vector_setup(data, n_queries=5)
        second = build_vector_setup(data, n_queries=5)
        np.testing.assert_array_equal(
            first.hist.bin_probs, second.hist.bin_probs
        )
        assert first.tree.n_nodes() == second.tree.n_nodes()


class TestTextSetup:
    def test_components(self):
        data = paper_text_dataset("GL", scale=0.01)
        built = build_text_setup(data, n_queries=10)
        assert built.hist.n_bins == TEXT_HISTOGRAM_BINS
        assert built.n_objects == data.size
        assert built.tree.layout.object_bytes == max(
            data.max_word_length(), 1
        )

    def test_integer_histogram_convention(self):
        """F(d) at integer d includes pairs at exactly distance d."""
        data = paper_text_dataset("DC", scale=0.01)
        built = build_text_setup(data, n_queries=5)
        # Probability mass exists at small integer radii (words of equal
        # length differ by a couple of edits reasonably often), and the
        # CDF at the bound is 1.
        assert built.hist.cdf(built.hist.d_plus) == 1.0
        assert built.hist.cdf(5.0) > 0


class TestPaperRadius:
    def test_monotone_in_volume(self):
        radii = [paper_range_radius(10, v) for v in (0.001, 0.01, 0.1)]
        assert radii == sorted(radii)

    def test_linf_ball_volume(self):
        """Under L_inf a radius-r ball is a cube of side 2r: volume checks."""
        for dim in (2, 5, 10):
            for volume in (0.01, 0.1):
                radius = paper_range_radius(dim, volume)
                assert (2 * radius) ** dim == pytest.approx(volume)
