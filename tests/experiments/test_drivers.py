"""Smoke + sanity tests for every experiment driver at tiny scale.

These validate that each driver produces the paper's row/series structure
and that estimates land in the right ballpark; the full-scale shape checks
live in the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    Figure1Config,
    Figure2Config,
    Figure3Config,
    Figure4Config,
    Figure5Config,
    Table1Config,
    VPValidationConfig,
    paper_range_radius,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    render_vptree_validation,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
    run_vptree_validation,
)


class TestPaperRadius:
    def test_values(self):
        assert paper_range_radius(5) == pytest.approx(0.01 ** (1 / 5) / 2)
        assert paper_range_radius(1, 0.04) == pytest.approx(0.02)

    def test_grows_with_dim(self):
        radii = [paper_range_radius(d) for d in (2, 5, 20, 50)]
        assert radii == sorted(radii)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(
            Table1Config(
                vector_size=600,
                vector_dims=(5,),
                text_scale=0.01,
                text_keys=("DC",),
                hypercube_dims=(6,),
                n_viewpoints=12,
                n_targets=300,
            )
        )

    def test_row_families(self, rows):
        names = [row.name for row in rows]
        assert "clustered-D5" in names
        assert "uniform-D5" in names
        assert "DC" in names
        assert "hypercube-D6" in names

    def test_hv_in_range(self, rows):
        for row in rows:
            assert 0.0 <= row.hv <= 1.0

    def test_hv_is_high(self, rows):
        """All Table 1 families are homogeneous (HV well above 0.8)."""
        for row in rows:
            assert row.hv > 0.8, row

    def test_hypercube_matches_analytic(self, rows):
        cube = next(r for r in rows if r.name == "hypercube-D6")
        assert cube.analytic_hv is not None
        assert cube.hv == pytest.approx(cube.analytic_hv, abs=0.05)

    def test_render(self, rows):
        text = render_table1(rows)
        assert "HV" in text
        assert "clustered-D5" in text


class TestFigure1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure1(
            Figure1Config(size=1200, dims=(5, 10), n_queries=40)
        )

    def test_row_per_dim(self, rows):
        assert [row.dim for row in rows] == [5, 10]

    def test_models_near_actual(self, rows):
        for row in rows:
            assert row.nmcm_dists_error < 0.5
            assert row.lmcm_dists_error < 0.5
            assert row.nmcm_nodes_error < 0.5

    def test_selectivity_accurate(self, rows):
        """Eq. 8 is exact up to sampling: errors should be small."""
        for row in rows:
            assert row.objs_error < 0.25

    def test_render(self, rows):
        text = render_figure1(rows)
        assert "Figure 1(a)" in text
        assert "Figure 1(b)" in text
        assert "Figure 1(c)" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure2(Figure2Config(size=1200, dims=(5,), n_queries=25))

    def test_structure(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row.actual_dists > 0
        assert row.integral_dists > 0
        assert row.expected_radius_dists > 0
        assert row.min_selectivity_dists > 0

    def test_nn_distance_estimate_close(self, rows):
        row = rows[0]
        assert row.expected_nn_distance == pytest.approx(
            row.actual_nn_distance, rel=0.5
        )

    def test_render(self, rows):
        text = render_figure2(rows)
        assert "Figure 2(c)" in text
        assert "E[nn]" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure3(
            Figure3Config(text_scale=0.015, text_keys=("GL", "OF"), n_queries=20)
        )

    def test_structure(self, rows):
        assert [row.dataset for row in rows] == ["GL", "OF"]

    def test_estimates_close(self, rows):
        for row in rows:
            assert row.nmcm_dists == pytest.approx(row.actual_dists, rel=0.4)

    def test_render(self, rows):
        assert "Figure 3(a)" in render_figure3(rows)


class TestFigure4:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure4(
            Figure4Config(
                size=1200, dim=10, query_volumes=(0.001, 0.05), n_queries=30
            )
        )

    def test_costs_grow_with_volume(self, rows):
        assert rows[0].actual_dists <= rows[1].actual_dists
        assert rows[0].nmcm_dists <= rows[1].nmcm_dists

    def test_render(self, rows):
        assert "Figure 4(b)" in render_figure4(rows)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(
            Figure5Config(
                size=1500, node_sizes_kb=(1.0, 4.0, 16.0), n_queries=10
            )
        )

    def test_io_monotone_decreasing(self, result):
        nodes = [p.predicted_nodes for p in result.points]
        assert nodes == sorted(nodes, reverse=True)

    def test_optimum_is_one_of_the_sizes(self, result):
        assert result.optimal_node_size_kb in (1.0, 4.0, 16.0)

    def test_render(self, result):
        text = render_figure5(result)
        assert "Figure 5(a)" in text
        assert "optimum" in text


class TestVPValidation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_vptree_validation(
            VPValidationConfig(
                size=800, dim=6, radii=(0.1, 0.2), n_queries=25,
                datasets=("uniform",),
            )
        )

    def test_structure(self, rows):
        assert len(rows) == 2
        assert all(row.dataset == "uniform" for row in rows)

    def test_model_in_ballpark(self, rows):
        for row in rows:
            assert row.error < 0.6

    def test_monotone_in_radius(self, rows):
        assert rows[0].actual_dists <= rows[1].actual_dists
        assert rows[0].model_dists <= rows[1].model_dists

    def test_render(self, rows):
        assert "vp-tree" in render_vptree_validation(rows)
