"""Tests for the report rendering utilities."""

from __future__ import annotations

import pytest

from repro.experiments import format_percent, format_table, relative_error


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_zero_actual(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")

    def test_negative_actual(self):
        assert relative_error(-90, -100) == pytest.approx(0.1)


class TestFormatPercent:
    def test_values(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(float("inf")) == "inf"


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [
            {"a": 1, "b": "x"},
            {"a": 22, "b": "yy"},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title, header, rule, two rows

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_float_formatting(self):
        rows = [{"v": 0.123456}, {"v": 12.3456}, {"v": 12345.6}]
        text = format_table(rows)
        assert "0.1235" in text
        assert "12.35" in text
        assert "12,346" in text

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # renders without KeyError
