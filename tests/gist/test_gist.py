"""Tests for the GiST kernel and its two extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.gist import (
    Ball,
    BallRangeQuery,
    BoundingBoxExtension,
    Box,
    BoxRangeQuery,
    GiST,
    MetricBallExtension,
)
from repro.metrics import L2, EditDistance, LInf


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).random((300, 3))


class TestMetricBallGiST:
    @pytest.fixture(scope="class")
    def tree(self, points):
        tree = GiST(MetricBallExtension(L2()), node_capacity=8)
        tree.insert_many(points)
        return tree

    def test_structure(self, tree, points):
        tree.validate()
        assert len(tree) == len(points)
        assert tree.height >= 2

    def test_range_matches_linear_scan(self, tree, points):
        rng = np.random.default_rng(1)
        metric = L2()
        for radius in (0.05, 0.2, 0.5):
            query = rng.random(3)
            found, stats = tree.search(BallRangeQuery(query, radius))
            expected = sorted(
                i
                for i, p in enumerate(points)
                if metric.distance(query, p) <= radius
            )
            assert sorted(oid for oid, _obj in found) == expected
            assert stats.nodes_accessed >= 1

    def test_search_prunes(self, tree, points):
        """A selective query must not touch every node."""
        _found, stats = tree.search(BallRangeQuery(points[0], 0.01))
        total_nodes = 0
        stack = [tree._root]
        while stack:
            node = stack.pop()
            total_nodes += 1
            if not node.is_leaf:
                stack.extend(child for _p, child in node.entries)
        assert stats.nodes_accessed < total_nodes

    def test_strings_domain(self, words):
        tree = GiST(MetricBallExtension(EditDistance()), node_capacity=4)
        tree.insert_many(words)
        tree.validate()
        found, _stats = tree.search(BallRangeQuery("casa", 1.0))
        names = {obj for _oid, obj in found}
        assert {"casa", "cassa", "cosa", "caso"} <= names

    def test_union_covers_members(self):
        metric = LInf()
        extension = MetricBallExtension(metric)
        balls = [
            Ball(np.array([0.1, 0.1]), 0.05),
            Ball(np.array([0.9, 0.9]), 0.02),
        ]
        union = extension.union(balls)
        for ball in balls:
            assert (
                metric.distance(union.center, ball.center) + ball.radius
                <= union.radius + 1e-12
            )

    def test_union_of_nothing_rejected(self):
        with pytest.raises(InvalidParameterError):
            MetricBallExtension(L2()).union([])


class TestBoundingBoxGiST:
    @pytest.fixture(scope="class")
    def tree(self, points):
        tree = GiST(BoundingBoxExtension(), node_capacity=8)
        tree.insert_many(points)
        return tree

    def test_structure(self, tree, points):
        tree.validate()
        assert len(tree) == len(points)

    def test_rectangle_query_matches_scan(self, tree, points):
        rng = np.random.default_rng(2)
        for _ in range(5):
            lo = rng.random(3) * 0.5
            hi = lo + rng.random(3) * 0.5
            query = BoxRangeQuery(Box(tuple(lo), tuple(hi)))
            found, _stats = tree.search(query)
            expected = sorted(
                i
                for i, p in enumerate(points)
                if (p >= lo).all() and (p <= hi).all()
            )
            assert sorted(oid for oid, _obj in found) == expected

    def test_point_query(self, tree, points):
        query = BoxRangeQuery(Box.around_point(points[5]))
        found, _stats = tree.search(query)
        assert 5 in {oid for oid, _obj in found}

    def test_box_validation(self):
        with pytest.raises(InvalidParameterError):
            Box(lo=(1.0, 0.0), hi=(0.0, 1.0))
        with pytest.raises(InvalidParameterError):
            Box(lo=(0.0,), hi=(1.0, 1.0))

    def test_union_area_monotone(self):
        extension = BoundingBoxExtension()
        a = Box((0.0, 0.0), (0.5, 0.5))
        b = Box((0.4, 0.4), (1.0, 1.0))
        union = extension.union([a, b])
        assert union.area() >= max(a.area(), b.area())
        assert extension.penalty(a, b) == pytest.approx(
            union.area() - a.area()
        )


class TestKernelBehaviour:
    def test_empty_tree(self):
        tree = GiST(BoundingBoxExtension())
        found, stats = tree.search(
            BoxRangeQuery(Box((0.0, 0.0), (1.0, 1.0)))
        )
        assert found == []
        assert stats.nodes_accessed == 0
        assert tree.height == 0

    def test_explicit_oid(self):
        tree = GiST(MetricBallExtension(L2()), node_capacity=4)
        assert tree.insert(np.zeros(2), oid=99) == 99
        assert tree.insert(np.ones(2)) == 100

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            GiST(BoundingBoxExtension(), node_capacity=1)
        with pytest.raises(InvalidParameterError):
            GiST(BoundingBoxExtension(), min_fill=0.9)

    def test_same_kernel_two_domains(self, points, words):
        """The paper's point about GiST: one kernel, many indexes."""
        metric_tree = GiST(MetricBallExtension(L2()), node_capacity=6)
        metric_tree.insert_many(points[:50])
        box_tree = GiST(BoundingBoxExtension(), node_capacity=6)
        box_tree.insert_many(points[:50])
        string_tree = GiST(
            MetricBallExtension(EditDistance()), node_capacity=6
        )
        string_tree.insert_many(words)
        for tree in (metric_tree, box_tree, string_tree):
            tree.validate()
