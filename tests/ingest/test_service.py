"""IngestService: acked-exactly-once, kill-at-every-step, snapshot reads."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import (
    InvalidParameterError,
    OverloadError,
    StaleEpochError,
)
from repro.ingest import IngestService
from repro.metrics import L2
from repro.mtree import vector_layout
from repro.reliability import WalFaultInjector, fsck_ingest
from repro.service import AdmissionController, SimulatedCrashError, TokenBucket

LAYOUT = vector_layout(3, node_size_bytes=512)


def _service(directory, **kwargs):
    service = IngestService(directory, L2(), LAYOUT, **kwargs)
    service.recover()
    return service


def _points(n, seed=3):
    return np.random.default_rng(seed).random((n, 3))


def _assert_exactly(view, points, n):
    """The view holds exactly ``points[:n]``, each present exactly once."""
    assert len(view) == n
    view.tree.validate()
    oids = sorted(
        oid for node in view.tree.iter_nodes() if node.is_leaf
        for oid in (entry.oid for entry in node.entries)
    )
    assert oids == list(range(n))
    # Spot-check contents: a zero-radius query around each of a few
    # originals finds its oid.
    for i in range(0, n, max(1, n // 7)):
        hits = view.tree.range_query(points[i], 1e-9).oids()
        assert i in hits


class TestLifecycle:
    def test_append_apply_publish(self, tmp_path):
        points = _points(30)
        service = _service(tmp_path)
        ack = service.append(points[:20])
        assert (ack.first_seq, ack.last_seq) == (1, 20)
        assert ack.durable  # fsync defaults to "always"
        assert service.pending_count() == 20
        before = service.view()
        outcome = service.apply()
        assert outcome.applied == 20
        assert outcome.pending_left == 0
        # The pre-apply view is immutable: publishing never mutates it.
        assert len(before) == 0
        view = service.view()
        assert view.epoch == before.epoch + 1
        _assert_exactly(view, points, 20)
        service.close()

    def test_partial_apply_keeps_order(self, tmp_path):
        points = _points(25)
        service = _service(tmp_path)
        service.append(points)
        outcome = service.apply(max_objects=10)
        assert outcome.applied == 10
        assert outcome.pending_left == 15
        _assert_exactly(service.view(), points, 10)
        service.apply()
        _assert_exactly(service.view(), points, 25)
        service.close()

    def test_stale_epoch_fencing(self, tmp_path):
        points = _points(6)
        service = _service(tmp_path)
        pinned = service.view()
        service.append(points)
        service.apply()
        assert service.current_epoch() == pinned.epoch + 1
        with pytest.raises(StaleEpochError):
            service.require_epoch(pinned.epoch)
        service.require_epoch(service.current_epoch())
        service.close()

    def test_empty_append_rejected(self, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(InvalidParameterError):
            service.append([])
        service.close()

    def test_apply_failures_are_reported_not_fatal(self, tmp_path):
        points = _points(40)
        service = _service(tmp_path)
        # Deep enough that every insert routes through distance
        # computations (a poison object in a lone root leaf is inert).
        service.append(points[:36])
        service.apply()
        extra = _points(3, seed=5)
        service.append([extra[0], "not-a-vector", extra[1], extra[2]])
        outcome = service.apply()
        assert outcome.applied == 3
        assert len(outcome.failures) == 1
        assert outcome.failures[0].index == 1
        # The poison seq still advances the high-water mark.
        assert outcome.seq == 40
        view = service.view()
        assert len(view) == 39
        view.tree.validate()
        service.close()


class TestBackpressure:
    def test_token_bucket_sheds_oversized_batches(self, tmp_path):
        service = _service(
            tmp_path, rate_limit=TokenBucket(rate=1.0, capacity=5.0)
        )
        points = _points(12)
        service.append(points[:5])  # within capacity
        with pytest.raises(OverloadError):
            service.append(points[5:])  # bucket drained
        # Nothing from the rejected batch was logged or applied.
        service.apply()
        assert len(service.view()) == 5
        service.close()

    def test_admission_controller_gates_appends(self, tmp_path):
        service = _service(
            tmp_path,
            admission=AdmissionController(max_concurrent=2, max_queue=4),
        )
        service.append(_points(10))
        service.apply()
        assert len(service.view()) == 10
        service.close()


class TestRecovery:
    def test_crash_before_apply_replays_acked(self, tmp_path):
        points = _points(18)
        service = _service(tmp_path)
        service.append(points)
        service.close()  # crash before apply: acked but never indexed
        survivor = IngestService(tmp_path, L2(), LAYOUT)
        recovery = survivor.recover()
        assert recovery.replayed == 18
        _assert_exactly(survivor.view(), points, 18)
        survivor.close()

    def test_double_recovery_is_idempotent(self, tmp_path):
        points = _points(14)
        service = _service(tmp_path)
        service.append(points)
        service.apply()
        service.checkpoint()
        service.close()
        for _ in range(2):
            survivor = IngestService(tmp_path, L2(), LAYOUT)
            recovery = survivor.recover()
            assert recovery.ok
            _assert_exactly(survivor.view(), points, 14)
            survivor.close()

    def test_duplicate_wal_records_replay_once(self, tmp_path):
        points = _points(12)
        service = _service(tmp_path)
        service.append(points)
        service.close()
        WalFaultInjector(tmp_path / "wal").duplicate_record(record=-1)
        WalFaultInjector(tmp_path / "wal").duplicate_record(record=3)
        survivor = IngestService(tmp_path, L2(), LAYOUT)
        recovery = survivor.recover()
        assert recovery.duplicates_skipped >= 2
        _assert_exactly(survivor.view(), points, 12)
        survivor.close()

    def test_torn_tail_drops_only_unacked_suffix(self, tmp_path):
        points = _points(10)
        service = _service(tmp_path)
        service.append(points)
        service.close()
        # Crash mid-append of record 10: the torn frame was never acked.
        WalFaultInjector(tmp_path / "wal").tear_tail(drop_bytes=7)
        survivor = IngestService(tmp_path, L2(), LAYOUT)
        recovery = survivor.recover()
        assert recovery.torn_tail
        _assert_exactly(survivor.view(), points, 9)
        survivor.close()

    def test_bit_flip_quarantined_and_fsck_sees_it(self, tmp_path):
        points = _points(16)
        service = _service(tmp_path)
        service.append(points)
        service.apply()
        service.checkpoint()
        service.append(_points(6, seed=9))
        service.close()
        WalFaultInjector(tmp_path / "wal").flip_bit(record=-2, bit=5)
        report = fsck_ingest(tmp_path)
        assert not report.ok
        assert any(f.kind == "wal_damage" for f in report.faults)
        survivor = IngestService(tmp_path, L2(), LAYOUT)
        recovery = survivor.recover()
        assert recovery.debris
        # Everything checkpointed plus the pre-flip suffix survives.
        assert len(survivor.view()) >= 16
        survivor.view().tree.validate()
        survivor.close()

    def test_kill_at_every_checkpoint_step(self, tmp_path):
        points = _points(24)
        probe = IngestService(tmp_path / "probe", L2(), LAYOUT)
        steps = probe.total_checkpoint_steps()
        probe.close()
        assert steps >= 5
        for step in range(steps):
            directory = tmp_path / f"kill-{step}"
            service = _service(directory)
            service.append(points[:16])
            service.apply()
            service.checkpoint()  # a committed generation to roll back to
            service.append(points[16:])
            service.apply()
            with pytest.raises(SimulatedCrashError):
                service.checkpoint(crash_after_step=step)
            service.close()
            survivor = IngestService(directory, L2(), LAYOUT)
            recovery = survivor.recover()
            assert not recovery.lost_ranges
            # Old-or-new, never in between: every acked insert present
            # exactly once regardless of where the checkpoint died.
            _assert_exactly(survivor.view(), points, 24)
            assert fsck_ingest(directory).ok
            survivor.close()

    def test_checkpoint_racing_close_fails_typed(self, tmp_path):
        """Regression for the checkpoint/close lockset race.

        checkpoint() used to re-read ``self._wal`` outside the lock
        after the generation save; a concurrent close() nulling the
        attribute turned the prune into an AssertionError on a torn
        read.  The fix snapshots the view *and* the WAL handle under
        one lock hold, so a close that lands mid-checkpoint surfaces
        as the WAL's typed closed error instead.
        """
        points = _points(12)
        service = _service(tmp_path)
        service.append(points)
        service.apply()
        real_save = service.store.save

        def save_then_close(artifacts, crash_after_step=None):
            generation = real_save(
                artifacts, crash_after_step=crash_after_step
            )
            service.close()  # the racing thread wins here
            return generation

        service.store.save = save_then_close
        with pytest.raises(InvalidParameterError, match="closed"):
            service.checkpoint()

    def test_recover_then_continue_appending(self, tmp_path):
        points = _points(20)
        service = _service(tmp_path)
        service.append(points[:10])
        service.close()
        survivor = _service(tmp_path)
        ack = survivor.append(points[10:])
        assert ack.first_seq == 11  # seqs continue past the replayed log
        survivor.apply()
        _assert_exactly(survivor.view(), points, 20)
        survivor.close()


class TestSnapshotIsolation:
    def test_queries_during_ingest_hammer(self, tmp_path):
        """Readers pin views while a writer grows the tree underneath.

        Every pinned view must answer ground-truth-exactly for the
        prefix it was published with — a reader can never see a
        half-applied batch or an object from a later epoch.
        """
        total, batch = 120, 12
        points = _points(total, seed=23)
        service = _service(tmp_path, fsync="never")
        service.append(points[:batch])
        service.apply()
        stop = threading.Event()
        failures = []

        def reader():
            rng = np.random.default_rng(threading.get_ident() % 2**16)
            while not stop.is_set():
                view = service.view()
                n = len(view)
                q = points[int(rng.integers(0, total))]
                radius = 0.35
                got = sorted(view.tree.range_query(q, radius).oids())
                truth = sorted(
                    i
                    for i in range(n)
                    if float(np.linalg.norm(points[i] - q)) <= radius
                )
                if got != truth or len(view) != n:
                    failures.append((view.epoch, got, truth))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for lo in range(batch, total, batch):
                service.append(points[lo : lo + batch])
                service.apply()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        _assert_exactly(service.view(), points, total)
        service.close()
