"""The WAL under hostile artifacts: framing, damage taxonomy, recovery."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CorruptedDataError, InvalidParameterError
from repro.ingest import (
    FSYNC_POLICIES,
    WAL_MAGIC,
    WalWriter,
    decode_record,
    encode_record,
    quarantine_debris,
    read_wal,
)
from repro.reliability import WalFaultInjector

PAYLOADS = [{"obj": {"t": "vec", "v": [float(i), 0.5]}} for i in range(40)]


def _fill(directory, n=40, **kwargs):
    writer = WalWriter(directory, **kwargs)
    for payload in PAYLOADS[:n]:
        writer.append("insert", payload)
    writer.close()


class TestFraming:
    def test_roundtrip(self):
        frame = encode_record(7, "insert", {"obj": [1.0, 2.0]})
        assert frame.startswith(WAL_MAGIC)
        assert frame.endswith(b"\n")
        record = decode_record(frame.rstrip(b"\n"))
        assert record.seq == 7
        assert record.op == "insert"
        assert record.payload == {"obj": [1.0, 2.0]}

    @given(
        seq=st.integers(min_value=1, max_value=2**53),
        op=st.sampled_from(["insert", "tombstone", "noop"]),
        payload=st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**31), 2**31),
                st.floats(-1e9, 1e9, allow_nan=False),
                st.text(max_size=20),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        ),
    )
    def test_property_roundtrip(self, seq, op, payload):
        record = decode_record(
            encode_record(seq, op, payload).rstrip(b"\n")
        )
        assert (record.seq, record.op, record.payload) == (
            seq,
            op,
            payload,
        )

    def test_bad_magic_rejected(self):
        frame = encode_record(1, "insert", {})
        with pytest.raises(CorruptedDataError, match="bad_magic"):
            decode_record(
                (b"XXWAL1" + frame[len(WAL_MAGIC) :]).rstrip(b"\n")
            )

    def test_flipped_body_bit_rejected(self):
        frame = bytearray(
            encode_record(1, "insert", {"obj": "abcdef"}).rstrip(b"\n")
        )
        frame[-3] ^= 0x08
        with pytest.raises(CorruptedDataError, match="crc_mismatch"):
            decode_record(bytes(frame))


class TestWriter:
    def test_append_assigns_monotonic_seqs(self, tmp_path):
        writer = WalWriter(tmp_path)
        seqs = [writer.append("insert", {"i": i}) for i in range(10)]
        writer.close()
        assert seqs == list(range(1, 11))
        report = read_wal(tmp_path)
        assert report.ok
        assert [r.seq for r in report.records] == seqs

    def test_append_batch_is_one_contiguous_run(self, tmp_path):
        writer = WalWriter(tmp_path)
        seqs = writer.append_batch(
            [("insert", {"i": i}) for i in range(25)]
        )
        writer.close()
        assert seqs == list(range(1, 26))
        assert read_wal(tmp_path).last_seq == 25

    def test_rotation_and_prune(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=256)
        for i in range(40):
            writer.append("insert", {"i": i})
        segments = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        assert len(segments) > 1
        writer.prune(upto_seq=read_wal(tmp_path).last_seq)
        survivors = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        # The open segment is never pruned; everything closed is gone.
        assert survivors == [segments[-1]]
        writer.close()
        assert read_wal(tmp_path).ok

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        assert FSYNC_POLICIES == ("always", "batch", "never")
        with pytest.raises(InvalidParameterError):
            WalWriter(tmp_path, fsync="sometimes")

    def test_resume_at_start_seq(self, tmp_path):
        _fill(tmp_path, n=5)
        writer = WalWriter(tmp_path, start_seq=6)
        assert writer.append("insert", {"i": 5}) == 6
        writer.close()
        report = read_wal(tmp_path)
        assert report.ok
        assert report.last_seq == 6


class TestHostileArtifacts:
    def test_torn_final_record_is_benign(self, tmp_path):
        _fill(tmp_path, n=10)
        WalFaultInjector(tmp_path).tear_tail(drop_bytes=7)
        report = read_wal(tmp_path)
        assert report.torn_tail
        assert not report.damage
        assert report.last_seq == 9
        assert len(report.records) == 9

    def test_truncated_segment_reports_gap(self, tmp_path):
        _fill(tmp_path, n=30, segment_max_bytes=256)
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) >= 2
        WalFaultInjector(tmp_path).truncate_segment(keep_records=0)
        report = read_wal(tmp_path)
        # The final segment lost its whole tail: benign torn classification
        # but the records are gone.
        assert report.last_seq < 30

    def test_bit_flip_cuts_and_quarantines(self, tmp_path):
        _fill(tmp_path, n=20)
        WalFaultInjector(tmp_path).flip_bit(record=10, bit=3)
        report = read_wal(tmp_path)
        assert not report.ok
        assert report.damage
        assert report.damage[0].reason == "crc_mismatch"
        assert report.cut is not None
        # Everything before the flip survives; everything after is debris.
        assert [r.seq for r in report.records] == list(range(1, 11))
        assert report.quarantined_records == 9
        debris = quarantine_debris(tmp_path, report)
        assert debris
        assert list(tmp_path.glob("*.debris"))
        # After quarantine the surviving prefix reads back clean.
        healed = read_wal(tmp_path)
        assert healed.ok
        assert [r.seq for r in healed.records] == list(range(1, 11))

    def test_mid_log_tear_is_not_benign(self, tmp_path):
        _fill(tmp_path, n=20, segment_max_bytes=256)
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) >= 2
        # Damage the FIRST segment: a torn frame there is real damage, not
        # a crash-mid-append tail.
        data = segments[0].read_bytes()
        segments[0].write_bytes(data[:-9])
        report = read_wal(tmp_path)
        assert not report.torn_tail
        assert report.damage
        assert report.gaps == [] or report.quarantined_records > 0

    def test_duplicate_sequence_detected(self, tmp_path):
        _fill(tmp_path, n=12)
        WalFaultInjector(tmp_path).duplicate_record(record=-1)
        report = read_wal(tmp_path)
        assert report.duplicate_seqs == 1
        # Duplicates are not damage: the log still parses end to end.
        assert not report.damage

    def test_sequence_gap_detected(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append("insert", {"i": 0})
        writer.close()
        writer = WalWriter(tmp_path, start_seq=5)
        writer.append("insert", {"i": 4})
        writer.close()
        report = read_wal(tmp_path)
        assert report.gaps == [(2, 4)]
        assert not report.ok
