"""Tests for the metric base classes: counting wrapper, function adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import CountingMetric, FunctionMetric, L2


class TestFunctionMetric:
    def test_wraps_callable(self):
        metric = FunctionMetric(lambda a, b: abs(a - b), name="absdiff")
        assert metric.distance(3, 7) == 4.0
        assert metric.name == "absdiff"
        assert metric(1, 2) == 1.0

    def test_generic_pairwise(self):
        metric = FunctionMetric(lambda a, b: abs(a - b))
        matrix = metric.pairwise([0, 1, 2], [0, 10])
        assert matrix.shape == (3, 2)
        assert matrix[2, 1] == 8.0

    def test_generic_rowwise(self):
        metric = FunctionMetric(lambda a, b: abs(a - b))
        vec = metric.rowwise([1, 2, 3], [3, 2, 1])
        assert list(vec) == [2.0, 0.0, 2.0]

    def test_rowwise_length_mismatch(self):
        metric = FunctionMetric(lambda a, b: abs(a - b))
        with pytest.raises(ValueError):
            metric.rowwise([1, 2], [1])


class TestCountingMetric:
    def test_counts_scalar_calls(self):
        counting = CountingMetric(L2())
        counting.distance([0, 0], [1, 1])
        counting.distance([0, 0], [2, 2])
        assert counting.calls == 2

    def test_counts_bulk_calls_elementwise(self, rng):
        counting = CountingMetric(L2())
        xs = rng.normal(size=(3, 2))
        ys = rng.normal(size=(5, 2))
        counting.pairwise(xs, ys)
        assert counting.calls == 15
        counting.one_to_many(xs[0], ys)
        assert counting.calls == 20
        counting.rowwise(xs, xs)
        assert counting.calls == 23

    def test_reset(self):
        counting = CountingMetric(L2())
        counting.distance([0], [1])
        counting.reset()
        assert counting.calls == 0

    def test_values_pass_through(self, rng):
        inner = L2()
        counting = CountingMetric(inner)
        a, b = rng.normal(size=2), rng.normal(size=2)
        assert counting.distance(a, b) == inner.distance(a, b)
        np.testing.assert_allclose(
            counting.one_to_many(a, [b, a]), inner.one_to_many(a, [b, a])
        )

    def test_name_reflects_inner(self):
        assert CountingMetric(L2()).name == "counting(L2)"
