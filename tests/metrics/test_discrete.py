"""Tests for Hamming, Jaccard and the trivial discrete metric."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.metrics import DiscreteMetric, HammingDistance, JaccardDistance

bit_vectors = st.lists(st.integers(0, 1), min_size=1, max_size=12)
small_sets = st.sets(st.integers(0, 9), max_size=8)


class TestHamming:
    def test_known(self):
        metric = HammingDistance()
        assert metric.distance([0, 1, 0], [1, 1, 0]) == 1.0
        assert metric.distance("abc", "abd") == 1.0
        assert metric.distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_normalized(self):
        metric = HammingDistance(normalized=True)
        assert metric.distance([0, 1, 0, 0], [1, 1, 0, 1]) == pytest.approx(0.5)
        assert metric.domain_bound(100) == 1.0
        assert HammingDistance().domain_bound(100) == 100.0

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            HammingDistance().distance([0, 1], [0, 1, 1])

    def test_pairwise_matches_scalar(self, rng):
        metric = HammingDistance()
        xs = rng.integers(0, 2, size=(4, 5))
        ys = rng.integers(0, 2, size=(3, 5))
        matrix = metric.pairwise(xs, ys)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == metric.distance(xs[i], ys[j])

    @given(
        st.integers(min_value=1, max_value=10).flatmap(
            lambda n: st.tuples(
                st.lists(st.integers(0, 1), min_size=n, max_size=n),
                st.lists(st.integers(0, 1), min_size=n, max_size=n),
                st.lists(st.integers(0, 1), min_size=n, max_size=n),
            )
        )
    )
    def test_axioms(self, triple):
        a, b, c = triple
        metric = HammingDistance()
        assert metric.distance(a, b) == metric.distance(b, a)
        assert metric.distance(a, a) == 0.0
        assert metric.distance(a, b) <= metric.distance(a, c) + metric.distance(c, b)


class TestJaccard:
    def test_known(self):
        metric = JaccardDistance()
        assert metric.distance({1, 2}, {2, 3}) == pytest.approx(1 - 1 / 3)
        assert metric.distance({1}, {1}) == 0.0
        assert metric.distance(set(), set()) == 0.0
        assert metric.distance({1}, {2}) == 1.0
        assert JaccardDistance.domain_bound() == 1.0

    @given(small_sets, small_sets, small_sets)
    def test_axioms(self, a, b, c):
        metric = JaccardDistance()
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))
        assert metric.distance(a, a) == 0.0
        assert 0.0 <= metric.distance(a, b) <= 1.0
        assert (
            metric.distance(a, b)
            <= metric.distance(a, c) + metric.distance(c, b) + 1e-12
        )


class TestDiscrete:
    def test_known(self):
        metric = DiscreteMetric()
        assert metric.distance("x", "x") == 0.0
        assert metric.distance("x", "y") == 1.0
        assert metric.distance(np.array([1, 2]), np.array([1, 2])) == 0.0
        assert metric.distance(np.array([1, 2]), np.array([1, 3])) == 1.0
        assert DiscreteMetric.domain_bound() == 1.0
