"""Golden ``dists_computed`` accounting regression.

The paper's cost models (N-MCM / L-MCM) and the router's pruning
certificates consume *exact* distance-computation counts, so swapping
the kernel backend must never change the accounting.  This suite runs a
seeded M-tree / vp-tree / cluster-partitioner workload and

* pins the counter values against committed goldens (computed with the
  numpy fallback, which is always available), and
* asserts the native backend reproduces the same counters *and* the
  same answers bit-for-bit.

The workload metrics (edit distance, L_inf) are integer-valued or
max-based, hence exactly order-independent — answers, not just counts,
are comparable with ``==`` across backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import partition_objects
from repro.datasets.keywords import keyword_dataset
from repro.metrics import EditDistance, LInf, kernels
from repro.mtree import bulk_load, string_layout
from repro.vptree import VPTree

GOLDEN = {
    "mtree.range": 4306,
    "mtree.knn": 4490,
    "vptree.range": 2095,
    "vptree.knn": 3987,
    "cluster.dists": 2400,
}


def run_workload(backend):
    """The seeded workload; returns (counters, answer signature)."""
    counters = {}
    answers = []
    with kernels.use_backend(backend):
        words = list(keyword_dataset(400, seed=11).words)
        metric = EditDistance()
        queries = words[::40]

        tree = bulk_load(
            words, metric, string_layout(25, node_size_bytes=512), seed=3
        )
        total = 0
        for q in queries:
            res = tree.range_query(q, 3.0)
            total += res.stats.dists_computed
            answers.append(sorted((oid, d) for oid, _obj, d in res.items))
        counters["mtree.range"] = total

        total = 0
        for q in queries:
            res = tree.knn_query(q, 5)
            total += res.stats.dists_computed
            answers.append(
                sorted((n.oid, n.distance) for n in res.neighbors)
            )
        counters["mtree.knn"] = total

        vp = VPTree.build(words, metric, arity=2, seed=5)
        total = 0
        for q in queries:
            res = vp.range_query(q, 2.0)
            total += res.stats.dists_computed
        counters["vptree.range"] = total
        total = 0
        for q in queries:
            res = vp.knn_query(q, 5)
            total += res.stats.dists_computed
        counters["vptree.knn"] = total

        pts = list(np.random.default_rng(7).random((300, 4)))
        part = partition_objects(pts, LInf(), n_shards=4, d_plus=1.0, seed=2)
        counters["cluster.dists"] = part.dists_computed
        answers.append([int(a) for a in part.assignments])
    return counters, answers


def test_numpy_counters_match_golden():
    counters, _ = run_workload("numpy")
    assert counters == GOLDEN


def test_scalar_counters_match_golden():
    counters, _ = run_workload("scalar")
    assert counters == GOLDEN


@pytest.mark.skipif(
    not kernels.native_available(),
    reason="native kernel extension not built (or REPRO_NO_NATIVE set)",
)
def test_native_counters_and_answers_match_numpy():
    native_counters, native_answers = run_workload("native")
    numpy_counters, numpy_answers = run_workload("numpy")
    assert native_counters == GOLDEN
    assert native_counters == numpy_counters
    assert native_answers == numpy_answers
