"""Differential kernel-conformance harness.

The batched kernels swap the innermost layer of the whole stack, so this
suite is the safety net: for every metric with a batch kernel it asserts
that the **native** C backend, the **numpy** fallback, and the
independently-coded **scalar** reference (``kernels.scalar``, written
separately from the production ``distance()`` paths) all agree with each
other *and* with the production scalar ``Metric.distance`` — exactly for
integer-valued metrics, within ``rtol=1e-9`` for float-summing ones.

When the extension isn't built, the native backend is skipped per-case
(the numpy/scalar/production comparisons still run), so the suite is
meaningful with the extension both present and absent.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    EditDistance,
    HammingDistance,
    JaccardDistance,
    L1,
    L2,
    LInf,
    MinkowskiMetric,
    kernels,
)

WORD = st.text(alphabet="abcdefg", min_size=0, max_size=16)
WORDS = st.lists(WORD, min_size=0, max_size=12)
VEC = st.lists(
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ),
    min_size=3,
    max_size=3,
)
VECS = st.lists(VEC, min_size=1, max_size=8)
CODE = st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4)
CODES = st.lists(CODE, min_size=1, max_size=8)
IDSET = st.frozensets(st.integers(min_value=0, max_value=20), max_size=8)
IDSETS = st.lists(IDSET, min_size=1, max_size=8)


def backends():
    names = ["numpy", "scalar"]
    if kernels.native_available():
        names.insert(0, "native")
    return names


def all_backends(fn):
    """Evaluate ``fn`` under every available backend, keyed by name."""
    out = {}
    for name in backends():
        with kernels.use_backend(name):
            out[name] = fn()
    return out


def assert_agree(results, exact):
    names = list(results)
    ref = results[names[0]]
    for name in names[1:]:
        if exact:
            assert np.array_equal(ref, results[name]), (names[0], name)
        else:
            np.testing.assert_allclose(
                ref, results[name], rtol=1e-9, err_msg=f"{names[0]} vs {name}"
            )


# --------------------------------------------------------- edit distance


@given(q=WORD, ys=WORDS)
def test_levenshtein_one_to_many_conformance(q, ys):
    results = all_backends(lambda: kernels.levenshtein_one_to_many(q, ys))
    assert_agree(results, exact=True)
    metric = EditDistance()
    expected = np.array([metric.distance(q, y) for y in ys])
    assert np.array_equal(results["numpy"], expected)


@given(q=WORD, ys=WORDS, bound=st.integers(min_value=0, max_value=12))
def test_levenshtein_bounded_conformance(q, ys, bound):
    results = all_backends(
        lambda: kernels.levenshtein_one_to_many_bounded(q, ys, bound)
    )
    assert_agree(results, exact=True)
    metric = EditDistance()
    expected = np.array(
        [metric.bounded_distance(q, y, bound) for y in ys]
    )
    assert np.array_equal(results["numpy"], expected)


@given(xs=WORDS, ys=WORDS)
def test_levenshtein_pairwise_and_rowwise_conformance(xs, ys):
    results = all_backends(lambda: kernels.levenshtein_pairwise(xs, ys))
    assert_agree(results, exact=True)
    n = min(len(xs), len(ys))
    rw = all_backends(lambda: kernels.levenshtein_rowwise(xs[:n], ys[:n]))
    assert_agree(rw, exact=True)
    if n:
        assert np.array_equal(
            rw["numpy"], results["numpy"][np.arange(n), np.arange(n)][:n]
        )


# ------------------------------------------------------------- Minkowski


@pytest.mark.parametrize("p", [1.0, 2.0, math.inf, 2.5])
@given(xs=VECS, ys=VECS)
@settings(max_examples=25)
def test_minkowski_conformance(p, xs, ys):
    results = all_backends(lambda: kernels.minkowski_pairwise(xs, ys, p))
    # L_inf is a max of |diffs| — identical in any evaluation order — so
    # it must be bit-exact; summing norms agree to 1e-9.
    assert_agree(results, exact=math.isinf(p))
    metric = MinkowskiMetric(p)
    expected = np.array(
        [[metric.distance(x, y) for y in ys] for x in xs]
    )
    np.testing.assert_allclose(results["numpy"], expected, rtol=1e-9)


@given(xs=VECS)
def test_minkowski_one_to_many_matches_scalar_distance(xs):
    metric = L2()
    results = all_backends(
        lambda: kernels.minkowski_one_to_many(xs[0], xs, 2.0)
    )
    assert_agree(results, exact=False)
    expected = np.array([metric.distance(xs[0], y) for y in xs])
    np.testing.assert_allclose(results["numpy"], expected, rtol=1e-9)


# --------------------------------------------------------------- Hamming


@pytest.mark.parametrize("normalized", [False, True])
@given(xs=CODES, ys=CODES)
@settings(max_examples=25)
def test_hamming_conformance_ints(normalized, xs, ys):
    results = all_backends(
        lambda: kernels.hamming_pairwise(xs, ys, normalized)
    )
    assert_agree(results, exact=not normalized)
    metric = HammingDistance(normalized=normalized)
    expected = np.array([[metric.distance(x, y) for y in ys] for x in xs])
    np.testing.assert_allclose(results["numpy"], expected, rtol=1e-9)


@given(
    xs=st.lists(
        st.text(alphabet="abc", min_size=5, max_size=5),
        min_size=1,
        max_size=6,
    )
)
def test_hamming_strings_match_scalar_distance(xs):
    # The scalar distance() compares *characters*; the batch paths must
    # decompose strings the same way (regression for the historical
    # whole-string comparison bug in the vectorised path).
    metric = HammingDistance()
    results = all_backends(lambda: kernels.hamming_pairwise(xs, xs, False))
    assert_agree(results, exact=True)
    expected = np.array([[metric.distance(a, b) for b in xs] for a in xs])
    assert np.array_equal(results["numpy"], expected)


# --------------------------------------------------------------- Jaccard


@given(xs=IDSETS, ys=IDSETS)
def test_jaccard_conformance(xs, ys):
    results = all_backends(lambda: kernels.jaccard_pairwise(xs, ys))
    # intersection/union are small-int ratios: correctly-rounded double
    # division is identical in C and Python, so exact equality holds.
    assert_agree(results, exact=True)
    metric = JaccardDistance()
    expected = np.array([[metric.distance(x, y) for y in ys] for x in xs])
    assert np.array_equal(results["numpy"], expected)


# ----------------------------------------------------- metric-class paths


@given(q=WORD, ys=WORDS)
def test_editdistance_class_batches_match_distance(q, ys):
    metric = EditDistance()
    om = metric.one_to_many(q, ys)
    assert np.array_equal(om, [metric.distance(q, y) for y in ys])
    pw = metric.pairwise([q], ys)
    assert np.array_equal(pw[0], om)


def test_one_to_many_bounded_default_masks():
    metric = L2()
    ys = [[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]]
    out = metric.one_to_many_bounded([0.0, 0.0], ys, 5.0)
    assert out.tolist() == [0.0, 5.0, float("inf")]


# ------------------------------------------------------- metric axioms


AXIOM_CASES = [
    (EditDistance(), ["", "a", "ab", "abc", "cba", "abab", "zzzz"]),
    (L1(), [[0.0, 0.0], [1.0, -2.0], [3.5, 0.25], [-1.0, -1.0]]),
    (L2(), [[0.0, 0.0], [1.0, -2.0], [3.5, 0.25], [-1.0, -1.0]]),
    (LInf(), [[0.0, 0.0], [1.0, -2.0], [3.5, 0.25], [-1.0, -1.0]]),
    (HammingDistance(), [[0, 1, 2], [0, 1, 3], [4, 1, 2], [0, 0, 0]]),
    (
        JaccardDistance(),
        [frozenset(), frozenset({1}), frozenset({1, 2}), frozenset({3, 4})],
    ),
]


@pytest.mark.parametrize(
    "metric,points", AXIOM_CASES, ids=[m.name for m, _ in AXIOM_CASES]
)
def test_metric_axioms_via_batch_kernels(metric, points):
    """Identity, symmetry and the triangle inequality, computed through
    the batch path (``pairwise``) for every registered metric."""
    d = metric.pairwise(points, points)
    n = len(points)
    assert np.all(d >= 0.0)
    assert np.allclose(np.diag(d), 0.0)
    np.testing.assert_allclose(d, d.T, rtol=1e-9, atol=1e-12)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


# ------------------------------------------------------ dispatch surface


def test_use_backend_rejects_unknown():
    from repro.exceptions import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        with kernels.use_backend("fortran"):
            pass


def test_use_backend_restores_previous():
    before = kernels.active_backend()
    with kernels.use_backend("scalar"):
        assert kernels.active_backend() == "scalar"
        with kernels.use_backend("numpy"):
            assert kernels.active_backend() == "numpy"
        assert kernels.active_backend() == "scalar"
    assert kernels.active_backend() == before


def test_native_backend_unavailable_raises_cleanly(monkeypatch):
    from repro.exceptions import InvalidParameterError
    from repro.metrics import kernels as kmod

    monkeypatch.setattr(kmod, "native", None)
    assert not kmod.native_available()
    assert kmod.active_backend() == "numpy"
    with pytest.raises(InvalidParameterError):
        with kmod.use_backend("native"):
            pass


def test_rowwise_length_mismatch_raises():
    from repro.exceptions import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        kernels.levenshtein_rowwise(["a"], ["a", "b"])
    with pytest.raises(InvalidParameterError):
        kernels.minkowski_rowwise([[1.0]], [[1.0], [2.0]], 2.0)
    with pytest.raises(InvalidParameterError):
        kernels.jaccard_rowwise([{1}], [{1}, {2}])
