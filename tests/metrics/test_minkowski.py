"""Unit and property tests for the Minkowski (L_p) metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError
from repro.metrics import L1, L2, LInf, MinkowskiMetric

finite_vectors = arrays(
    np.float64,
    st.integers(min_value=1, max_value=6).map(lambda n: (n,)),
    elements=st.floats(-100, 100, allow_nan=False),
)


def paired_vectors(count):
    """Vectors of a shared dimension."""
    return st.integers(min_value=1, max_value=6).flatmap(
        lambda dim: st.tuples(
            *(
                arrays(
                    np.float64,
                    (dim,),
                    elements=st.floats(-50, 50, allow_nan=False),
                )
                for _ in range(count)
            )
        )
    )


class TestKnownValues:
    def test_l1_known(self):
        assert L1().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_l2_known(self):
        assert L2().distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_linf_known(self):
        assert LInf().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_l3_known(self):
        metric = MinkowskiMetric(3.0)
        assert metric.distance([0], [2]) == pytest.approx(2.0)
        assert metric.distance([0, 0], [1, 1]) == pytest.approx(2 ** (1 / 3))

    def test_identical_points(self):
        for metric in (L1(), L2(), LInf(), MinkowskiMetric(2.5)):
            assert metric.distance([1.5, -2.5], [1.5, -2.5]) == 0.0

    def test_names(self):
        assert L1().name == "L1"
        assert L2().name == "L2"
        assert LInf().name == "Linf"


class TestValidation:
    @pytest.mark.parametrize("p", [0.5, 0.0, -1.0, float("nan")])
    def test_invalid_p_rejected(self, p):
        with pytest.raises(InvalidParameterError):
            MinkowskiMetric(p)

    def test_unit_cube_diameter(self):
        assert LInf().unit_cube_diameter(17) == 1.0
        assert L1().unit_cube_diameter(4) == pytest.approx(4.0)
        assert L2().unit_cube_diameter(9) == pytest.approx(3.0)

    def test_unit_cube_diameter_invalid_dim(self):
        with pytest.raises(InvalidParameterError):
            L2().unit_cube_diameter(0)

    def test_rowwise_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            L2().rowwise(np.zeros((3, 2)), np.zeros((2, 2)))


class TestBulkConsistency:
    """pairwise / one_to_many / rowwise must agree with distance()."""

    @pytest.mark.parametrize(
        "metric", [L1(), L2(), LInf(), MinkowskiMetric(3.0)]
    )
    def test_pairwise_matches_scalar(self, metric, rng):
        xs = rng.normal(size=(5, 3))
        ys = rng.normal(size=(4, 3))
        matrix = metric.pairwise(xs, ys)
        for i in range(5):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(
                    metric.distance(xs[i], ys[j])
                )

    @pytest.mark.parametrize(
        "metric", [L1(), L2(), LInf(), MinkowskiMetric(4.0)]
    )
    def test_one_to_many_matches_scalar(self, metric, rng):
        x = rng.normal(size=3)
        ys = rng.normal(size=(6, 3))
        vec = metric.one_to_many(x, ys)
        for j in range(6):
            assert vec[j] == pytest.approx(metric.distance(x, ys[j]))

    @pytest.mark.parametrize("metric", [L1(), L2(), LInf()])
    def test_rowwise_matches_scalar(self, metric, rng):
        xs = rng.normal(size=(6, 3))
        ys = rng.normal(size=(6, 3))
        vec = metric.rowwise(xs, ys)
        for j in range(6):
            assert vec[j] == pytest.approx(metric.distance(xs[j], ys[j]))


class TestMetricAxioms:
    @given(paired_vectors(2))
    def test_symmetry(self, pair):
        a, b = pair
        for metric in (L1(), L2(), LInf()):
            assert metric.distance(a, b) == pytest.approx(
                metric.distance(b, a)
            )

    @given(paired_vectors(2))
    def test_non_negativity_and_identity(self, pair):
        a, b = pair
        for metric in (L1(), L2(), LInf()):
            assert metric.distance(a, b) >= 0.0
            assert metric.distance(a, a) == 0.0

    @given(paired_vectors(3))
    def test_triangle_inequality(self, triple):
        a, b, c = triple
        for metric in (L1(), L2(), LInf(), MinkowskiMetric(3.0)):
            d_ab = metric.distance(a, b)
            d_ac = metric.distance(a, c)
            d_cb = metric.distance(c, b)
            assert d_ab <= d_ac + d_cb + 1e-9 * (1 + d_ac + d_cb)

    @given(paired_vectors(2))
    def test_lp_ordering(self, pair):
        """L_inf <= L_2 <= L_1 pointwise."""
        a, b = pair
        assert LInf().distance(a, b) <= L2().distance(a, b) + 1e-12
        assert L2().distance(a, b) <= L1().distance(a, b) + 1e-12
