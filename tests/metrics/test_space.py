"""Tests for the BRM space abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics import BRMSpace, L2, LInf


def _unit_sampler(rng, count):
    return rng.random((count, 3))


class TestBRMSpace:
    def test_construction_and_distance(self):
        space = BRMSpace(metric=LInf(), d_plus=1.0, sampler=_unit_sampler)
        assert space.distance([0, 0, 0], [0.5, 0.2, 0.1]) == pytest.approx(0.5)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            BRMSpace(metric=L2(), d_plus=bad)

    def test_distance_beyond_bound_rejected(self):
        space = BRMSpace(metric=L2(), d_plus=0.5)
        with pytest.raises(InvalidParameterError):
            space.distance([0, 0], [1, 1])

    def test_sampling(self):
        space = BRMSpace(metric=LInf(), d_plus=1.0, sampler=_unit_sampler)
        sample = space.sample(np.random.default_rng(0), 10)
        assert np.asarray(sample).shape == (10, 3)
        assert (np.asarray(sample) >= 0).all()
        assert (np.asarray(sample) <= 1).all()

    def test_sampling_determinism(self):
        space = BRMSpace(metric=LInf(), d_plus=1.0, sampler=_unit_sampler)
        first = np.asarray(space.sample(np.random.default_rng(5), 4))
        second = np.asarray(space.sample(np.random.default_rng(5), 4))
        np.testing.assert_array_equal(first, second)

    def test_sample_without_sampler_rejected(self):
        space = BRMSpace(metric=L2(), d_plus=1.0)
        with pytest.raises(InvalidParameterError):
            space.sample(np.random.default_rng(0), 3)

    def test_negative_count_rejected(self):
        space = BRMSpace(metric=LInf(), d_plus=1.0, sampler=_unit_sampler)
        with pytest.raises(InvalidParameterError):
            space.sample(np.random.default_rng(0), -1)

    def test_with_name(self):
        space = BRMSpace(metric=L2(), d_plus=2.0, name="original")
        renamed = space.with_name("renamed")
        assert renamed.name == "renamed"
        assert renamed.d_plus == space.d_plus
        assert renamed.metric is space.metric
