"""Unit and property tests for the edit-distance metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.metrics import EditDistance, WeightedEditDistance, edit_distance

short_words = st.text(alphabet="abcde", min_size=0, max_size=8)


class TestEditDistanceKnown:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("gumbo", "gambol", 2),
            ("casa", "cassa", 1),
            ("casa", "cosa", 1),
            ("saturday", "sunday", 3),
            ("abc", "abc", 0),
            ("abc", "cba", 2),
        ],
    )
    def test_known_pairs(self, a, b, expected):
        assert edit_distance(a, b) == expected
        assert EditDistance().distance(a, b) == float(expected)

    def test_pairwise(self, words):
        metric = EditDistance()
        matrix = metric.pairwise(words[:5], words[:5])
        for i in range(5):
            for j in range(5):
                assert matrix[i, j] == edit_distance(words[i], words[j])

    def test_domain_bound(self):
        assert EditDistance.domain_bound(25) == 25.0
        with pytest.raises(InvalidParameterError):
            EditDistance.domain_bound(-1)


class TestBoundedDistance:
    @pytest.mark.parametrize(
        "a,b,bound",
        [
            ("kitten", "sitting", 3),
            ("kitten", "sitting", 2),
            ("casa", "cosa", 1),
            ("casa", "cassone", 2),
            ("", "abcdef", 3),
        ],
    )
    def test_matches_exact_when_within(self, a, b, bound):
        metric = EditDistance()
        exact = edit_distance(a, b)
        bounded = metric.bounded_distance(a, b, bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded == float("inf")

    def test_negative_bound_rejected(self):
        with pytest.raises(InvalidParameterError):
            EditDistance().bounded_distance("a", "b", -1)

    @given(short_words, short_words, st.integers(min_value=0, max_value=6))
    def test_bounded_agrees_with_exact(self, a, b, bound):
        exact = edit_distance(a, b)
        bounded = EditDistance().bounded_distance(a, b, bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded == float("inf")


class TestEditDistanceAxioms:
    @given(short_words, short_words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_words, short_words)
    def test_identity(self, a, b):
        assert edit_distance(a, a) == 0
        if a != b:
            assert edit_distance(a, b) >= 1

    @given(short_words, short_words, short_words)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, b) <= edit_distance(a, c) + edit_distance(c, b)

    @given(short_words, short_words)
    def test_length_bounds(self, a, b):
        dist = edit_distance(a, b)
        assert dist >= abs(len(a) - len(b))
        assert dist <= max(len(a), len(b))


class TestWeightedEditDistance:
    def test_defaults_match_unit_cost(self, words):
        weighted = WeightedEditDistance()
        for a in words[:6]:
            for b in words[:6]:
                assert weighted.distance(a, b) == edit_distance(a, b)

    def test_custom_substitution_table(self):
        metric = WeightedEditDistance(
            substitution_costs={("a", "o"): 0.25}
        )
        assert metric.distance("casa", "cosa") == pytest.approx(0.25)
        # Symmetric by construction.
        assert metric.distance("cosa", "casa") == pytest.approx(0.25)

    def test_indel_scaling(self):
        metric = WeightedEditDistance(indel_cost=2.0)
        assert metric.distance("abc", "abcd") == pytest.approx(2.0)
        assert metric.distance("", "xy") == pytest.approx(4.0)

    @pytest.mark.parametrize("kwargs", [
        {"indel_cost": 0.0},
        {"indel_cost": -1.0},
        {"substitution_cost": 0.0},
        {"substitution_costs": {("a", "b"): -0.5}},
    ])
    def test_invalid_costs_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            WeightedEditDistance(**kwargs)

    @given(short_words, short_words, short_words)
    def test_triangle_inequality_with_cheap_substitution(self, a, b, c):
        metric = WeightedEditDistance(
            substitution_costs={("a", "b"): 0.5, ("c", "d"): 0.25}
        )
        d_ab = metric.distance(a, b)
        d_ac = metric.distance(a, c)
        d_cb = metric.distance(c, b)
        assert d_ab <= d_ac + d_cb + 1e-9

    def test_domain_bound(self):
        assert WeightedEditDistance().domain_bound(10) == pytest.approx(10.0)
        assert WeightedEditDistance(indel_cost=0.25).domain_bound(
            10
        ) == pytest.approx(5.0)
