"""Tests for angular, Canberra and Mahalanobis metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError
from repro.metrics import (
    AngularDistance,
    CanberraDistance,
    L2,
    MahalanobisDistance,
)

nonzero_vectors = arrays(
    np.float64,
    (3,),
    elements=st.floats(-10, 10, allow_nan=False),
).filter(lambda v: np.linalg.norm(v) > 1e-6)


class TestAngular:
    def test_known_angles(self):
        metric = AngularDistance()
        assert metric.distance([1, 0], [0, 1]) == pytest.approx(math.pi / 2)
        assert metric.distance([1, 0], [-1, 0]) == pytest.approx(math.pi)
        # acos is ill-conditioned near 1: parallel vectors land within 1e-7.
        assert metric.distance([1, 1], [2, 2]) == pytest.approx(0.0, abs=1e-6)

    def test_scale_invariance(self):
        metric = AngularDistance()
        assert metric.distance([1, 2, 3], [4, 5, 6]) == pytest.approx(
            metric.distance([10, 20, 30], [0.4, 0.5, 0.6])
        )

    def test_zero_vector_rejected(self):
        with pytest.raises(InvalidParameterError):
            AngularDistance().distance([0, 0], [1, 0])

    def test_one_to_many_matches_scalar(self, rng):
        metric = AngularDistance()
        x = rng.normal(size=3) + 0.1
        ys = rng.normal(size=(5, 3)) + 0.1
        vec = metric.one_to_many(x, ys)
        for j in range(5):
            assert vec[j] == pytest.approx(metric.distance(x, ys[j]))

    def test_domain_bound(self):
        assert AngularDistance.domain_bound() == pytest.approx(math.pi)

    @given(nonzero_vectors, nonzero_vectors, nonzero_vectors)
    def test_axioms(self, a, b, c):
        metric = AngularDistance()
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))
        assert metric.distance(a, a) == pytest.approx(0.0, abs=1e-6)
        assert metric.distance(a, b) <= (
            metric.distance(a, c) + metric.distance(c, b) + 1e-7
        )


class TestCanberra:
    def test_known_values(self):
        metric = CanberraDistance()
        assert metric.distance([1, 0], [0, 1]) == pytest.approx(2.0)
        assert metric.distance([1, 2], [1, 2]) == 0.0
        assert metric.distance([0, 0], [0, 0]) == 0.0  # 0/0 terms vanish

    def test_bounded_by_dimension(self, rng):
        metric = CanberraDistance()
        for _ in range(10):
            a, b = rng.normal(size=4), rng.normal(size=4)
            assert metric.distance(a, b) <= 4.0 + 1e-12
        assert CanberraDistance.domain_bound(4) == 4.0

    def test_invalid_domain_bound(self):
        with pytest.raises(InvalidParameterError):
            CanberraDistance.domain_bound(0)

    @given(
        arrays(np.float64, (4,), elements=st.floats(0, 10, allow_nan=False)),
        arrays(np.float64, (4,), elements=st.floats(0, 10, allow_nan=False)),
        arrays(np.float64, (4,), elements=st.floats(0, 10, allow_nan=False)),
    )
    def test_axioms_on_nonnegative_vectors(self, a, b, c):
        metric = CanberraDistance()
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))
        assert metric.distance(a, a) == 0.0
        assert metric.distance(a, b) <= (
            metric.distance(a, c) + metric.distance(c, b) + 1e-9
        )


class TestMahalanobis:
    def test_identity_matrix_is_euclidean(self, rng):
        metric = MahalanobisDistance(np.eye(3))
        for _ in range(5):
            a, b = rng.normal(size=3), rng.normal(size=3)
            assert metric.distance(a, b) == pytest.approx(L2().distance(a, b))

    def test_diagonal_weights(self):
        metric = MahalanobisDistance(np.diag([4.0, 1.0]))
        assert metric.distance([0, 0], [1, 0]) == pytest.approx(2.0)
        assert metric.distance([0, 0], [0, 1]) == pytest.approx(1.0)

    def test_one_to_many_matches_scalar(self, rng):
        matrix = np.array([[2.0, 0.5], [0.5, 1.0]])
        metric = MahalanobisDistance(matrix)
        x = rng.normal(size=2)
        ys = rng.normal(size=(6, 2))
        vec = metric.one_to_many(x, ys)
        for j in range(6):
            assert vec[j] == pytest.approx(metric.distance(x, ys[j]))

    @pytest.mark.parametrize(
        "matrix",
        [
            np.zeros((2, 2)),  # not positive definite
            np.array([[1.0, 2.0], [0.0, 1.0]]),  # not symmetric
            np.zeros((2, 3)),  # not square
            np.array([[1.0, 0.0], [0.0, -1.0]]),  # negative eigenvalue
        ],
    )
    def test_invalid_matrices(self, matrix):
        with pytest.raises(InvalidParameterError):
            MahalanobisDistance(matrix)

    def test_domain_bound(self):
        metric = MahalanobisDistance(np.eye(2))
        bound = metric.domain_bound(1.0, 2)
        assert bound == pytest.approx(math.sqrt(2))
        with pytest.raises(InvalidParameterError):
            metric.domain_bound(0.0, 2)

    def test_triangle_inequality(self, rng):
        matrix = np.array([[3.0, 1.0], [1.0, 2.0]])
        metric = MahalanobisDistance(matrix)
        for _ in range(20):
            a, b, c = rng.normal(size=(3, 2))
            assert metric.distance(a, b) <= (
                metric.distance(a, c) + metric.distance(c, b) + 1e-9
            )

    def test_works_in_mtree(self, rng):
        """Non-Euclidean quadratic form drives the index end to end."""
        from repro.mtree import NodeLayout, bulk_load

        metric = MahalanobisDistance(np.array([[2.0, 0.3], [0.3, 1.0]]))
        points = rng.random((100, 2))
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        tree = bulk_load(points, metric, layout, seed=1)
        tree.validate()
        query = rng.random(2)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if metric.distance(query, p) <= 0.4
        )
        assert sorted(tree.range_query(query, 0.4).oids()) == expected
