"""Tests for the M-tree bulk-loading algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.metrics import L2, EditDistance, LInf
from repro.mtree import NodeLayout, bulk_load, string_layout, vector_layout
from repro.workloads import LinearScanBaseline


class TestBulkLoadStructure:
    @pytest.mark.parametrize("n", [1, 5, 60, 500, 2000])
    def test_invariants(self, n, rng):
        points = rng.random((n, 3))
        layout = NodeLayout(node_size_bytes=256, object_bytes=12)
        tree = bulk_load(points, L2(), layout, seed=1)
        tree.validate()
        assert len(tree) == n
        assert {oid for oid, _ in tree.iter_objects()} == set(range(n))

    def test_balanced_by_construction(self, rng):
        points = rng.random((1000, 2))
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        tree = bulk_load(points, L2(), layout, seed=2)
        # validate() already asserts equal leaf depth; check height sane:
        assert 2 <= tree.height <= 6

    def test_custom_oids(self, rng):
        points = rng.random((20, 2))
        oids = list(range(100, 120))
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        tree = bulk_load(points, L2(), layout, oids=oids)
        assert {oid for oid, _ in tree.iter_objects()} == set(oids)

    def test_oid_length_mismatch(self, rng):
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        with pytest.raises(InvalidParameterError):
            bulk_load(rng.random((5, 2)), L2(), layout, oids=[1, 2])

    def test_empty_rejected(self):
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        with pytest.raises(EmptyDatasetError):
            bulk_load(np.zeros((0, 2)), L2(), layout)

    def test_determinism(self, rng):
        points = rng.random((200, 3))
        layout = NodeLayout(node_size_bytes=512, object_bytes=12)
        first = bulk_load(points, L2(), layout, seed=7)
        second = bulk_load(points, L2(), layout, seed=7)
        assert first.n_nodes() == second.n_nodes()
        assert first.height == second.height

    def test_min_utilization_mostly_respected(self, rng):
        """Leaves should mostly meet the 30% fill factor (the merge pass);
        occasional stragglers are tolerated."""
        points = rng.random((2000, 3))
        layout = NodeLayout(
            node_size_bytes=512, object_bytes=12, min_utilization=0.3
        )
        tree = bulk_load(points, L2(), layout, seed=3)
        leaf_sizes = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf_sizes.append(len(node.entries))
            else:
                stack.extend(e.child for e in node.entries)
        underfull = sum(
            1 for s in leaf_sizes if s < layout.leaf_min_entries
        )
        assert underfull <= max(1, len(leaf_sizes) // 10)

    def test_supports_dynamic_inserts_afterwards(self, rng):
        points = rng.random((100, 2))
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        tree = bulk_load(points, L2(), layout, seed=4)
        new_oid = tree.insert(rng.random(2))
        assert new_oid == 100
        assert len(tree) == 101
        tree.validate()


class TestBulkLoadSearchCorrectness:
    def test_range_matches_scan(self, rng):
        points = rng.random((800, 4))
        layout = NodeLayout(node_size_bytes=512, object_bytes=16)
        tree = bulk_load(points, LInf(), layout, seed=5)
        baseline = LinearScanBaseline(list(points), LInf(), 16, 4096)
        for radius in (0.05, 0.2, 0.5):
            query = rng.random(4)
            assert sorted(tree.range_query(query, radius).oids()) == sorted(
                i for i, _o, _d in baseline.range_query(query, radius)[0]
            )

    def test_knn_matches_brute_force(self, rng):
        points = rng.random((600, 3))
        layout = NodeLayout(node_size_bytes=512, object_bytes=12)
        tree = bulk_load(points, L2(), layout, seed=6)
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        for k in (1, 7, 25):
            query = rng.random(3)
            np.testing.assert_allclose(
                tree.knn_query(query, k).distances(),
                [d for _i, _o, d in baseline.knn_query(query, k)[0]],
                atol=1e-12,
            )

    def test_string_bulk_load(self, words):
        layout = string_layout(10, node_size_bytes=128)
        tree = bulk_load(words, EditDistance(), layout, seed=7)
        tree.validate()
        result = tree.range_query("vaso", 1.0)
        found = {obj for _oid, obj, _d in result.items}
        assert "vaso" in found
        assert "viso" in found

    def test_duplicate_heavy_input(self):
        """Degenerate data (all identical) must terminate and stay valid."""
        points = np.zeros((300, 2))
        layout = NodeLayout(node_size_bytes=256, object_bytes=8)
        tree = bulk_load(points, L2(), layout, seed=8)
        tree.validate()
        assert len(tree.range_query(np.zeros(2), 0.0)) == 300


class TestBulkLoadVsDynamic:
    def test_bulk_load_produces_tighter_or_similar_radii(self, rng):
        """Bulk loading clusters before placing, so covering radii should
        on average be no worse than dynamic inserts."""
        from repro.mtree import MTree, collect_node_stats

        points = rng.random((500, 3))
        layout = NodeLayout(node_size_bytes=512, object_bytes=12)
        bulk = bulk_load(points, L2(), layout, seed=9)
        dynamic = MTree(L2(), layout, seed=9)
        dynamic.insert_many(points)
        bulk_stats = collect_node_stats(bulk, d_plus=np.sqrt(3))
        dyn_stats = collect_node_stats(dynamic, d_plus=np.sqrt(3))
        bulk_mean = np.mean([s.radius for s in bulk_stats if s.level > 1])
        dyn_mean = np.mean([s.radius for s in dyn_stats if s.level > 1])
        assert bulk_mean <= dyn_mean * 1.25
