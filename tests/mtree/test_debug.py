"""Tests for the M-tree introspection helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTreeError
from repro.metrics import L2
from repro.mtree import (
    MTree,
    NodeLayout,
    bulk_load,
    describe,
    to_ascii,
    vector_layout,
)


@pytest.fixture(scope="module")
def tree():
    points = np.random.default_rng(0).random((400, 3))
    layout = NodeLayout(node_size_bytes=256, object_bytes=12)
    return bulk_load(points, L2(), layout, seed=1)


class TestDescribe:
    def test_mentions_structure(self, tree):
        text = describe(tree)
        assert "400 objects" in text
        assert f"height {tree.height}" in text
        assert "level 1" in text
        assert "leaf" in text and "internal" in text

    def test_entry_totals_consistent(self, tree):
        """The leaf-level entry total printed equals the object count."""
        text = describe(tree)
        leaf_line = [
            line for line in text.splitlines() if "(leaf)" in line
        ][-1]
        assert "entries 400" in leaf_line

    def test_empty_tree(self):
        assert describe(MTree(L2(), vector_layout(3))) == "MTree(empty)"


class TestToAscii:
    def test_outline_depth_bounded(self, tree):
        text = to_ascii(tree, max_depth=2, max_entries=3)
        lines = text.splitlines()
        assert lines[0].startswith("node[")
        # With max_entries=3 and a wider root, an ellipsis appears.
        if len(tree.root.entries) > 3:
            assert any("more)" in line for line in lines)
        # Depth bound: indentation never exceeds max_depth-1 levels.
        assert all(not line.startswith("    node") for line in lines)

    def test_single_leaf_tree(self):
        tiny = MTree(L2(), vector_layout(2))
        tiny.insert(np.array([0.1, 0.2]))
        text = to_ascii(tiny)
        assert "leaf[1 entries]" in text

    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            to_ascii(MTree(L2(), vector_layout(2)))
