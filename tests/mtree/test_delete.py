"""Tests for M-tree deletion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import L2
from repro.mtree import MTree, NodeLayout, bulk_load
from repro.workloads import LinearScanBaseline


def build(points, node_size=256, seed=0):
    layout = NodeLayout(
        node_size_bytes=node_size, object_bytes=4 * points.shape[1]
    )
    return bulk_load(points, L2(), layout, seed=seed)


class TestDelete:
    def test_delete_existing(self, rng):
        points = rng.random((100, 3))
        tree = build(points)
        assert tree.delete(points[7])
        assert len(tree) == 99
        tree.validate()
        assert 7 not in {oid for oid, _obj in tree.iter_objects()}

    def test_delete_missing_returns_false(self, rng):
        points = rng.random((50, 3))
        tree = build(points)
        assert not tree.delete(np.full(3, 2.0))
        assert len(tree) == 50

    def test_delete_by_oid_disambiguates_duplicates(self):
        points = np.zeros((30, 2))
        tree = build(points)
        assert tree.delete(np.zeros(2), oid=13)
        remaining = {oid for oid, _obj in tree.iter_objects()}
        assert 13 not in remaining
        assert len(remaining) == 29

    def test_delete_wrong_oid_object_pair(self, rng):
        points = rng.random((20, 2))
        tree = build(points)
        # oid 3 exists but not at this location.
        assert not tree.delete(np.full(2, 0.999), oid=3)

    def test_queries_correct_after_deletes(self, rng):
        points = rng.random((300, 3))
        tree = build(points)
        removed = set()
        for i in range(0, 150, 3):
            assert tree.delete(points[i], oid=i)
            removed.add(i)
        tree.validate()
        survivors = [
            (i, p) for i, p in enumerate(points) if i not in removed
        ]
        baseline = LinearScanBaseline(
            [p for _i, p in survivors], L2(), 12, 4096
        )
        for _ in range(5):
            query = rng.random(3)
            tree_oids = sorted(tree.range_query(query, 0.3).oids())
            scan_positions = {
                pos for pos, _o, _d in baseline.range_query(query, 0.3)[0]
            }
            expected = sorted(survivors[pos][0] for pos in scan_positions)
            assert tree_oids == expected

    def test_knn_correct_after_deletes(self, rng):
        points = rng.random((200, 3))
        tree = build(points)
        for i in range(50):
            tree.delete(points[i], oid=i)
        query = rng.random(3)
        result = tree.knn_query(query, 5)
        survivors = points[50:]
        brute = sorted(L2().distance(query, p) for p in survivors)[:5]
        np.testing.assert_allclose(result.distances(), brute, atol=1e-12)

    def test_delete_everything(self, rng):
        points = rng.random((60, 2))
        tree = build(points)
        order = rng.permutation(60)
        for i in order:
            assert tree.delete(points[i], oid=int(i)), f"failed at oid {i}"
        assert len(tree) == 0
        assert tree.root is None
        # And the tree is usable again.
        tree.insert(np.array([0.5, 0.5]))
        assert len(tree) == 1

    def test_interleaved_insert_delete(self, rng):
        points = rng.random((150, 2))
        tree = build(points[:100])
        for i in range(50):
            tree.delete(points[i], oid=i)
            tree.insert(points[100 + i])
        tree.validate()
        assert len(tree) == 100

    def test_delete_from_empty_tree(self):
        from repro.mtree import vector_layout

        tree = MTree(L2(), vector_layout(2))
        assert not tree.delete(np.zeros(2))

    def test_underflow_triggers_reinsertion(self, rng):
        """Deleting most of one cluster must dissolve its leaves without
        losing the remaining objects."""
        cluster_a = rng.random((60, 2)) * 0.1
        cluster_b = rng.random((60, 2)) * 0.1 + 0.9
        points = np.vstack([cluster_a, cluster_b])
        tree = build(points)
        for i in range(55):  # nearly all of cluster A
            assert tree.delete(points[i], oid=i)
        tree.validate()
        remaining = {oid for oid, _obj in tree.iter_objects()}
        assert remaining == set(range(55, 120))
