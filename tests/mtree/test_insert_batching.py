"""Batched insert distances, the partial-failure report, and `clone`.

The insert path routes subtree choice and parent-distance refresh
through ``Metric.one_to_many``; these tests pin the *total* distance
count against a scalar reference so batching can never silently change
how many distances an insert pays.
"""

from __future__ import annotations

import numpy as np

from repro import observability
from repro.metrics import L2, CountingMetric, FunctionMetric
from repro.mtree import InsertFailure, InsertReport, MTree, vector_layout

SEED = 20260808
LAYOUT = vector_layout(3, node_size_bytes=512)


def _points(n, seed=SEED):
    return np.random.default_rng(seed).random((n, 3))


class TestBatchedInsertCounters:
    def test_batched_matches_scalar_reference(self):
        """one_to_many batching pays exactly the per-pair scalar count."""
        points = _points(200)
        counting = CountingMetric(L2())  # counts len(ys) per one_to_many
        batched = MTree(counting, LAYOUT)
        batched.insert_many(points)

        calls = [0]
        base = L2()

        def scalar(x, y):
            calls[0] += 1
            return base.distance(x, y)

        # FunctionMetric has no native one_to_many: every batched call
        # decomposes into scalar calls, one per pair.
        reference = MTree(FunctionMetric(scalar, name="l2"), LAYOUT)
        reference.insert_many(points)
        assert counting.calls == calls[0]
        batched.validate()
        reference.validate()

    def test_insert_distance_count_pinned(self):
        """Golden total for a seeded 200-point build; re-derive on
        legitimate algorithm changes."""
        points = _points(200)
        counting = CountingMetric(L2())
        tree = MTree(counting, LAYOUT)
        tree.insert_many(points)
        assert counting.calls == 8283

    def test_registry_mirrors_insert_distances(self):
        points = _points(120)
        observability.install()
        try:
            tree = MTree(L2(), LAYOUT)
            tree.insert_many(points)
            reg = observability.get_registry()
            assert reg.counter_value("mtree.inserts") == 120
            # Routing + parent-refresh + leaf distances are mirrored into
            # the registry; split-internal distances are not, so the
            # registry count is a positive lower bound.
            mirrored = reg.counter_value(
                "mtree.dists_computed", kind="insert"
            )
            counting = CountingMetric(L2())
            twin = MTree(counting, LAYOUT)
            twin.insert_many(points)
            assert 0 < mirrored <= counting.calls
        finally:
            observability.uninstall()


class TestInsertReport:
    def test_report_is_the_legacy_oid_list(self):
        tree = MTree(L2(), LAYOUT)
        report = tree.insert_many(_points(10))
        assert isinstance(report, InsertReport)
        assert isinstance(report, list)
        assert report == list(range(10))
        assert report.oids == list(range(10))
        assert report.ok
        assert report.failures == []

    def test_partial_failures_do_not_abort_the_batch(self):
        tree = MTree(L2(), LAYOUT)
        tree.insert_many(_points(40))  # deep enough to route via distances
        batch = [
            _points(1, seed=1)[0],
            "poison",
            _points(1, seed=2)[0],
            np.zeros(7),  # wrong dimensionality
            _points(1, seed=4)[0],
        ]
        report = tree.insert_many(batch)
        assert len(report) == 3  # the three good objects got oids
        assert not report.ok
        assert [f.index for f in report.failures] == [1, 3]
        assert all(isinstance(f, InsertFailure) for f in report.failures)
        assert all(f.kind and f.error for f in report.failures)
        tree.validate()
        assert len(tree) == 43

    def test_failure_report_serializes(self):
        failure = InsertFailure(index=3, error="boom", kind="TypeError")
        assert failure.to_dict() == {
            "index": 3,
            "error": "boom",
            "kind": "TypeError",
        }


class TestClone:
    def test_clone_is_independent_and_free(self):
        points = _points(150)
        counting = CountingMetric(L2())
        tree = MTree(counting, LAYOUT)
        tree.insert_many(points)
        before = counting.calls
        twin = tree.clone()
        assert counting.calls == before  # zero distances computed
        twin.validate()
        assert len(twin) == len(tree)
        # Growing the clone leaves the original untouched.
        extra = _points(30, seed=7)
        twin.insert_many(extra)
        assert len(twin) == 180
        assert len(tree) == 150
        tree.validate()
        query = points[0]
        assert sorted(tree.range_query(query, 0.3).oids()) == sorted(
            oid for oid in twin.range_query(query, 0.3).oids() if oid < 150
        )

    def test_clone_continues_oid_sequence(self):
        tree = MTree(L2(), LAYOUT)
        tree.insert_many(_points(5))
        twin = tree.clone()
        assert twin.insert(_points(1, seed=11)[0]) == 5
