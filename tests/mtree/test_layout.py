"""Tests for the byte-accurate node layout."""

from __future__ import annotations

import pytest

from repro.exceptions import CapacityError, InvalidParameterError
from repro.mtree import NodeLayout, string_layout, vector_layout
from repro.mtree.layout import NODE_HEADER_BYTES


class TestNodeLayout:
    def test_entry_sizes(self):
        layout = NodeLayout(node_size_bytes=4096, object_bytes=80)
        assert layout.leaf_entry_bytes == 80 + 4 + 4
        assert layout.internal_entry_bytes == 80 + 4 + 4 + 4

    def test_capacities(self):
        layout = NodeLayout(node_size_bytes=4096, object_bytes=80)
        assert layout.leaf_capacity == (4096 - NODE_HEADER_BYTES) // 88
        assert layout.internal_capacity == (4096 - NODE_HEADER_BYTES) // 92

    def test_min_entries(self):
        layout = NodeLayout(
            node_size_bytes=4096, object_bytes=80, min_utilization=0.3
        )
        assert layout.leaf_min_entries == int(layout.leaf_capacity * 0.3)
        assert layout.internal_min_entries >= 1

    def test_node_size_kb(self):
        assert NodeLayout(4096, 40).node_size_kb == 4.0
        assert NodeLayout(512, 20).node_size_kb == 0.5

    def test_too_small_node_rejected(self):
        with pytest.raises(CapacityError):
            NodeLayout(node_size_bytes=64, object_bytes=100)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_size_bytes": 0, "object_bytes": 10},
            {"node_size_bytes": 1024, "object_bytes": 0},
            {"node_size_bytes": 1024, "object_bytes": 10, "min_utilization": 0.9},
            {"node_size_bytes": 1024, "object_bytes": 10, "min_utilization": -0.1},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(InvalidParameterError):
            NodeLayout(**kwargs)


class TestHelpers:
    def test_vector_layout(self):
        layout = vector_layout(20, node_size_bytes=4096)
        assert layout.object_bytes == 80

    def test_vector_layout_custom_width(self):
        layout = vector_layout(10, bytes_per_coordinate=8)
        assert layout.object_bytes == 80

    def test_string_layout(self):
        layout = string_layout(25)
        assert layout.object_bytes == 25
        # 4 KB of 33-byte leaf entries.
        assert layout.leaf_capacity == (4096 - NODE_HEADER_BYTES) // 33

    def test_invalid_helper_params(self):
        with pytest.raises(InvalidParameterError):
            vector_layout(0)
        with pytest.raises(InvalidParameterError):
            vector_layout(4, bytes_per_coordinate=0)
        with pytest.raises(InvalidParameterError):
            string_layout(0)

    def test_paper_fanout_sanity(self):
        """D = 20 float32 vectors in 4 KB pages: fanout in the tens."""
        layout = vector_layout(20, node_size_bytes=4096)
        assert 30 <= layout.leaf_capacity <= 60
