"""Tests for the aggregate-pushdown count query."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics import L2
from repro.mtree import MTree, NodeLayout, bulk_load, vector_layout


@pytest.fixture(scope="module")
def tree_and_points():
    points = np.random.default_rng(0).random((1200, 4))
    layout = NodeLayout(node_size_bytes=256, object_bytes=16)
    return bulk_load(points, L2(), layout, seed=1), points


class TestRangeCount:
    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.4, 0.9, 2.0])
    def test_count_matches_range_query(self, tree_and_points, radius):
        tree, _points = tree_and_points
        query = np.random.default_rng(2).random(4)
        count, _stats = tree.range_count(query, radius)
        assert count == len(tree.range_query(query, radius))

    def test_containment_saves_distances(self, tree_and_points):
        """At a radius covering most of the space, whole subtrees are
        counted without being visited."""
        tree, _points = tree_and_points
        query = np.full(4, 0.5)
        count, count_stats = tree.range_count(query, 1.2)
        full = tree.range_query(query, 1.2)
        assert count == len(full)
        assert count_stats.dists_computed < full.stats.dists_computed
        assert count_stats.nodes_accessed < full.stats.nodes_accessed

    def test_cache_invalidated_by_insert(self, tree_and_points):
        tree, _points = tree_and_points
        query = np.full(4, 0.5)
        before, _ = tree.range_count(query, 2.0)
        new_oid = tree.insert(np.full(4, 0.5))
        after, _ = tree.range_count(query, 2.0)
        assert after == before + 1
        # restore module-scoped fixture state
        assert tree.delete(np.full(4, 0.5), oid=new_oid)

    def test_cache_invalidated_by_delete(self):
        points = np.random.default_rng(3).random((200, 3))
        layout = NodeLayout(node_size_bytes=256, object_bytes=12)
        tree = bulk_load(points, L2(), layout, seed=4)
        query = np.full(3, 0.5)
        before, _ = tree.range_count(query, 2.0)
        assert tree.delete(points[0], oid=0)
        after, _ = tree.range_count(query, 2.0)
        assert after == before - 1

    def test_empty_tree(self):
        tree = MTree(L2(), vector_layout(3))
        count, stats = tree.range_count(np.zeros(3), 1.0)
        assert count == 0
        assert stats.nodes_accessed == 0

    def test_negative_radius_rejected(self, tree_and_points):
        tree, _points = tree_and_points
        with pytest.raises(InvalidParameterError):
            tree.range_count(np.zeros(4), -0.1)


class TestHistogramMerge:
    def test_identity_merge(self):
        from repro.core import DistanceHistogram

        hist = DistanceHistogram([1, 3, 2], 3.0)
        merged = hist.merge(hist)
        xs = np.linspace(0, 3, 13)
        np.testing.assert_allclose(merged.cdf(xs), hist.cdf(xs), atol=1e-12)

    def test_weighted_average(self):
        from repro.core import DistanceHistogram

        low = DistanceHistogram([1, 0], 1.0)  # all mass in [0, 0.5)
        high = DistanceHistogram([0, 1], 1.0)  # all mass in [0.5, 1)
        merged = low.merge(high, weight=0.25)
        assert merged.cdf(0.5) == pytest.approx(0.25)

    def test_reconciles_bin_counts(self):
        from repro.core import DistanceHistogram

        coarse = DistanceHistogram.uniform(4, 2.0)
        fine = DistanceHistogram.uniform(32, 2.0)
        merged = coarse.merge(fine)
        assert merged.n_bins == 32
        assert merged.cdf(1.0) == pytest.approx(0.5)

    def test_validation(self):
        from repro.core import DistanceHistogram

        a = DistanceHistogram([1], 1.0)
        b = DistanceHistogram([1], 2.0)
        with pytest.raises(InvalidParameterError):
            a.merge(b)
        with pytest.raises(InvalidParameterError):
            a.merge(a, weight=1.5)
