"""Tests for M-tree split policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics import L2
from repro.mtree.entries import LeafEntry, RoutingEntry
from repro.mtree.node import Node
from repro.mtree.split import split_entries


def make_leaf_entries(points):
    return [LeafEntry(np.asarray(p, dtype=float), oid=i) for i, p in enumerate(points)]


class TestSplitBasics:
    def test_partition_is_complete_and_disjoint(self, rng):
        entries = make_leaf_entries(rng.random((20, 2)))
        outcome = split_entries(entries, L2(), min_entries=6)
        first_ids = {e.oid for e in outcome.first_entries}
        second_ids = {e.oid for e in outcome.second_entries}
        assert first_ids | second_ids == set(range(20))
        assert first_ids & second_ids == set()

    def test_min_fill_respected(self, rng):
        entries = make_leaf_entries(rng.random((20, 2)))
        outcome = split_entries(entries, L2(), min_entries=6)
        assert len(outcome.first_entries) >= 6
        assert len(outcome.second_entries) >= 6

    def test_radii_cover_members(self, rng):
        entries = make_leaf_entries(rng.random((30, 3)))
        outcome = split_entries(entries, L2(), min_entries=5)
        metric = L2()
        for entry in outcome.first_entries:
            assert metric.distance(outcome.first_obj, entry.obj) <= (
                outcome.first_radius + 1e-9
            )
        for entry in outcome.second_entries:
            assert metric.distance(outcome.second_obj, entry.obj) <= (
                outcome.second_radius + 1e-9
            )

    def test_promoted_objects_come_from_entries(self, rng):
        points = rng.random((12, 2))
        entries = make_leaf_entries(points)
        outcome = split_entries(entries, L2(), min_entries=3)
        all_points = {tuple(p) for p in points}
        assert tuple(outcome.first_obj) in all_points
        assert tuple(outcome.second_obj) in all_points

    def test_routing_entries_account_for_child_radii(self, rng):
        """Splitting internal entries must add child covering radii."""
        child = Node(is_leaf=True)
        entries = [
            RoutingEntry(np.array([float(i), 0.0]), radius=0.5, child=child)
            for i in range(8)
        ]
        outcome = split_entries(entries, L2(), min_entries=2)
        metric = L2()
        for entry in outcome.first_entries:
            bound = metric.distance(outcome.first_obj, entry.obj) + entry.radius
            assert bound <= outcome.first_radius + 1e-9

    def test_cannot_split_single_entry(self):
        entries = make_leaf_entries([[0.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            split_entries(entries, L2(), min_entries=1)

    def test_unknown_policy_rejected(self, rng):
        entries = make_leaf_entries(rng.random((6, 2)))
        with pytest.raises(InvalidParameterError):
            split_entries(entries, L2(), min_entries=1, policy="magic")


class TestPolicies:
    def test_mm_rad_beats_random_on_average(self, rng):
        """mM_RAD minimises the max covering radius; over several draws it
        should do at least as well as a random promotion."""
        wins = 0
        trials = 10
        for t in range(trials):
            points = rng.random((24, 2))
            entries = make_leaf_entries(points)
            mm = split_entries(
                entries, L2(), min_entries=7, policy="mm_rad",
                rng=np.random.default_rng(t),
            )
            rnd = split_entries(
                entries, L2(), min_entries=7, policy="random",
                rng=np.random.default_rng(t),
            )
            if max(mm.first_radius, mm.second_radius) <= max(
                rnd.first_radius, rnd.second_radius
            ) + 1e-12:
                wins += 1
        assert wins >= 8

    def test_large_node_uses_sampled_pairs(self, rng):
        """Above the exhaustive limit the split still works and fills."""
        entries = make_leaf_entries(rng.random((120, 2)))
        outcome = split_entries(entries, L2(), min_entries=36)
        assert len(outcome.first_entries) + len(outcome.second_entries) == 120
        assert len(outcome.first_entries) >= 36
        assert len(outcome.second_entries) >= 36

    def test_duplicate_points_split(self):
        """All-identical entries must still split into two non-empty groups."""
        entries = make_leaf_entries([[0.5, 0.5]] * 10)
        outcome = split_entries(entries, L2(), min_entries=3)
        assert len(outcome.first_entries) >= 3
        assert len(outcome.second_entries) >= 3
        assert outcome.first_radius == 0.0
        assert outcome.second_radius == 0.0
