"""Tests for tree-statistics extraction (the cost models' input)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTreeError
from repro.metrics import L2
from repro.mtree import (
    MTree,
    NodeLayout,
    bulk_load,
    collect_level_stats,
    collect_node_stats,
    vector_layout,
)


@pytest.fixture(scope="module")
def loaded_tree():
    rng = np.random.default_rng(0)
    points = rng.random((600, 3))
    layout = NodeLayout(node_size_bytes=256, object_bytes=12)
    return bulk_load(points, L2(), layout, seed=1), points


class TestNodeStats:
    def test_one_stat_per_node(self, loaded_tree):
        tree, _points = loaded_tree
        stats = collect_node_stats(tree, d_plus=np.sqrt(3))
        assert len(stats) == tree.n_nodes()

    def test_root_gets_d_plus(self, loaded_tree):
        tree, _points = loaded_tree
        stats = collect_node_stats(tree, d_plus=1.75)
        roots = [s for s in stats if s.level == 1]
        assert len(roots) == 1
        assert roots[0].radius == 1.75
        assert roots[0].n_entries == len(tree.root.entries)

    def test_levels_run_from_1_to_height(self, loaded_tree):
        tree, _points = loaded_tree
        stats = collect_node_stats(tree, d_plus=np.sqrt(3))
        levels = {s.level for s in stats}
        assert levels == set(range(1, tree.height + 1))

    def test_entry_counts_sum_to_structure(self, loaded_tree):
        """Sum of leaf entries equals n; level-l node count equals the
        entry count of level l-1 (the L-MCM identity)."""
        tree, points = loaded_tree
        stats = collect_node_stats(tree, d_plus=np.sqrt(3))
        by_level = {}
        for s in stats:
            by_level.setdefault(s.level, []).append(s)
        height = max(by_level)
        assert sum(s.n_entries for s in by_level[height]) == len(points)
        for level in range(1, height):
            entries_above = sum(s.n_entries for s in by_level[level])
            assert entries_above == len(by_level[level + 1])

    def test_radii_non_negative(self, loaded_tree):
        tree, _points = loaded_tree
        stats = collect_node_stats(tree, d_plus=np.sqrt(3))
        assert all(s.radius >= 0 for s in stats)

    def test_empty_tree_rejected(self):
        tree = MTree(L2(), vector_layout(3))
        with pytest.raises(EmptyTreeError):
            collect_node_stats(tree, d_plus=1.0)


class TestLevelStats:
    def test_aggregation_consistent(self, loaded_tree):
        tree, _points = loaded_tree
        node_stats = collect_node_stats(tree, d_plus=np.sqrt(3))
        level_stats = collect_level_stats(tree, d_plus=np.sqrt(3))
        assert sum(ls.n_nodes for ls in level_stats) == len(node_stats)
        assert [ls.level for ls in level_stats] == list(
            range(1, tree.height + 1)
        )
        for ls in level_stats:
            radii = [s.radius for s in node_stats if s.level == ls.level]
            assert ls.avg_radius == pytest.approx(np.mean(radii))

    def test_single_node_tree(self):
        tree = MTree(L2(), vector_layout(2))
        tree.insert(np.array([0.5, 0.5]))
        stats = collect_level_stats(tree, d_plus=1.0)
        assert len(stats) == 1
        assert stats[0].n_nodes == 1
        assert stats[0].avg_radius == 1.0
