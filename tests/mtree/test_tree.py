"""Tests for dynamic M-tree construction and search correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTreeError, InvalidParameterError
from repro.metrics import L2, EditDistance, LInf
from repro.mtree import MTree, NodeLayout, vector_layout
from repro.workloads import LinearScanBaseline


def build_tree(points, metric=None, node_size=256, seed=0):
    metric = metric if metric is not None else L2()
    layout = NodeLayout(
        node_size_bytes=node_size,
        object_bytes=4 * points.shape[1],
        min_utilization=0.3,
    )
    tree = MTree(metric, layout, seed=seed)
    tree.insert_many(points)
    return tree


class TestInsert:
    def test_empty_tree(self):
        tree = MTree(L2(), vector_layout(2))
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.n_nodes() == 0

    def test_single_insert(self):
        tree = MTree(L2(), vector_layout(2))
        oid = tree.insert(np.array([0.1, 0.2]))
        assert oid == 0
        assert len(tree) == 1
        assert tree.height == 1

    def test_oids_sequential(self, rng):
        tree = MTree(L2(), vector_layout(2))
        oids = tree.insert_many(rng.random((10, 2)))
        assert oids == list(range(10))

    def test_explicit_oid(self):
        tree = MTree(L2(), vector_layout(2))
        assert tree.insert(np.array([0.0, 0.0]), oid=42) == 42

    @pytest.mark.parametrize("n", [5, 30, 120, 400])
    def test_invariants_after_inserts(self, n, rng):
        points = rng.random((n, 3))
        tree = build_tree(points)
        tree.validate()
        assert len(tree) == n
        stored = {oid for oid, _obj in tree.iter_objects()}
        assert stored == set(range(n))

    def test_tree_grows_in_height(self, rng):
        points = rng.random((400, 3))
        tree = build_tree(points, node_size=256)
        assert tree.height >= 3

    def test_duplicate_objects(self):
        tree = build_tree(np.zeros((50, 2)))
        tree.validate()
        result = tree.range_query(np.zeros(2), 0.0)
        assert len(result) == 50


class TestRangeQuery:
    def test_matches_linear_scan(self, rng):
        points = rng.random((300, 3))
        tree = build_tree(points)
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        for radius in (0.0, 0.1, 0.3, 0.8, 2.0):
            query = rng.random(3)
            tree_result = sorted(tree.range_query(query, radius).oids())
            scan_result = sorted(
                i for i, _obj, _d in baseline.range_query(query, radius)[0]
            )
            assert tree_result == scan_result

    def test_distances_reported(self, rng):
        points = rng.random((100, 2))
        tree = build_tree(points)
        query = rng.random(2)
        result = tree.range_query(query, 0.5)
        for oid, obj, dist in result.items:
            assert dist == pytest.approx(L2().distance(query, obj))
            assert dist <= 0.5

    def test_negative_radius_rejected(self, rng):
        tree = build_tree(rng.random((10, 2)))
        with pytest.raises(InvalidParameterError):
            tree.range_query(np.zeros(2), -0.1)

    def test_empty_tree_returns_empty(self):
        tree = MTree(L2(), vector_layout(2))
        result = tree.range_query(np.zeros(2), 1.0)
        assert len(result) == 0
        assert result.stats.nodes_accessed == 0

    def test_cost_accounting_without_pruning(self, rng):
        """Every entry of every accessed node costs one distance — the
        cost-model assumption (footnote 2)."""
        points = rng.random((200, 3))
        tree = build_tree(points)
        result = tree.range_query(rng.random(3), 0.4)
        assert result.stats.nodes_accessed >= 1
        assert result.stats.dists_computed >= result.stats.nodes_accessed

    def test_pruning_preserves_results_and_saves_distances(self, rng):
        points = rng.random((400, 3))
        tree = build_tree(points)
        total_pruned = 0
        total_plain = 0
        for _ in range(10):
            query = rng.random(3)
            plain = tree.range_query(query, 0.25, use_parent_pruning=False)
            pruned = tree.range_query(query, 0.25, use_parent_pruning=True)
            assert sorted(plain.oids()) == sorted(pruned.oids())
            total_plain += plain.stats.dists_computed
            total_pruned += pruned.stats.dists_computed
        assert total_pruned < total_plain


class TestKNNQuery:
    def test_matches_brute_force(self, rng):
        points = rng.random((250, 3))
        tree = build_tree(points)
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        for k in (1, 3, 10, 50):
            query = rng.random(3)
            tree_dists = tree.knn_query(query, k).distances()
            scan_dists = [d for _i, _o, d in baseline.knn_query(query, k)[0]]
            np.testing.assert_allclose(tree_dists, scan_dists, atol=1e-12)

    def test_neighbors_sorted(self, rng):
        points = rng.random((100, 2))
        tree = build_tree(points)
        result = tree.knn_query(rng.random(2), 10)
        dists = result.distances()
        assert dists == sorted(dists)

    def test_k_validation(self, rng):
        tree = build_tree(rng.random((10, 2)))
        with pytest.raises(InvalidParameterError):
            tree.knn_query(np.zeros(2), 0)
        with pytest.raises(InvalidParameterError):
            tree.knn_query(np.zeros(2), 11)

    def test_empty_tree_rejected(self):
        tree = MTree(L2(), vector_layout(2))
        with pytest.raises(EmptyTreeError):
            tree.knn_query(np.zeros(2), 1)

    def test_pruning_preserves_knn(self, rng):
        points = rng.random((300, 3))
        tree = build_tree(points)
        for _ in range(5):
            query = rng.random(3)
            plain = tree.knn_query(query, 5, use_parent_pruning=False)
            pruned = tree.knn_query(query, 5, use_parent_pruning=True)
            np.testing.assert_allclose(
                plain.distances(), pruned.distances(), atol=1e-12
            )

    def test_optimality_vs_range(self, rng):
        """The optimal k-NN search should not access more nodes than the
        equivalent range query at the k-th NN distance (plus boundary
        ties)."""
        points = rng.random((300, 3))
        tree = build_tree(points)
        query = rng.random(3)
        knn = tree.knn_query(query, 5)
        radius = knn.distances()[-1]
        range_result = tree.range_query(query, radius)
        assert knn.stats.nodes_accessed <= range_result.stats.nodes_accessed


class TestStringTree:
    def test_insert_and_query_strings(self, words):
        layout = NodeLayout(node_size_bytes=128, object_bytes=10)
        tree = MTree(EditDistance(), layout, seed=1)
        for word in words:
            tree.insert(word)
        tree.validate()
        result = tree.range_query("casa", 1.0)
        found = {obj for _oid, obj, _d in result.items}
        assert "casa" in found
        assert "cassa" in found
        assert "cosa" in found
        assert "verde" not in found

    def test_knn_on_strings(self, words):
        layout = NodeLayout(node_size_bytes=128, object_bytes=10)
        tree = MTree(EditDistance(), layout, seed=1)
        for word in words:
            tree.insert(word)
        result = tree.knn_query("caso", 3)
        assert result.neighbors[0].obj == "caso"
        assert result.neighbors[0].distance == 0.0


class TestSplitPolicyVariants:
    @pytest.mark.parametrize("policy", ["mm_rad", "random"])
    def test_both_policies_build_valid_trees(self, policy, rng):
        points = rng.random((150, 3))
        layout = NodeLayout(node_size_bytes=256, object_bytes=12)
        tree = MTree(L2(), layout, split_policy=policy, seed=4)
        tree.insert_many(points)
        tree.validate()
        query = rng.random(3)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if L2().distance(query, p) <= 0.3
        )
        assert sorted(tree.range_query(query, 0.3).oids()) == expected
