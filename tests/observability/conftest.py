"""Observability test fixtures: per-test install/uninstall hygiene."""

from __future__ import annotations

import pytest

from repro import observability


@pytest.fixture(autouse=True)
def clean_observability():
    """Guarantee each test starts and ends with observability disabled."""
    observability.uninstall()
    yield
    observability.uninstall()


@pytest.fixture
def installed_registry():
    """A freshly installed registry, torn down after the test."""
    registry = observability.install()
    yield registry
    observability.uninstall()
