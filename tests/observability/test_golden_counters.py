"""Golden counter tests: exact pinned costs on a seeded 2-D hypercube.

The datasets, layouts, seeds and queries below are all fixed, so the
M-tree / vp-tree traversals are fully deterministic and the exact
``nodes_accessed`` / ``dists_computed`` values can be pinned.  Every test
also asserts the metrics registry agrees with the legacy per-query stats
field-for-field — the registry is updated at the *same program points*,
so any drift between the two is a bug.

If a legitimate algorithm change shifts these numbers, re-derive them by
running the queries and update the pins alongside the change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.metrics import L2
from repro.mtree import NodeLayout, QueryStats, bulk_load
from repro.storage import PageStore, PagerStats
from repro.vptree import VPQueryStats, VPTree

SEED = 20260805
QUERY = np.array([0.5, 0.5])
RADIUS = 0.2
K = 10


@pytest.fixture(scope="module")
def hypercube_points():
    """400 uniform points in the unit square [0, 1]^2."""
    return np.random.default_rng(SEED).random((400, 2))


@pytest.fixture(scope="module")
def mtree(hypercube_points):
    layout = NodeLayout(node_size_bytes=256, object_bytes=16)
    return bulk_load(hypercube_points, L2(), layout, seed=5)


@pytest.fixture(scope="module")
def vptree(hypercube_points):
    return VPTree.build(list(hypercube_points), L2(), arity=2, seed=9)


class TestMTreeGoldenCounters:
    def test_range_query_pinned_costs(self, mtree):
        result = mtree.range_query(QUERY, RADIUS)
        assert result.stats.nodes_accessed == 28
        assert result.stats.dists_computed == 163
        assert len(result.items) == 52

    def test_knn_query_pinned_costs(self, mtree):
        result = mtree.knn_query(QUERY, K)
        assert result.stats.nodes_accessed == 22
        assert result.stats.dists_computed == 132

    def test_range_count_pinned_costs(self, mtree):
        count, stats = mtree.range_count(QUERY, RADIUS)
        assert count == 52
        assert stats.nodes_accessed == 26  # aggregation skips covered leaves
        assert stats.dists_computed == 157

    def test_complex_query_pinned_costs(self, mtree):
        predicates = [
            (np.array([0.4, 0.4]), 0.25),
            (np.array([0.6, 0.6]), 0.25),
        ]
        result = mtree.complex_range_query(predicates, mode="and")
        assert result.stats.nodes_accessed == 23
        assert result.stats.dists_computed == 274
        assert len(result.items) == 21

    def test_registry_matches_stats_for_every_kind(self, mtree):
        registry = observability.install()
        try:
            range_result = mtree.range_query(QUERY, RADIUS)
            knn_result = mtree.knn_query(QUERY, K)
            _count, count_stats = mtree.range_count(QUERY, RADIUS)
            complex_result = mtree.complex_range_query(
                [(QUERY, RADIUS)], mode="or"
            )
            expected = {
                "range": range_result.stats,
                "knn": knn_result.stats,
                "range_count": count_stats,
                "complex": complex_result.stats,
            }
            for kind, stats in expected.items():
                mirrored = QueryStats.from_registry(kind, registry=registry)
                assert mirrored == stats, f"kind={kind}"
            assert registry.counter_value("mtree.queries", kind="range") == 1
            assert registry.counter_value("mtree.results", kind="range") == (
                len(range_result.items)
            )
        finally:
            observability.uninstall()

    def test_registry_accumulates_across_queries(self, mtree):
        registry = observability.install()
        try:
            first = mtree.range_query(QUERY, RADIUS)
            second = mtree.range_query(np.array([0.1, 0.9]), RADIUS)
            mirrored = QueryStats.from_registry("range", registry=registry)
            assert mirrored.nodes_accessed == (
                first.stats.nodes_accessed + second.stats.nodes_accessed
            )
            assert mirrored.dists_computed == (
                first.stats.dists_computed + second.stats.dists_computed
            )
        finally:
            observability.uninstall()

    def test_pruned_plus_visited_covers_every_touched_entry(self, mtree):
        """Every parent entry is either descended into or pruned."""
        registry = observability.install()
        try:
            mtree.range_query(QUERY, RADIUS)
            visited = registry.counter_value(
                "mtree.nodes_accessed", kind="range"
            )
            pruned = registry.counter_value(
                "mtree.pruned_subtrees", kind="range"
            )
            # Root is visited without being anyone's child entry; every
            # other considered entry resolves to exactly one of the two.
            fanout_total = sum(
                registry.histogram("mtree.fanout", level=level).count
                * registry.histogram("mtree.fanout", level=level).mean
                for level in (1, 2, 3)
                if registry.histogram("mtree.fanout", level=level)
            )
            assert visited >= 1
            assert pruned >= 0
            assert visited - 1 + pruned <= fanout_total
        finally:
            observability.uninstall()


class TestVPTreeGoldenCounters:
    def test_range_query_pinned_costs(self, vptree):
        result = vptree.range_query(QUERY, RADIUS)
        assert result.stats.nodes_accessed == 136
        assert result.stats.dists_computed == 136
        assert len(result.items) == 52

    def test_knn_query_pinned_costs(self, vptree):
        result = vptree.knn_query(QUERY, K)
        assert result.stats.nodes_accessed == 48
        assert result.stats.dists_computed == 48

    def test_one_distance_per_accessed_node(self, vptree):
        for radius in (0.05, 0.2, 0.6):
            stats = vptree.range_query(QUERY, radius).stats
            assert stats.nodes_accessed == stats.dists_computed

    def test_registry_matches_stats(self, vptree):
        registry = observability.install()
        try:
            range_result = vptree.range_query(QUERY, RADIUS)
            knn_result = vptree.knn_query(QUERY, K)
            assert VPQueryStats.from_registry(
                "range", registry=registry
            ) == range_result.stats
            assert VPQueryStats.from_registry(
                "knn", registry=registry
            ) == knn_result.stats
            assert registry.counter_value(
                "vptree.results", kind="range"
            ) == len(range_result.items)
        finally:
            observability.uninstall()


class TestMTreeVsVPTreeConsistency:
    def test_same_result_set_on_the_hypercube(self, mtree, vptree):
        """Both indexes return the identical 52 objects at the pin point."""
        mtree_oids = sorted(mtree.range_query(QUERY, RADIUS).oids())
        vptree_oids = sorted(vptree.range_query(QUERY, RADIUS).oids())
        assert mtree_oids == vptree_oids
        assert len(mtree_oids) == 52


class TestPagerGoldenCounters:
    def test_registry_matches_pager_stats(self):
        registry = observability.install()
        try:
            store = PageStore(page_size_bytes=64, buffer_pages=2)
            ids = [store.allocate(f"payload-{i}") for i in range(4)]
            for page_id in (ids[0], ids[1], ids[0], ids[2], ids[3], ids[0]):
                store.read(page_id)
            mirrored = PagerStats.from_registry(registry=registry)
            assert mirrored == store.stats
            assert mirrored.buffer_hits == store.stats.buffer_hits
            assert registry.counter_value("pager.buffer_hits") == (
                store.stats.buffer_hits
            )
        finally:
            observability.uninstall()

    def test_exact_buffer_accounting(self):
        registry = observability.install()
        try:
            store = PageStore(page_size_bytes=64, buffer_pages=1)
            a = store.allocate("a")
            b = store.allocate("b")
            store.read(a)  # miss
            store.read(a)  # hit
            store.read(b)  # miss, evicts a
            store.read(a)  # miss again
            assert registry.counter_value("pager.logical_reads") == 4
            assert registry.counter_value("pager.physical_reads") == 3
            assert registry.counter_value("pager.buffer_hits") == 1
            assert registry.counter_value("pager.writes") == 2
        finally:
            observability.uninstall()
