"""Property-based invariants over the observed (counted) costs.

Hypothesis drives datasets, radii and buffer sizes; the invariants are
the monotonicity facts the cost model relies on — Eqs. 5-8 predict
quantities that are non-decreasing in the radius and in k, and the pager
obeys basic caching laws.  Everything is asserted against *measured*
counters, not model output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability
from repro.metrics import L2
from repro.mtree import NodeLayout, QueryStats, bulk_load
from repro.storage import PageStore
from repro.vptree import VPTree


def _points(n: int, dim: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((n, dim))


def _mtree(points: np.ndarray):
    layout = NodeLayout(node_size_bytes=192, object_bytes=16)
    return bulk_load(points, L2(), layout, seed=1)


dataset = st.tuples(
    st.integers(min_value=10, max_value=150),  # n
    st.integers(min_value=1, max_value=3),  # dim
    st.integers(min_value=0, max_value=10_000),  # seed
)


class TestRadiusMonotonicity:
    @given(dataset, st.floats(min_value=0.0, max_value=0.8))
    @settings(max_examples=25, deadline=None)
    def test_mtree_costs_monotone_in_radius(self, params, radius):
        n, dim, seed = params
        tree = _mtree(_points(n, dim, seed))
        query = np.full(dim, 0.5)
        small = tree.range_query(query, radius).stats
        large = tree.range_query(query, radius + 0.3).stats
        assert large.nodes_accessed >= small.nodes_accessed
        assert large.dists_computed >= small.dists_computed

    @given(dataset, st.floats(min_value=0.0, max_value=0.8))
    @settings(max_examples=25, deadline=None)
    def test_vptree_costs_monotone_in_radius(self, params, radius):
        n, dim, seed = params
        points = _points(n, dim, seed)
        tree = VPTree.build(list(points), L2(), seed=2)
        query = np.full(dim, 0.5)
        small = tree.range_query(query, radius).stats
        large = tree.range_query(query, radius + 0.3).stats
        assert large.nodes_accessed >= small.nodes_accessed
        assert large.dists_computed >= small.dists_computed

    @given(dataset, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_result_count_monotone_in_radius(self, params, radius):
        n, dim, seed = params
        tree = _mtree(_points(n, dim, seed))
        query = np.full(dim, 0.5)
        assert len(tree.range_query(query, radius + 0.2).items) >= len(
            tree.range_query(query, radius).items
        )


class TestKnnMonotonicity:
    @given(dataset, st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_mtree_knn_cost_non_decreasing_in_k(self, params, k):
        n, dim, seed = params
        tree = _mtree(_points(n, dim, seed))
        query = np.full(dim, 0.5)
        k2 = min(n, k + 3)
        k1 = min(n, k)
        small = tree.knn_query(query, k1).stats
        large = tree.knn_query(query, k2).stats
        assert large.nodes_accessed >= small.nodes_accessed
        assert large.dists_computed >= small.dists_computed

    @given(dataset, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_vptree_knn_cost_non_decreasing_in_k(self, params, k):
        n, dim, seed = params
        points = _points(n, dim, seed)
        tree = VPTree.build(list(points), L2(), seed=3)
        query = np.full(dim, 0.5)
        small = tree.knn_query(query, min(n, k)).stats
        large = tree.knn_query(query, min(n, k + 3)).stats
        assert large.nodes_accessed >= small.nodes_accessed


class TestRegistryMirrorsStats:
    @given(dataset, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_registry_equals_stats_on_random_inputs(self, params, radius):
        """The golden-counter equality holds for arbitrary seeded data."""
        n, dim, seed = params
        tree = _mtree(_points(n, dim, seed))
        query = np.full(dim, 0.5)
        registry = observability.install()
        try:
            result = tree.range_query(query, radius)
            assert QueryStats.from_registry(
                "range", registry=registry
            ) == result.stats
        finally:
            observability.uninstall()


class TestPagerLaws:
    @given(
        st.integers(min_value=0, max_value=12),  # buffer pages
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_ratio_in_unit_interval(self, buffer_pages, accesses):
        store = PageStore(page_size_bytes=32, buffer_pages=buffer_pages)
        ids = [store.allocate(i) for i in range(10)]
        for idx in accesses:
            store.read(ids[idx])
        assert 0.0 <= store.stats.hit_ratio <= 1.0
        assert store.stats.buffer_hits == (
            store.stats.logical_reads - store.stats.physical_reads
        )

    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_physical_reads_never_decrease_when_buffer_shrinks(
        self, buffer_pages, accesses
    ):
        """Replaying the same access trace with a smaller LRU buffer can
        only cost more physical reads (LRU inclusion property)."""
        counts = []
        for pages in (buffer_pages, buffer_pages - 1):
            store = PageStore(page_size_bytes=32, buffer_pages=pages)
            ids = [store.allocate(i) for i in range(10)]
            for idx in accesses:
                store.read(ids[idx])
            counts.append(store.stats.physical_reads)
        larger_buffer_reads, smaller_buffer_reads = counts
        assert smaller_buffer_reads >= larger_buffer_reads

    @given(
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_unbuffered_store_reads_are_all_physical(self, accesses):
        store = PageStore(page_size_bytes=32, buffer_pages=0)
        ids = [store.allocate(i) for i in range(10)]
        for idx in accesses:
            store.read(ids[idx])
        assert store.stats.physical_reads == store.stats.logical_reads
        assert store.stats.hit_ratio == 0.0


@pytest.mark.parametrize("radius", [0.0, 0.1, 0.4])
def test_disabled_observability_changes_nothing(radius):
    """Query results and stats are identical with and without the layer."""
    points = _points(120, 2, 77)
    tree = _mtree(points)
    query = np.full(2, 0.5)
    baseline = tree.range_query(query, radius)
    observability.install()
    try:
        instrumented = tree.range_query(query, radius)
    finally:
        observability.uninstall()
    assert instrumented.oids() == baseline.oids()
    assert instrumented.stats == baseline.stats
