"""Prediction-vs-measurement regression: the cost model versus counters.

The paper's N-MCM and L-MCM predict mean node reads and distance
computations per range query (Eqs. 5-7 / 15-16).  Here the *measured*
side comes entirely from the metrics registry — the same counters the
CLI and the benches expose — so this test pins the whole chain:
instrumented traversal -> registry -> per-query means -> model error.

Tolerance bands follow EXPERIMENTS.md (Figure 1 at bench scale): N-MCM
within 30%, L-MCM within 35%, selectivity within 15%.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.datasets import clustered_dataset
from repro.experiments.common import build_vector_setup, paper_range_radius

SIZE = 2000
N_QUERIES = 60
DIMS = (5, 20)

NMCM_BAND = 0.30
LMCM_BAND = 0.35
SELECTIVITY_BAND = 0.15


def _relative_error(predicted: float, actual: float) -> float:
    return abs(predicted - actual) / actual


@pytest.fixture(scope="module", params=DIMS, ids=lambda d: f"D{d}")
def measured_setup(request):
    """One dimensionality: models + registry-measured mean range costs."""
    dim = request.param
    dataset = clustered_dataset(SIZE, dim, seed=3)
    setup = build_vector_setup(dataset, N_QUERIES, n_bins=100)
    radius = paper_range_radius(dim, volume=0.01)

    registry = observability.install()
    try:
        total_results = 0
        for query in setup.workload.queries:
            total_results += len(setup.tree.range_query(query, radius))
        n_queries = registry.counter_value("mtree.queries", kind="range")
        assert n_queries == len(setup.workload.queries)
        measured = {
            "nodes": registry.counter_value(
                "mtree.nodes_accessed", kind="range"
            )
            / n_queries,
            "dists": registry.counter_value(
                "mtree.dists_computed", kind="range"
            )
            / n_queries,
            "results": registry.counter_value("mtree.results", kind="range")
            / n_queries,
        }
        assert registry.counter_value(
            "mtree.results", kind="range"
        ) == total_results
    finally:
        observability.uninstall()
    return setup, radius, measured


class TestRangeModelRegression:
    def test_nmcm_nodes_within_band(self, measured_setup):
        setup, radius, measured = measured_setup
        predicted = float(setup.node_model.range_nodes(radius))
        assert _relative_error(predicted, measured["nodes"]) < NMCM_BAND

    def test_nmcm_dists_within_band(self, measured_setup):
        setup, radius, measured = measured_setup
        predicted = float(setup.node_model.range_dists(radius))
        assert _relative_error(predicted, measured["dists"]) < NMCM_BAND

    def test_lmcm_nodes_within_band(self, measured_setup):
        setup, radius, measured = measured_setup
        predicted = float(setup.level_model.range_nodes(radius))
        assert _relative_error(predicted, measured["nodes"]) < LMCM_BAND

    def test_lmcm_dists_within_band(self, measured_setup):
        setup, radius, measured = measured_setup
        predicted = float(setup.level_model.range_dists(radius))
        assert _relative_error(predicted, measured["dists"]) < LMCM_BAND

    def test_selectivity_within_band(self, measured_setup):
        """Eq. 8: expected result cardinality n * F(r_Q)."""
        setup, radius, measured = measured_setup
        predicted = float(setup.node_model.range_objs(radius))
        if measured["results"] == 0:
            assert predicted < 1.0
        else:
            assert (
                _relative_error(predicted, measured["results"])
                < SELECTIVITY_BAND
            )

    def test_models_bracket_reality_sanely(self, measured_setup):
        """Both models predict positive costs of the right magnitude."""
        setup, radius, measured = measured_setup
        for model in (setup.node_model, setup.level_model):
            nodes = float(model.range_nodes(radius))
            dists = float(model.range_dists(radius))
            assert 0 < nodes < 10 * measured["nodes"]
            assert 0 < dists < 10 * measured["dists"]
            # A node read costs at most one distance per stored entry, so
            # predicted distances must exceed predicted node reads.
            assert dists > nodes


class TestKnnModelRegression:
    """k-NN estimates stay ordered and finite against measured costs."""

    @pytest.mark.parametrize("k", [1, 10])
    def test_knn_estimate_within_order_of_measurement(
        self, measured_setup, k
    ):
        setup, _radius, _measured = measured_setup
        registry = observability.install()
        try:
            for query in setup.workload.queries:
                setup.tree.knn_query(query, k)
            n = registry.counter_value("mtree.queries", kind="knn")
            mean_nodes = (
                registry.counter_value("mtree.nodes_accessed", kind="knn")
                / n
            )
            mean_dists = (
                registry.counter_value("mtree.dists_computed", kind="knn")
                / n
            )
        finally:
            observability.uninstall()
        estimate = setup.node_model.nn_costs(k, method="integral")
        # The integral estimator is biased at bench scale; EXPERIMENTS.md
        # documents factor-level agreement, so pin within a factor of 3.
        assert estimate.nodes == pytest.approx(mean_nodes, rel=2.0)
        assert estimate.dists == pytest.approx(mean_dists, rel=2.0)
        assert estimate.nodes > 0 and estimate.dists > 0
