"""Unit tests for the metrics registry and snapshot round-trips."""

from __future__ import annotations

import json

import pytest

from repro import observability
from repro.observability import (
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounters:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("queries")
        reg.inc("queries")
        assert reg.counter_value("queries") == 2

    def test_inc_with_explicit_value(self):
        reg = MetricsRegistry()
        reg.inc("dists", 17)
        reg.inc("dists", 3)
        assert reg.counter_value("dists") == 20

    def test_labels_create_independent_series(self):
        reg = MetricsRegistry()
        reg.inc("queries", kind="range")
        reg.inc("queries", 2, kind="knn")
        assert reg.counter_value("queries", kind="range") == 1
        assert reg.counter_value("queries", kind="knn") == 2
        assert reg.counter_value("queries") == 0  # unlabelled is distinct

    def test_counter_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.inc("queries", kind="range")
        reg.inc("queries", 2, kind="knn")
        reg.inc("queries", 4)
        assert reg.counter_total("queries") == 7

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a="1", b="2")
        reg.inc("x", b="2", a="1")
        assert reg.counter_value("x", a="1", b="2") == 2

    def test_name_and_value_are_positional_only(self):
        """Labels named 'name' or 'value' must not collide with params."""
        reg = MetricsRegistry()
        reg.inc("c", 1, name="x", value="y")
        assert reg.counter_value("c", name="x", value="y") == 1
        reg.observe("h", 0.5, name="x")
        assert reg.histogram("h", name="x").count == 1


class TestGauges:
    def test_set_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 5)
        assert reg.gauge_value("depth") == 5

    def test_gauge_labels(self):
        reg = MetricsRegistry()
        reg.set_gauge("size", 10, tree="mtree")
        reg.set_gauge("size", 20, tree="vptree")
        assert reg.gauge_value("size", tree="mtree") == 10
        assert reg.gauge_value("size", tree="vptree") == 20


class TestHistograms:
    def test_observe_accumulates(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        hist = reg.histogram("lat")
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean == pytest.approx(2.0)
        assert hist.min_value == 1.0
        assert hist.max_value == 3.0

    def test_overflow_bucket_is_implicit(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.0015)  # lands in some small bucket
        reg.observe("lat", 1e9)  # beyond every bucket bound -> overflow
        hist = reg.histogram("lat")
        assert sum(hist.bucket_counts) == 1
        assert hist.count - sum(hist.bucket_counts) == 1  # the overflow

    def test_histogram_round_trip(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.02, 5.0):
            reg.observe("lat", v)
        hist = reg.histogram("lat")
        clone = HistogramData.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.total == pytest.approx(hist.total)
        assert clone.bucket_counts == hist.bucket_counts


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("mtree.nodes_accessed", 7, kind="range")
        reg.inc("pager.writes", 3)
        reg.set_gauge("tree.height", 4, tree="mtree")
        reg.observe("query.seconds", 0.004, kind="range")
        return reg

    def test_json_round_trip_is_lossless(self):
        snap = self._populated().snapshot()
        clone = MetricsSnapshot.from_json(snap.to_json())
        assert clone.get("mtree.nodes_accessed", kind="range") == 7
        assert clone.get("pager.writes") == 3
        assert clone.get("tree.height", tree="mtree") == 4
        hist = HistogramData.from_dict(
            clone.get("query.seconds", kind="range")
        )
        assert hist.count == 1
        assert hist.total == pytest.approx(0.004)

    def test_json_carries_format_tag(self):
        payload = json.loads(self._populated().snapshot().to_json())
        assert payload["format"] == "metricost-metrics-v1"

    def test_get_default(self):
        snap = self._populated().snapshot()
        assert snap.get("no.such.counter") == 0.0
        assert snap.get("no.such.counter", 42.0) == 42.0

    def test_total_sums_labelled_series(self):
        reg = self._populated()
        reg.inc("mtree.nodes_accessed", 5, kind="knn")
        snap = reg.snapshot()
        assert snap.total("mtree.nodes_accessed") == 12

    def test_render_mentions_every_metric_name(self):
        snap = self._populated().snapshot()
        text = snap.render()
        for name in (
            "mtree.nodes_accessed",
            "pager.writes",
            "tree.height",
            "query.seconds",
        ):
            assert name in text

    def test_render_empty_registry(self):
        assert "no metrics" in MetricsRegistry().snapshot().render()

    def test_load_merges_counters_and_histograms(self):
        reg = self._populated()
        snap = reg.snapshot()
        other = MetricsRegistry()
        other.load(snap)
        other.load(snap)
        assert other.counter_value("pager.writes") == 6  # counters add
        assert other.gauge_value("tree.height", tree="mtree") == 4
        assert other.histogram("query.seconds", kind="range").count == 2

    def test_reset_clears_everything(self):
        reg = self._populated()
        reg.reset()
        assert reg.snapshot().series == []
        assert len(reg) == 0


class TestInstallLifecycle:
    def test_default_state_is_disabled(self):
        from repro.observability import state

        assert state.registry is None
        assert state.tracer is None
        assert not observability.installed()

    def test_install_uninstall(self):
        reg = observability.install()
        assert observability.installed()
        assert observability.active_registry() is reg
        observability.uninstall()
        assert not observability.installed()
        assert observability.active_registry() is None

    def test_get_registry_installs_on_demand(self):
        reg = observability.get_registry()
        assert isinstance(reg, MetricsRegistry)
        assert observability.installed()
        assert observability.get_registry() is reg  # idempotent

    def test_snapshot_without_install_is_empty(self):
        assert observability.snapshot().series == []

    def test_install_with_tracing_level(self):
        observability.install(tracing="node")
        tracer = observability.active_tracer()
        assert tracer is not None
        assert tracer.trace_nodes
        assert not tracer.trace_distances
        observability.uninstall()
