"""Registry/tracer thread safety and mid-flight install/uninstall flips.

CPython's ``dict[k] = dict.get(k, 0) + v`` is a read-modify-write; under
free-running threads an unlocked registry loses increments.  These tests
hammer the locked implementation and assert exact totals, and exercise
the memory-model contract documented in ``repro.observability.state``:
flipping the flag mid-flight never corrupts, because hot paths snapshot
the registry reference once per operation.
"""

from __future__ import annotations

import threading

from hypothesis import given
from hypothesis import strategies as st

from repro import observability
from repro.observability import MetricsRegistry, Tracer


def run_threads(n, target):
    barrier = threading.Barrier(n)

    def wrapped(index):
        barrier.wait()  # maximise interleaving
        target(index)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestRegistryHammer:
    def test_no_lost_increments(self):
        registry = MetricsRegistry()
        per_thread, n_threads = 5_000, 8

        def worker(_index):
            for _ in range(per_thread):
                registry.inc("hammer.counter")

        run_threads(n_threads, worker)
        assert registry.counter_value("hammer.counter") == (
            per_thread * n_threads
        )

    @given(
        increments=st.lists(
            st.lists(
                st.integers(min_value=1, max_value=100),
                min_size=1,
                max_size=50,
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_total_equals_sum_of_per_thread_increments(self, increments):
        """Property: whatever each thread adds, the counter is the sum."""
        registry = MetricsRegistry()

        def worker(index):
            for value in increments[index]:
                registry.inc("property.counter", value)

        run_threads(len(increments), worker)
        expected = sum(sum(chunk) for chunk in increments)
        assert registry.counter_value("property.counter") == expected

    def test_labelled_series_do_not_cross_contaminate(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(2_000):
                registry.inc("labelled", worker=index % 2)

        run_threads(8, worker)
        total = registry.counter_value(
            "labelled", worker=0
        ) + registry.counter_value("labelled", worker=1)
        assert total == 16_000
        assert registry.counter_total("labelled") == 16_000

    def test_histograms_under_contention(self):
        registry = MetricsRegistry()

        def worker(index):
            for i in range(2_000):
                registry.observe("h", float(i % 10))

        run_threads(8, worker)
        hist = registry.histogram("h")
        assert hist.count == 16_000
        assert sum(hist.bucket_counts) == 16_000

    def test_snapshot_is_consistent_under_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                registry.inc("pair.a")
                registry.inc("pair.b")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                a = snap.get("pair.a")
                b = snap.get("pair.b")
                # a is always incremented first; a consistent cut can
                # differ by at most the one in-flight pair.
                assert 0 <= a - b <= 1
        finally:
            stop.set()
            thread.join()


class TestTracerThreads:
    def test_spans_nest_per_thread(self):
        tracer = Tracer(detail="distance")

        def worker(index):
            for _ in range(200):
                with tracer.span(f"outer-{index}"):
                    with tracer.span(f"inner-{index}"):
                        pass

        run_threads(8, worker)
        assert len(tracer.spans) == 8 * 200 * 2
        assert tracer.dropped == 0
        # Parent links never cross threads: every inner span's parent is
        # an outer span of the same thread (same index suffix).
        by_id = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            if span.name.startswith("inner"):
                parent = by_id[span.parent_id]
                assert parent.name == span.name.replace("inner", "outer")
                assert span.depth == 1
        assert tracer._stack == []

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def worker(_index):
            for _ in range(500):
                with tracer.span("s"):
                    pass

        run_threads(8, worker)
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_bounded_buffer_exact_drop_accounting(self):
        tracer = Tracer(max_spans=100)

        def worker(_index):
            for _ in range(100):
                with tracer.span("s"):
                    pass

        run_threads(8, worker)
        assert len(tracer.spans) == 100
        assert tracer.dropped == 700


class TestMidFlightFlips:
    def test_install_uninstall_while_querying(self, small_tree):
        """Flipping observability under live queries neither crashes nor
        corrupts; in-flight queries keep their snapshotted registry."""
        import numpy as np

        query = np.zeros(small_tree.layout.object_bytes // 4)
        stop = threading.Event()
        errors = []

        def querier():
            try:
                while not stop.is_set():
                    small_tree.range_query(query, 0.3)
            except Exception as exc:  # noqa: BLE001 — the test's assertion
                errors.append(exc)

        threads = [threading.Thread(target=querier) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                observability.install()
                observability.snapshot()
                observability.reset()
                observability.uninstall()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert observability.active_registry() is None

    def test_flipped_out_registry_keeps_its_data(self):
        first = observability.install()
        try:
            first.inc("kept")
            second = observability.install()  # replaces `first`
            second.inc("fresh")
            assert first.counter_value("kept") == 1
            assert first.counter_value("fresh") == 0
            assert observability.active_registry() is second
        finally:
            observability.uninstall()
