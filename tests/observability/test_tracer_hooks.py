"""Unit tests for the span tracer and the profiling hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.exceptions import InvalidParameterError
from repro.metrics import L2
from repro.mtree import NodeLayout, bulk_load
from repro.observability import Tracer, profile, profiled


class TestTracer:
    def test_nesting_and_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        assert len(tracer.spans) == 2
        assert tracer.roots() == [outer]

    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("op", radius=0.25) as span:
            span.set(nodes=3)
        assert span.duration_s is not None and span.duration_s >= 0
        assert span.attributes == {"radius": 0.25, "nodes": 3}

    def test_detail_levels(self):
        assert not Tracer(detail="query").trace_nodes
        node = Tracer(detail="node")
        assert node.trace_nodes and not node.trace_distances
        dist = Tracer(detail="distance")
        assert dist.trace_nodes and dist.trace_distances

    def test_invalid_detail_rejected(self):
        with pytest.raises(InvalidParameterError):
            Tracer(detail="verbose")

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.render()

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.spans == [] and tracer.dropped == 0
        assert "(no spans recorded)" in tracer.render()

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")

    def test_span_closed_even_on_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                # metalint: ignore[exception-hierarchy] — deliberately
                # foreign error: spans must close on *any* exception type
                raise ValueError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].duration_s is not None
        assert tracer._stack == []


class TestQuerySpans:
    """Instrumented M-tree queries produce the documented span tree."""

    @pytest.fixture()
    def tree(self):
        points = np.random.default_rng(42).random((200, 3))
        layout = NodeLayout(node_size_bytes=256, object_bytes=16)
        return bulk_load(points, L2(), layout, seed=1)

    def test_query_detail_yields_one_root_span(self, tree):
        observability.install(tracing="query")
        tracer = observability.active_tracer()
        tree.range_query(np.full(3, 0.5), 0.3)
        roots = tracer.roots()
        assert [s.name for s in roots] == ["mtree.range_query"]
        assert roots[0].attributes["nodes"] >= 1
        assert roots[0].attributes["dists"] >= 1

    def test_node_detail_yields_node_children(self, tree):
        observability.install(tracing="node")
        tracer = observability.active_tracer()
        result = tree.range_query(np.full(3, 0.5), 0.3)
        visits = [s for s in tracer.spans if s.name == "mtree.node_visit"]
        assert len(visits) == result.stats.nodes_accessed
        root = tracer.roots()[0]
        assert all(s.parent_id == root.span_id for s in visits)

    def test_distance_detail_yields_eval_grandchildren(self, tree):
        observability.install(tracing="distance")
        tracer = observability.active_tracer()
        result = tree.range_query(np.full(3, 0.5), 0.3)
        evals = [s for s in tracer.spans if s.name == "mtree.distance_eval"]
        assert evals, "distance detail should record distance_eval spans"
        assert sum(s.attributes["n"] for s in evals) == (
            result.stats.dists_computed
        )
        visit_ids = {
            s.span_id for s in tracer.spans if s.name == "mtree.node_visit"
        }
        assert all(s.parent_id in visit_ids for s in evals)


class TestProfilingHooks:
    def test_profile_records_histogram(self, installed_registry):
        with profile("build"):
            pass
        hist = installed_registry.histogram("profile.seconds", name="build")
        assert hist is not None and hist.count == 1

    def test_profile_labels(self, installed_registry):
        with profile("query", kind="range"):
            pass
        hist = installed_registry.histogram(
            "profile.seconds", name="query", kind="range"
        )
        assert hist is not None and hist.count == 1

    def test_profiled_decorator_uses_function_name(self, installed_registry):
        @profiled()
        def expensive():
            return 41 + 1

        assert expensive() == 42
        hist = installed_registry.histogram(
            "profile.seconds", name=expensive.__qualname__
        )
        assert hist is not None and hist.count == 1

    def test_profiled_decorator_explicit_name(self, installed_registry):
        @profiled("custom")
        def fn():
            return "ok"

        assert fn() == "ok"
        assert installed_registry.histogram(
            "profile.seconds", name="custom"
        ).count == 1

    def test_profile_is_noop_when_uninstalled(self):
        with profile("anything"):
            pass  # must not raise, must not create a registry
        assert not observability.installed()

    def test_profile_opens_span_when_tracing(self):
        observability.install(tracing="query")
        with profile("step"):
            pass
        tracer = observability.active_tracer()
        assert [s.name for s in tracer.spans] == ["profile:step"]
