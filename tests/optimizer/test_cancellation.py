"""The optimizer's degradation ladder must not demote cancellation.

Companion to ``tests/workloads/test_cancellation.py``: a deadline
expiring inside a plan's estimator or executor used to be caught by the
broad demotion handlers and treated as "this plan is broken, try the
next one" — turning a cancelled query into a full ladder descent.  Both
stages now re-raise cancellation errors immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeadlineExceededError, OperationCancelledError
from repro.metrics import L2
from repro.optimizer import (
    AccessPlan,
    LinearScanPlan,
    PlanCostEstimate,
    SimilarityQueryOptimizer,
)
from repro.workloads import LinearScanBaseline


class DeadlinePlan(AccessPlan):
    """Raises a cancellation error at a configurable stage."""

    def __init__(self, stage, error_type=DeadlineExceededError):
        self.name = "deadline-probe"
        self.stage = stage
        self.error_type = error_type

    def _maybe_raise(self, stage):
        if stage == self.stage:
            raise self.error_type(f"budget spent during {stage}")

    def estimate_range(self, radius, disk):
        self._maybe_raise("estimate")
        return PlanCostEstimate(self.name, 0.0, 0.0, 0.0, 0.0)

    def estimate_knn(self, k, disk):
        return self.estimate_range(0.0, disk)

    def execute_range(self, query, radius, disk, deadline=None):
        self._maybe_raise("execute")
        raise AssertionError("unreachable in these tests")

    def execute_knn(self, query, k, disk, deadline=None):
        return self.execute_range(query, 0.0, disk, deadline)


@pytest.fixture()
def scan_plan():
    points = list(np.random.default_rng(0).random((50, 3)))
    return LinearScanPlan(LinearScanBaseline(points, L2(), 32, 4096))


class TestEstimateStage:
    def test_deadline_in_estimator_is_not_demoted(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [DeadlinePlan("estimate"), scan_plan]
        )
        with pytest.raises(DeadlineExceededError):
            optimizer.choose_range_plan(0.2)

    def test_cancellation_in_estimator_is_not_demoted(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [DeadlinePlan("estimate", OperationCancelledError), scan_plan]
        )
        with pytest.raises(OperationCancelledError):
            optimizer.choose_knn_plan(3)


class TestExecuteStage:
    def test_deadline_mid_rung_ends_the_ladder(self, scan_plan):
        """The scan rung must not run after cancellation: the ladder
        stops instead of descending to plans that cannot finish either.
        """
        optimizer = SimilarityQueryOptimizer(
            [DeadlinePlan("execute"), scan_plan]
        )
        query = np.zeros(3)
        with pytest.raises(DeadlineExceededError):
            optimizer.run_range(query, 0.2)
        choice = optimizer.choose_range_plan(0.2)
        assert choice.best.plan_name == "deadline-probe"
        assert choice.degraded == []

    def test_cancellation_mid_rung_ends_the_ladder(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [DeadlinePlan("execute", OperationCancelledError), scan_plan]
        )
        with pytest.raises(OperationCancelledError):
            optimizer.run_knn(np.zeros(3), 3)
