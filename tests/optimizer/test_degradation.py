"""Tests for graceful cost-model degradation in the optimizer.

The ladder: a plan whose estimator raises is demoted into
``PlanChoice.degraded``; a chosen plan that raises at execution time hands
over to the next ranked plan; and with every estimator broken, the linear
scan (which needs no statistics) still answers the query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    CorruptedDataError,
    InvalidParameterError,
    IOFaultError,
    MetricostError,
)
from repro.metrics import L2
from repro.optimizer import (
    AccessPlan,
    LinearScanPlan,
    PlanChoice,
    PlanCostEstimate,
    SimilarityQueryOptimizer,
)
from repro.storage import DiskModel
from repro.workloads import LinearScanBaseline


class BrokenEstimatePlan(AccessPlan):
    """Estimator raises — as if its statistics artifact failed to load."""

    def __init__(self, name="broken-estimate", error=None):
        self.name = name
        self.error = error or CorruptedDataError("stats artifact corrupt")

    def estimate_range(self, radius, disk):
        raise self.error

    def estimate_knn(self, k, disk):
        raise self.error

    def execute_range(self, query, radius, disk):
        raise AssertionError("must never be chosen")

    def execute_knn(self, query, k, disk):
        raise AssertionError("must never be chosen")


class CheapButFailingPlan(AccessPlan):
    """Estimates near-zero cost, then faults at execution time."""

    def __init__(self):
        self.name = "cheap-liar"
        self.executions = 0

    def _estimate(self):
        return PlanCostEstimate(self.name, 0.0, 0.0, 0.0, 0.0)

    def estimate_range(self, radius, disk):
        return self._estimate()

    def estimate_knn(self, k, disk):
        return self._estimate()

    def execute_range(self, query, radius, disk):
        self.executions += 1
        raise IOFaultError("device gone")

    def execute_knn(self, query, k, disk):
        self.executions += 1
        raise IOFaultError("device gone")


@pytest.fixture()
def points():
    return list(np.random.default_rng(0).random((200, 4)))


@pytest.fixture()
def scan_plan(points):
    return LinearScanPlan(LinearScanBaseline(points, L2(), 32, 4096))


class TestEstimateDegradation:
    def test_broken_plan_demoted_not_fatal(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [BrokenEstimatePlan(), scan_plan]
        )
        choice = optimizer.choose_range_plan(0.2)
        assert choice.best.plan_name == "linear-scan"
        assert len(choice.degraded) == 1
        demoted = choice.degraded[0]
        assert demoted.plan_name == "broken-estimate"
        assert demoted.stage == "estimate"
        assert "CorruptedDataError" in demoted.error

    def test_knn_degradation(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [BrokenEstimatePlan(), scan_plan]
        )
        choice = optimizer.choose_knn_plan(3)
        assert choice.best.plan_name == "linear-scan"
        assert choice.degraded[0].stage == "estimate"

    def test_healthy_catalog_has_empty_degraded(self, scan_plan):
        optimizer = SimilarityQueryOptimizer([scan_plan])
        choice = optimizer.choose_range_plan(0.2)
        assert choice.degraded == []

    def test_all_estimators_broken_falls_back_to_scan(self, points):
        """Even the scan's estimator can break; it is still returned
        (at infinite cost) because it can execute without statistics."""

        class BrokenScan(LinearScanPlan):
            def estimate_range(self, radius, disk):
                # metalint: ignore[exception-hierarchy] — deliberately
                # foreign fault: degradation must survive untyped errors
                raise ZeroDivisionError("disk model exploded")

        scan = BrokenScan(LinearScanBaseline(points, L2(), 32, 4096))
        optimizer = SimilarityQueryOptimizer([BrokenEstimatePlan(), scan])
        choice = optimizer.choose_range_plan(0.2)
        assert choice.best.plan_name == "linear-scan"
        assert choice.best.total_ms == float("inf")
        assert len(choice.degraded) == 2
        # ... and the query is still answerable end to end.
        outcome = optimizer.run_range(np.zeros(4), 0.5)
        assert outcome.plan_name == "linear-scan"

    def test_no_plans_at_all_still_raises(self):
        """Degradation never silently invents capacity: a catalog with no
        working plan and no linear scan keeps the loud failure."""
        optimizer = SimilarityQueryOptimizer([BrokenEstimatePlan()])
        with pytest.raises(InvalidParameterError):
            optimizer.choose_range_plan(0.2)

    def test_invalid_radius_still_validated(self, scan_plan):
        optimizer = SimilarityQueryOptimizer([scan_plan])
        with pytest.raises(InvalidParameterError):
            optimizer.choose_range_plan(-1.0)


class TestExecuteDegradation:
    def test_execution_fault_hands_over_to_next_plan(self, scan_plan):
        liar = CheapButFailingPlan()
        optimizer = SimilarityQueryOptimizer([liar, scan_plan])
        outcome = optimizer.run_range(np.zeros(4), 0.5)
        assert outcome.plan_name == "linear-scan"
        assert liar.executions == 1

    def test_knn_execution_fault_hands_over(self, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [CheapButFailingPlan(), scan_plan]
        )
        outcome = optimizer.run_knn(np.zeros(4), 3)
        assert outcome.plan_name == "linear-scan"
        assert len(outcome.items) == 3

    def test_every_plan_failing_raises_metricost_error(self):
        optimizer = SimilarityQueryOptimizer([CheapButFailingPlan()])
        with pytest.raises(MetricostError):
            optimizer.run_range(np.zeros(4), 0.5)

    def test_results_identical_to_direct_scan(self, points, scan_plan):
        optimizer = SimilarityQueryOptimizer(
            [CheapButFailingPlan(), scan_plan]
        )
        query = np.full(4, 0.5)
        via_ladder = optimizer.run_range(query, 0.3)
        direct = scan_plan.execute_range(query, 0.3, DiskModel())
        assert sorted(i for i, _o, _d in via_ladder.items) == sorted(
            i for i, _o, _d in direct.items
        )


class TestPlanChoiceCompat:
    def test_positional_construction_still_works(self):
        estimate = PlanCostEstimate("x", 1.0, 1.0, 1.0, 1.0)
        choice = PlanChoice([estimate])
        assert choice.best is estimate
        assert choice.degraded == []
