"""Tests for cost-based plan selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NodeBasedCostModel,
    VPTreeCostModel,
    estimate_distance_histogram,
)
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError
from repro.mtree import bulk_load, collect_node_stats, vector_layout
from repro.optimizer import (
    LinearScanPlan,
    MTreeRangePlan,
    SimilarityQueryOptimizer,
    VPTreeRangePlan,
)
from repro.storage import DiskModel
from repro.vptree import VPTree
from repro.workloads import LinearScanBaseline


@pytest.fixture(scope="module")
def catalog():
    data = clustered_dataset(2500, 8, seed=1)
    hist = estimate_distance_histogram(
        data.points, data.metric, data.d_plus, n_bins=100
    )
    mtree = bulk_load(data.points, data.metric, vector_layout(8), seed=2)
    mtree_model = NodeBasedCostModel(
        hist, collect_node_stats(mtree, data.d_plus), data.size
    )
    vptree = VPTree.build(list(data.points), data.metric, arity=3, seed=3)
    vptree_model = VPTreeCostModel(hist, data.size, arity=3)
    baseline = LinearScanBaseline(list(data.points), data.metric, 32, 4096)
    plans = [
        MTreeRangePlan(mtree, mtree_model),
        VPTreeRangePlan(vptree, vptree_model),
        LinearScanPlan(baseline),
    ]
    disk = DiskModel(positioning_ms=10.0, transfer_ms_per_kb=1.0, distance_ms=5.0)
    return data, SimilarityQueryOptimizer(plans, disk)


class TestChoice:
    def test_ranks_all_plans(self, catalog):
        _data, optimizer = catalog
        choice = optimizer.choose_range_plan(0.1)
        assert len(choice.ranked) == 3
        totals = [estimate.total_ms for estimate in choice.ranked]
        assert totals == sorted(totals)
        assert choice.best.total_ms == totals[0]

    def test_index_wins_selective_query(self, catalog):
        """At tiny radius the M-tree/vp-tree must beat the scan."""
        _data, optimizer = catalog
        choice = optimizer.choose_range_plan(0.02)
        assert choice.best.plan_name != "linear-scan"

    def test_scan_wins_unselective_query(self, catalog):
        """At radius ~ d_plus every index visits everything plus overhead;
        the sequential scan is predicted cheapest."""
        _data, optimizer = catalog
        choice = optimizer.choose_range_plan(0.95)
        scan = choice.estimate_for("linear-scan")
        mtree = choice.estimate_for("mtree")
        assert scan is not None and mtree is not None
        assert scan.total_ms <= mtree.total_ms

    def test_knn_choice(self, catalog):
        _data, optimizer = catalog
        choice = optimizer.choose_knn_plan(1)
        assert choice.best.plan_name in ("mtree", "vptree")

    def test_estimate_for_unknown(self, catalog):
        _data, optimizer = catalog
        choice = optimizer.choose_range_plan(0.1)
        assert choice.estimate_for("nonexistent") is None


class TestExecution:
    def test_run_range_returns_correct_answer(self, catalog):
        data, optimizer = catalog
        rng = np.random.default_rng(4)
        query = rng.random(8)
        outcome = optimizer.run_range(query, 0.15)
        expected = sorted(
            i
            for i, p in enumerate(data.points)
            if data.metric.distance(query, p) <= 0.15
        )
        assert sorted(i for i, _o, _d in outcome.items) == expected
        assert outcome.actual_ms > 0

    def test_answers_identical_across_plans(self, catalog):
        """Every plan must return the same result set (physical choice
        cannot change semantics)."""
        data, optimizer = catalog
        rng = np.random.default_rng(5)
        query = rng.random(8)
        results = {
            plan.name: sorted(
                i
                for i, _o, _d in plan.execute_range(
                    query, 0.12, optimizer.disk
                ).items
            )
            for plan in optimizer.plans
        }
        assert len(set(map(tuple, results.values()))) == 1

    def test_run_knn(self, catalog):
        data, optimizer = catalog
        query = np.random.default_rng(6).random(8)
        outcome = optimizer.run_knn(query, 3)
        assert len(outcome.items) == 3

    def test_prediction_tracks_execution_for_chosen_plan(self, catalog):
        """The winner's predicted cost should be within a factor of the
        cost it actually pays."""
        data, optimizer = catalog
        rng = np.random.default_rng(7)
        for radius in (0.05, 0.2):
            choice = optimizer.choose_range_plan(radius)
            plan = optimizer._plan_by_name(choice.best.plan_name)
            actual = np.mean(
                [
                    plan.execute_range(
                        rng.random(8), radius, optimizer.disk
                    ).actual_ms
                    for _ in range(10)
                ]
            )
            assert 0.3 * actual < choice.best.total_ms < 3.0 * actual


class TestCrossover:
    def test_crossover_exists(self, catalog):
        """Somewhere between selective and unselective radii the winner
        flips from an index to the scan."""
        _data, optimizer = catalog
        crossover = optimizer.range_crossover_radius(
            "mtree", "linear-scan", 0.01, 1.0
        )
        assert crossover is not None
        assert 0.01 < crossover < 1.0
        # On either side of the crossover the predicted order flips.
        below = optimizer.choose_range_plan(crossover * 0.5)
        above = optimizer.choose_range_plan(min(1.0, crossover * 1.5))
        below_mtree = below.estimate_for("mtree").total_ms
        below_scan = below.estimate_for("linear-scan").total_ms
        above_mtree = above.estimate_for("mtree").total_ms
        above_scan = above.estimate_for("linear-scan").total_ms
        assert (below_mtree < below_scan) != (above_mtree < above_scan)

    def test_invalid_crossover_window(self, catalog):
        _data, optimizer = catalog
        with pytest.raises(InvalidParameterError):
            optimizer.range_crossover_radius("mtree", "linear-scan", 0.5, 0.1)


class TestExplain:
    def test_explain_range_lists_all_plans(self, catalog):
        _data, optimizer = catalog
        text = optimizer.explain_range(0.1)
        assert "EXPLAIN range" in text
        for name in ("mtree", "vptree", "linear-scan"):
            assert name in text
        # Cheapest plan is marked.
        assert "-> 1." in text

    def test_explain_ranks_cheapest_first(self, catalog):
        _data, optimizer = catalog
        text = optimizer.explain_range(0.05)
        first_line = [
            line for line in text.splitlines() if line.startswith("->")
        ][0]
        assert optimizer.choose_range_plan(0.05).best.plan_name in first_line

    def test_explain_knn(self, catalog):
        _data, optimizer = catalog
        text = optimizer.explain_knn(3)
        assert "EXPLAIN NN(Q, 3)" in text
        assert "-> 1." in text


class TestValidation:
    def test_empty_plans_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimilarityQueryOptimizer([])

    def test_duplicate_names_rejected(self, catalog):
        data, optimizer = catalog
        with pytest.raises(InvalidParameterError):
            SimilarityQueryOptimizer([optimizer.plans[0], optimizer.plans[0]])

    def test_negative_radius(self, catalog):
        _data, optimizer = catalog
        with pytest.raises(InvalidParameterError):
            optimizer.choose_range_plan(-0.1)
        with pytest.raises(InvalidParameterError):
            optimizer.choose_knn_plan(0)
