"""Tests for the ``python -m repro doctor`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main
from repro.core import DistanceHistogram
from repro.persistence import save_histogram
from repro.reliability import render_doctor, run_doctor
from repro.reliability.doctor import flip_body_bit

EXPECTED_CHECKS = {
    "checksum round-trip",
    "bit-flip detection",
    "version gate",
    "truncation detection",
    "fault injection",
    "retry recovery",
    "degradation ladder",
    "crash recovery",
    "workload isolation",
    "structural fsck",
    "scrub quarantine",
    "router partial answers",
    "lifecycle gc",
    "ingest wal",
    "static analysis",
}


class TestParser:
    def test_doctor_subcommand_exists(self):
        args = build_parser().parse_args(["doctor"])
        assert args.experiment == "doctor"
        assert args.artifacts is None
        assert args.seed == 0

    def test_doctor_flags(self):
        args = build_parser().parse_args(
            ["doctor", "--artifacts", "/tmp/a", "--seed", "3"]
        )
        assert args.artifacts == "/tmp/a"
        assert args.seed == 3


class TestSelfTest:
    def test_all_checks_pass(self):
        checks, reports = run_doctor(seed=0)
        assert {check.name for check in checks} == EXPECTED_CHECKS
        failing = [check for check in checks if not check.ok]
        assert failing == []
        assert reports == []

    def test_detects_bit_flipped_histogram(self):
        """The acceptance criterion: the doctor's own self-test flips a
        bit in a saved histogram and the checksum catches it."""
        checks, _reports = run_doctor(seed=1)
        by_name = {check.name: check for check in checks}
        flip = by_name["bit-flip detection"]
        assert flip.ok
        assert "checksum mismatch" in flip.detail

    def test_render_shape(self):
        checks, reports = run_doctor(seed=0)
        text = render_doctor(checks, reports)
        assert "doctor: healthy" in text
        for name in EXPECTED_CHECKS:
            assert name in text


class TestArtifactScan:
    def test_sound_directory(self, tmp_path):
        save_histogram(DistanceHistogram.uniform(16, 1.0), tmp_path / "a.json")
        checks, reports = run_doctor(artifacts_dir=str(tmp_path), seed=0)
        assert len(reports) == 1
        assert reports[0].ok
        assert "1/1 sound" in render_doctor(checks, reports)

    def test_corrupted_artifact_reported(self, tmp_path):
        save_histogram(DistanceHistogram.uniform(16, 1.0), tmp_path / "a.json")
        save_histogram(DistanceHistogram.uniform(16, 1.0), tmp_path / "b.json")
        flip_body_bit(tmp_path / "b.json")
        _checks, reports = run_doctor(artifacts_dir=str(tmp_path), seed=0)
        by_path = {report.path: report for report in reports}
        assert by_path[str(tmp_path / "a.json")].ok
        bad = by_path[str(tmp_path / "b.json")]
        assert not bad.ok
        assert "checksum" in bad.error

    def test_non_artifact_json_flagged(self, tmp_path):
        (tmp_path / "junk.json").write_text("not json at all")
        _checks, reports = run_doctor(artifacts_dir=str(tmp_path), seed=0)
        assert len(reports) == 1
        assert not reports[0].ok


class TestCLI:
    def test_doctor_exit_zero_when_healthy(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "doctor: healthy" in out
        assert "bit-flip detection" in out

    def test_doctor_exit_nonzero_on_corruption(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        save_histogram(DistanceHistogram.uniform(16, 1.0), path)
        flip_body_bit(path)
        assert main(["doctor", "--artifacts", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "PROBLEMS FOUND" in out
        assert str(path) in out

    def test_experiments_unaffected(self):
        """The doctor subparser must not disturb experiment parsing."""
        args = build_parser().parse_args(["figure1", "--quick"])
        assert args.experiment == "figure1"
        assert args.quick


class TestLegacyArtifacts:
    def test_scan_accepts_legacy_files(self, tmp_path):
        from repro.persistence import histogram_to_dict

        payload = histogram_to_dict(DistanceHistogram.uniform(8, 1.0))
        (tmp_path / "old.json").write_text(json.dumps(payload))
        _checks, reports = run_doctor(artifacts_dir=str(tmp_path), seed=0)
        assert reports[0].ok
        assert not reports[0].checksummed
