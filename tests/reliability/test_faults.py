"""Tests for the deterministic fault injector and the faulty page store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, IOFaultError
from repro.reliability import (
    CorruptedPayload,
    FaultPolicy,
    FaultyPageStore,
    TornPage,
)
from repro.storage import PageStore


class TestFaultPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_fail_rate": -0.1},
            {"read_fail_rate": 1.5},
            {"write_fail_rate": 2.0},
            {"torn_write_rate": -1.0},
            {"corrupt_rate": 1.0001},
        ],
    )
    def test_rates_validated(self, kwargs):
        with pytest.raises(InvalidParameterError):
            FaultPolicy(**kwargs)

    def test_deterministic_given_seed(self):
        first = FaultPolicy(read_fail_rate=0.3, seed=7)
        second = FaultPolicy(read_fail_rate=0.3, seed=7)
        draws_first = [first.next_read_fails() for _ in range(200)]
        draws_second = [second.next_read_fails() for _ in range(200)]
        assert draws_first == draws_second
        assert any(draws_first) and not all(draws_first)

    def test_clone_replays_schedule(self):
        policy = FaultPolicy(read_fail_rate=0.5, seed=11)
        schedule = [policy.next_read_fails() for _ in range(50)]
        clone = policy.clone()
        assert [clone.next_read_fails() for _ in range(50)] == schedule

    def test_zero_rate_consumes_no_randomness(self):
        """Zero-rate draws must not advance the stream: the read-fault
        schedule is identical whether or not corruption draws happen."""
        lone = FaultPolicy(read_fail_rate=0.4, seed=3)
        mixed = FaultPolicy(read_fail_rate=0.4, corrupt_rate=0.0, seed=3)
        for _ in range(100):
            assert mixed.next_read_corrupts() is False
            assert lone.next_read_fails() == mixed.next_read_fails()

    def test_extreme_rates_short_circuit(self):
        policy = FaultPolicy(read_fail_rate=1.0, write_fail_rate=0.0)
        assert all(policy.next_read_fails() for _ in range(20))
        assert not any(policy.next_write_fails() for _ in range(20))


class TestCorruption:
    def test_ndarray_corrupted_copy(self):
        policy = FaultPolicy(seed=1)
        original = np.arange(6, dtype=np.float64).reshape(2, 3)
        snapshot = original.copy()
        corrupted = policy.corrupt(original)
        np.testing.assert_array_equal(original, snapshot)  # copy, not inplace
        assert corrupted.shape == original.shape
        assert (corrupted != original).sum() == 1

    @pytest.mark.parametrize(
        "payload",
        [b"hello world", "routing entry", 42, 1.5, [1.0, 2.0], (3, 4), True],
    )
    def test_simple_payloads_change(self, payload):
        corrupted = FaultPolicy(seed=2).corrupt(payload)
        assert corrupted != payload

    def test_opaque_payload_wrapped(self):
        sentinel = object()
        corrupted = FaultPolicy(seed=3).corrupt(sentinel)
        assert isinstance(corrupted, CorruptedPayload)
        assert corrupted.original is sentinel


class TestFaultyPageStore:
    def _stores(self, **rates):
        inner = PageStore(page_size_bytes=4096, buffer_pages=0)
        return inner, FaultyPageStore(inner, FaultPolicy(seed=5, **rates))

    def test_zero_rates_identical_to_plain_store(self):
        """Rate 0.0 must be a byte-for-byte pass-through, payloads and
        accounting both."""
        rng = np.random.default_rng(0)
        payloads = [rng.random(8) for _ in range(40)]
        plain = PageStore(page_size_bytes=4096)
        _inner, gated = self._stores()
        for payload in payloads:
            assert plain.allocate(payload) == gated.allocate(payload)
        for page_id in range(len(payloads)):
            np.testing.assert_array_equal(
                plain.read(page_id), gated.read(page_id)
            )
        assert plain.stats == gated.stats
        assert len(plain) == len(gated)
        assert gated.fault_stats.read_faults == 0
        assert gated.fault_stats.corruptions == 0

    def test_read_fault_raises_before_data(self):
        _inner, store = self._stores(read_fail_rate=1.0)
        page = store.allocate(np.ones(3))
        with pytest.raises(IOFaultError):
            store.read(page)
        # The fault fired before the inner store was touched.
        assert store.stats.logical_reads == 0
        assert store.fault_stats.read_faults == 1

    def test_write_fault_leaves_store_unchanged(self):
        inner, store = self._stores(write_fail_rate=1.0)
        with pytest.raises(IOFaultError):
            store.allocate(np.ones(3))
        assert len(inner) == 0
        assert store.fault_stats.write_faults == 1

    def test_torn_write_persists_prefix(self):
        _inner, store = self._stores(torn_write_rate=1.0)
        page = store.allocate(np.arange(10.0))
        payload = store.read(page)
        assert isinstance(payload, TornPage)
        np.testing.assert_array_equal(payload.prefix, np.arange(5.0))
        assert store.fault_stats.torn_writes == 1

    def test_silent_corruption_on_read(self):
        _inner, store = self._stores(corrupt_rate=1.0)
        original = np.arange(4.0)
        page = store.allocate(original.copy())
        corrupted = store.read(page)
        assert (corrupted != original).any()
        # The stored page itself is pristine — the corruption was in
        # transit, as a device would deliver it.
        _, clean = self._stores()
        assert store.fault_stats.corruptions == 1

    def test_fault_rate_approximately_respected(self):
        _inner, store = self._stores(read_fail_rate=0.25)
        page = store.allocate(1.0)
        failures = 0
        for _ in range(400):
            try:
                store.read(page)
            except IOFaultError:
                failures += 1
        assert 0.15 < failures / 400 < 0.35
