"""Structural fsck: detection of every injected fault kind, page-graph
verification, and bulkload-based repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import Deadline
from repro.datasets import clustered_dataset
from repro.exceptions import (
    DeadlineExceededError,
    EmptyTreeError,
    InvalidParameterError,
    StructuralCorruptionError,
)
from repro.mtree import MTree, bulk_load, vector_layout
from repro.reliability import (
    FAULT_KINDS,
    QuarantineSet,
    StructuralFaultInjector,
    fsck_mtree,
    fsck_page_graph,
    fsck_vptree,
    loads_artifact,
    materialize_page_graph,
    mtree_scrub_units,
    repair_mtree,
    vptree_scrub_units,
)
from repro.service import GenerationStore
from repro.storage import PageStore
from repro.vptree import VPTree

CORPUS_SEEDS = (0, 1, 2, 3, 4)
MTREE_INJECTIONS = (
    ("shrink_radius", "radius_violation"),
    ("skew_parent_distance", "parent_distance_skew"),
    ("drop_entry", "object_count_mismatch"),
)


def make_mtree(size=300, dim=3, seed=0):
    data = clustered_dataset(size=size, dim=dim, seed=seed)
    tree = bulk_load(data.points, data.metric, vector_layout(dim), seed=seed)
    return data, tree


def make_vptree(size=300, dim=3, seed=0):
    data = clustered_dataset(size=size, dim=dim, seed=seed)
    tree = VPTree.build(list(data.points), data.metric, arity=3, seed=seed)
    return data, tree


# ---------------------------------------------------------------------------
# clean trees pass
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_clean_mtree_passes(seed):
    _, tree = make_mtree(seed=seed)
    report = fsck_mtree(tree)
    assert report.ok
    assert report.faults == []
    assert report.tree_kind == "mtree"
    assert report.nodes_checked == len(mtree_scrub_units(tree))
    assert report.objects_seen == len(tree)
    report.raise_if_bad()  # no-op when clean


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_clean_vptree_passes(seed):
    _, tree = make_vptree(seed=seed)
    report = fsck_vptree(tree)
    assert report.ok
    assert report.nodes_checked == len(vptree_scrub_units(tree))
    assert report.objects_seen == len(tree)


def test_fsck_after_dynamic_inserts():
    data, tree = make_mtree(size=200, seed=7)
    rng = np.random.default_rng(7)
    for oid in range(200, 260):
        tree.insert(rng.random(3), oid)
    assert fsck_mtree(tree).ok


# ---------------------------------------------------------------------------
# detection: 100% of injected corruption across a seeded corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
@pytest.mark.parametrize("method,expected", MTREE_INJECTIONS)
def test_mtree_injection_detected(seed, method, expected):
    _, tree = make_mtree(seed=seed)
    record = getattr(StructuralFaultInjector(seed=seed), method)(tree)
    assert record["kind"] == expected
    report = fsck_mtree(tree)
    assert not report.ok
    assert expected in report.kinds()


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_vptree_injection_detected(seed):
    _, tree = make_vptree(seed=seed)
    record = StructuralFaultInjector(seed=seed).shrink_cutoff(tree)
    assert record["kind"] == "cutoff_violation"
    report = fsck_vptree(tree)
    assert not report.ok
    assert "cutoff_violation" in report.kinds()


def test_report_raise_if_bad_carries_faults():
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).shrink_radius(tree)
    report = fsck_mtree(tree)
    with pytest.raises(StructuralCorruptionError) as excinfo:
        report.raise_if_bad()
    assert excinfo.value.faults == report.faults
    assert "radius_violation" in str(excinfo.value)


def test_fault_kinds_vocabulary():
    assert len(set(FAULT_KINDS)) == len(FAULT_KINDS)
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).skew_parent_distance(tree)
    for fault in fsck_mtree(tree).faults:
        assert fault.kind in FAULT_KINDS
        doc = fault.to_dict()
        assert doc["kind"] == fault.kind
        assert doc["where"]


def test_report_to_dict_and_render():
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).shrink_radius(tree)
    report = fsck_mtree(tree)
    doc = report.to_dict()
    assert doc["ok"] is False
    assert doc["tree_kind"] == "mtree"
    assert len(doc["faults"]) == len(report.faults)
    assert "radius_violation" in report.render()


def test_fsck_respects_deadline():
    _, tree = make_mtree()
    with pytest.raises(DeadlineExceededError):
        fsck_mtree(tree, deadline=Deadline.after(0.0))


def test_injector_requires_candidates():
    # A single-node tree has no routing entries to damage.
    data = clustered_dataset(size=5, dim=3, seed=0)
    tree = bulk_load(data.points, data.metric, vector_layout(3), seed=0)
    with pytest.raises(InvalidParameterError):
        StructuralFaultInjector(seed=0).shrink_radius(tree)


# ---------------------------------------------------------------------------
# page graph
# ---------------------------------------------------------------------------


def _page_graph(seed=0):
    _, tree = make_mtree(seed=seed)
    store = PageStore(page_size_bytes=4096)
    root = materialize_page_graph(tree, store)
    return store, root


def test_clean_page_graph_passes():
    store, root = _page_graph()
    report = fsck_page_graph(store, root)
    assert report.ok
    assert report.nodes_checked == len(store.page_ids())


def test_materialize_empty_tree_rejected():
    data = clustered_dataset(size=5, dim=3, seed=0)
    empty = MTree(data.metric, vector_layout(3))
    with pytest.raises(EmptyTreeError):
        materialize_page_graph(empty, PageStore(page_size_bytes=4096))


@pytest.mark.parametrize(
    "method,expected",
    [
        ("inject_orphan_page", "orphan_page"),
        ("inject_dangling_ref", "dangling_page_ref"),
        ("inject_page_alias", "doubly_referenced_page"),
    ],
)
def test_page_graph_injection_detected(method, expected):
    store, root = _page_graph()
    record = getattr(StructuralFaultInjector(seed=0), method)(store)
    assert record["kind"] == expected
    report = fsck_page_graph(store, root)
    assert not report.ok
    assert expected in report.kinds()


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------


def _reference_answers(tree, data, n_queries=20):
    rng = np.random.default_rng(99)
    answers = []
    for _ in range(n_queries):
        query = rng.random(3)
        r = tree.range_query(query, 0.25 * data.d_plus)
        k = tree.knn_query(query, 5)
        answers.append(
            (
                sorted(r.oids()),
                [(n.oid, round(n.distance, 12)) for n in k.neighbors],
            )
        )
    return answers


@pytest.mark.parametrize("method,expected", MTREE_INJECTIONS)
def test_repair_restores_clean_equivalent_tree(method, expected):
    data, tree = make_mtree(seed=2)
    getattr(StructuralFaultInjector(seed=2), method)(tree)
    assert not fsck_mtree(tree).ok
    outcome = repair_mtree(tree, seed=2)
    assert outcome.ok
    assert outcome.report.ok
    assert outcome.n_lost == (1 if method == "drop_entry" else 0)
    # The repaired tree must answer exactly like a fresh bulkload of the
    # same surviving objects.
    survivors = dict(tree.iter_objects())
    oids = sorted(survivors)
    fresh = bulk_load(
        [survivors[oid] for oid in oids],
        data.metric,
        tree.layout,
        seed=2,
        oids=oids,
    )
    assert _reference_answers(outcome.tree, data) == _reference_answers(
        fresh, data
    )
    assert "repair" in outcome.render()


def test_repair_preserves_answers_when_nothing_lost():
    data, tree = make_mtree(seed=3)
    before = _reference_answers(tree, data)
    StructuralFaultInjector(seed=3).shrink_radius(tree)
    outcome = repair_mtree(tree, seed=3)
    assert outcome.ok and outcome.n_lost == 0
    assert _reference_answers(outcome.tree, data) == before


def test_repair_commits_generation_and_clears_quarantine(tmp_path):
    data, tree = make_mtree(seed=1)
    StructuralFaultInjector(seed=1).shrink_radius(tree)
    quarantine = QuarantineSet()
    quarantine.add(tree._root)
    store = GenerationStore(tmp_path)
    outcome = repair_mtree(
        tree, seed=1, quarantine=quarantine, store=store
    )
    assert outcome.ok
    assert outcome.generation == store.generation is not None
    assert len(quarantine) == 0
    # The committed artifact is a valid checksummed envelope.
    payload = loads_artifact(store.load()["tree"], strict=True)
    assert payload["n_objects"] == len(outcome.tree)
