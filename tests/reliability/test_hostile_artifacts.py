"""Hostile-artifact tests: every loader must fail loudly, not weirdly.

For each persisted artifact kind (histogram, N-MCM/L-MCM stats, M-tree,
vp-tree) the loaders face: an empty file, truncated JSON, a wrong format
version, and a flipped bit — and must raise the matching
:class:`MetricostError` subclass every time.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DistanceHistogram, NodeStat
from repro.exceptions import (
    CorruptedDataError,
    FormatVersionError,
    MetricostError,
)
from repro.metrics import L2
from repro.mtree import NodeLayout, bulk_load
from repro.persistence import (
    _save_artifact,
    histogram_to_dict,
    load_histogram,
    load_mtree,
    load_stats,
    load_vptree,
    mtree_to_dict,
    save_histogram,
    save_mtree,
    save_stats,
    save_vptree,
    stats_to_dict,
    vptree_to_dict,
)
from repro.reliability.doctor import flip_body_bit
from repro.vptree import VPTree


def _sample_tree():
    rng = np.random.default_rng(0)
    points = rng.random((60, 3))
    layout = NodeLayout(node_size_bytes=256, object_bytes=12)
    return bulk_load(points, L2(), layout, seed=1)


def _sample_vptree():
    rng = np.random.default_rng(2)
    return VPTree.build(list(rng.random((60, 3))), L2(), arity=2, seed=3)


# (name, save(path), load(path), payload_dict()) per artifact kind.
ARTIFACTS = [
    (
        "histogram",
        lambda path: save_histogram(DistanceHistogram.uniform(32, 1.0), path),
        load_histogram,
        lambda: histogram_to_dict(DistanceHistogram.uniform(32, 1.0)),
    ),
    (
        "stats",
        lambda path: save_stats(
            path,
            node_stats=[NodeStat(radius=0.5, n_entries=3, level=1)],
            n_objects=10,
        ),
        load_stats,
        lambda: stats_to_dict(
            node_stats=[NodeStat(radius=0.5, n_entries=3, level=1)]
        ),
    ),
    (
        "mtree",
        lambda path: save_mtree(_sample_tree(), path),
        lambda path: load_mtree(path, L2()),
        lambda: mtree_to_dict(_sample_tree()),
    ),
    (
        "vptree",
        lambda path: save_vptree(_sample_vptree(), path),
        lambda path: load_vptree(path, L2()),
        lambda: vptree_to_dict(_sample_vptree()),
    ),
]

IDS = [name for name, _s, _l, _p in ARTIFACTS]


@pytest.mark.parametrize("name,save,load,payload", ARTIFACTS, ids=IDS)
class TestHostileArtifacts:
    def test_empty_file(self, tmp_path, name, save, load, payload):
        path = tmp_path / f"{name}.json"
        path.write_text("")
        with pytest.raises(CorruptedDataError):
            load(path)

    def test_truncated_json(self, tmp_path, name, save, load, payload):
        path = tmp_path / f"{name}.json"
        save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 3])
        with pytest.raises(CorruptedDataError):
            load(path)

    def test_flipped_bit(self, tmp_path, name, save, load, payload):
        path = tmp_path / f"{name}.json"
        save(path)
        flip_body_bit(path)
        with pytest.raises(CorruptedDataError) as excinfo:
            load(path)
        assert "checksum" in str(excinfo.value) or "crc32" in str(
            excinfo.value
        )

    def test_wrong_version(self, tmp_path, name, save, load, payload):
        doc = payload()
        doc["version"] = 999
        path = tmp_path / f"{name}.json"
        _save_artifact(doc, path)
        with pytest.raises(FormatVersionError) as excinfo:
            load(path)
        assert "expected version 1" in str(excinfo.value)
        assert "999" in str(excinfo.value)

    def test_missing_version_rejected(self, tmp_path, name, save, load, payload):
        doc = payload()
        del doc["version"]
        path = tmp_path / f"{name}.json"
        _save_artifact(doc, path)
        with pytest.raises(FormatVersionError):
            load(path)

    def test_all_failures_are_metricost_errors(
        self, tmp_path, name, save, load, payload
    ):
        """Callers can catch the whole hostile zoo with one except clause."""
        path = tmp_path / f"{name}.json"
        path.write_text("{\"kind\": 42}")
        with pytest.raises(MetricostError):
            load(path)


class TestAtomicSaves:
    def test_no_temp_residue(self, tmp_path):
        save_histogram(DistanceHistogram.uniform(16, 1.0), tmp_path / "h.json")
        assert [p.name for p in tmp_path.iterdir()] == ["h.json"]

    def test_failed_save_preserves_old_artifact(self, tmp_path):
        """A save that dies mid-serialisation must leave the previous
        artifact intact (write-to-temp + rename, never in-place)."""
        path = tmp_path / "h.json"
        original = DistanceHistogram.uniform(16, 1.0)
        save_histogram(original, path)
        before = path.read_text()

        class Explosive:
            """Payload whose encoding raises partway through a save."""

        with pytest.raises(Exception):
            save_mtree(_sample_tree(), path, encode=lambda obj: Explosive())
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["h.json"]

    def test_legacy_unchecksummed_artifact_still_loads(self, tmp_path):
        """Pre-reliability files (raw payload JSON) remain readable."""
        hist = DistanceHistogram.uniform(16, 1.0)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(histogram_to_dict(hist)))
        clone = load_histogram(path)
        np.testing.assert_allclose(clone.bin_probs, hist.bin_probs)
