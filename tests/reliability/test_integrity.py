"""Tests for CRC32-checksummed artifact envelopes."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    CorruptedDataError,
    FormatVersionError,
    InvalidParameterError,
)
from repro.reliability import (
    dumps_artifact,
    is_wrapped,
    loads_artifact,
    unwrap_artifact,
    verify_file,
    wrap_artifact,
)
from repro.reliability.integrity import DEFAULT_BLOCK_SIZE

PAYLOAD = {"kind": "distance-histogram", "version": 1, "values": [1, 2, 3]}


class TestRoundTrip:
    def test_wrap_unwrap(self):
        assert unwrap_artifact(wrap_artifact(PAYLOAD)) == PAYLOAD

    def test_dumps_loads(self):
        assert loads_artifact(dumps_artifact(PAYLOAD)) == PAYLOAD

    def test_envelope_is_json_serialisable(self):
        json.dumps(wrap_artifact(PAYLOAD))

    def test_is_wrapped(self):
        assert is_wrapped(wrap_artifact(PAYLOAD))
        assert not is_wrapped(PAYLOAD)
        assert not is_wrapped([1, 2])

    def test_legacy_payload_passes_through(self):
        assert loads_artifact(json.dumps(PAYLOAD)) == PAYLOAD

    def test_multi_block_bodies(self):
        big = {"kind": "x", "version": 1, "values": list(range(2000))}
        doc = wrap_artifact(big)
        assert len(doc["block_crcs"]) > 1
        assert unwrap_artifact(doc) == big

    def test_block_size_validated(self):
        with pytest.raises(InvalidParameterError):
            wrap_artifact(PAYLOAD, block_size=0)


class TestDetection:
    def test_tampered_body_detected_with_offset(self):
        big = {"kind": "x", "version": 1, "values": list(range(2000))}
        doc = wrap_artifact(big)
        # Corrupt a byte in the *second* block to check localisation.
        body = doc["body"]
        index = DEFAULT_BLOCK_SIZE + 10
        assert body[index] in "0123456789,"
        doc["body"] = body[:index] + ("5" if body[index] != "5" else "6") + body[index + 1 :]
        with pytest.raises(CorruptedDataError) as excinfo:
            unwrap_artifact(doc)
        assert excinfo.value.offset == DEFAULT_BLOCK_SIZE
        assert "checksum mismatch" in str(excinfo.value)

    def test_truncated_body_detected(self):
        doc = wrap_artifact(PAYLOAD)
        doc["body"] = doc["body"][:10]
        with pytest.raises(CorruptedDataError) as excinfo:
            unwrap_artifact(doc)
        assert "truncated" in str(excinfo.value)
        assert excinfo.value.offset == 10

    def test_missing_body_detected(self):
        doc = wrap_artifact(PAYLOAD)
        del doc["body"]
        with pytest.raises(CorruptedDataError):
            unwrap_artifact(doc)

    def test_wrong_envelope_version(self):
        doc = wrap_artifact(PAYLOAD)
        doc["version"] = 99
        with pytest.raises(FormatVersionError) as excinfo:
            unwrap_artifact(doc)
        assert "expected 1" in str(excinfo.value)
        assert "99" in str(excinfo.value)

    def test_unknown_algorithm(self):
        doc = wrap_artifact(PAYLOAD)
        doc["algo"] = "md5"
        with pytest.raises(CorruptedDataError):
            unwrap_artifact(doc)

    def test_consistently_tampered_blocks_caught_by_whole_crc(self):
        doc = wrap_artifact(PAYLOAD)
        doc["crc32"] ^= 1
        with pytest.raises(CorruptedDataError) as excinfo:
            unwrap_artifact(doc)
        assert "whole-body" in str(excinfo.value)

    def test_unparseable_text(self):
        with pytest.raises(CorruptedDataError):
            loads_artifact("{not json")

    def test_empty_text(self):
        with pytest.raises(CorruptedDataError):
            loads_artifact("")

    def test_non_object_root(self):
        with pytest.raises(CorruptedDataError):
            loads_artifact("[1, 2, 3]")


class TestVerifyFile:
    def test_sound_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(dumps_artifact(PAYLOAD))
        report = verify_file(path)
        assert report.ok
        assert report.checksummed
        assert report.kind == "distance-histogram"
        assert report.version == 1

    def test_legacy_file(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(PAYLOAD))
        report = verify_file(path)
        assert report.ok
        assert not report.checksummed

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.json"
        doc = wrap_artifact(PAYLOAD)
        doc["body"] = doc["body"].replace("1", "2", 1)
        path.write_text(json.dumps(doc))
        report = verify_file(path)
        assert not report.ok
        assert report.checksummed
        assert report.offset == 0
        assert "checksum" in report.error

    def test_missing_file(self, tmp_path):
        report = verify_file(tmp_path / "nope.json")
        assert not report.ok
        assert "unreadable" in report.error


class TestStrictMode:
    """``strict=True`` turns legacy tolerance into rejection, and the
    tolerant default meters every legacy load it lets through."""

    def test_strict_rejects_legacy_payload(self):
        with pytest.raises(CorruptedDataError) as excinfo:
            loads_artifact(json.dumps(PAYLOAD), strict=True)
        assert "legacy" in str(excinfo.value)

    def test_strict_accepts_envelopes(self):
        assert loads_artifact(dumps_artifact(PAYLOAD), strict=True) == (
            PAYLOAD
        )

    def test_strict_verify_file_fails_legacy(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(PAYLOAD))
        report = verify_file(path, strict=True)
        assert not report.ok
        assert "legacy" in report.error

    def test_strict_load_histogram_rejects_legacy(self, tmp_path):
        from repro.persistence import (
            histogram_to_dict,
            load_histogram,
            save_histogram,
        )
        from repro.core import DistanceHistogram

        hist = DistanceHistogram([1, 3, 2, 4], 2.5)
        sound = tmp_path / "hist.json"
        save_histogram(hist, sound)
        assert load_histogram(sound, strict=True).n_bins == hist.n_bins
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(histogram_to_dict(hist)))
        assert load_histogram(legacy).n_bins == hist.n_bins  # tolerated
        with pytest.raises(CorruptedDataError):
            load_histogram(legacy, strict=True)

    def test_legacy_loads_metered(self, tmp_path):
        from repro import observability

        registry = observability.install()
        try:
            loads_artifact(json.dumps(PAYLOAD))
            loads_artifact(json.dumps(PAYLOAD))
            loads_artifact(dumps_artifact(PAYLOAD))  # enveloped: not legacy
            assert (
                registry.counter_total(
                    "reliability.legacy_artifact_loads"
                )
                == 2
            )
        finally:
            observability.uninstall()
