"""Property tests for checksum localisation.

The envelope's contract is sharper than "corruption is detected": a
single flipped character must be *localised* — the
:class:`~repro.exceptions.CorruptedDataError` carries the byte offset of
the start of the block containing the flip, for any body size and any
``block_size``.  Hypothesis drives randomised body sizes, block sizes,
and flip positions through that contract.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CorruptedDataError
from repro.reliability import (
    loads_artifact,
    unwrap_artifact,
    wrap_artifact,
)

# Alphanumeric bodies keep json.dumps escape-free, so every character of
# the body string is exactly one UTF-8 byte: char index == byte offset.
ALPHABET = string.ascii_letters + string.digits

payloads = st.text(alphabet=ALPHABET, min_size=0, max_size=4096).map(
    lambda blob: {"kind": "t", "version": 1, "blob": blob}
)
block_sizes = st.integers(min_value=1, max_value=700)


def _flip(body: str, index: int) -> str:
    replacement = "0" if body[index] != "0" else "1"
    return body[:index] + replacement + body[index + 1 :]


@given(payload=payloads, block_size=block_sizes, data=st.data())
@settings(max_examples=200, deadline=None)
def test_flipped_character_localised_to_its_block(
    payload, block_size, data
):
    envelope = wrap_artifact(payload, block_size=block_size)
    body = envelope["body"]
    index = data.draw(
        st.integers(min_value=0, max_value=len(body) - 1), label="flip"
    )
    corrupted = dict(envelope, body=_flip(body, index))
    with pytest.raises(CorruptedDataError) as excinfo:
        unwrap_artifact(corrupted)
    assert excinfo.value.offset == (index // block_size) * block_size


@given(payload=payloads, block_size=block_sizes)
@settings(max_examples=100, deadline=None)
def test_clean_envelope_round_trips(payload, block_size):
    envelope = wrap_artifact(payload, block_size=block_size)
    assert unwrap_artifact(envelope) == payload
    # Block coverage is exact: ceil(length / block_size) checksums.
    length = envelope["length"]
    assert len(envelope["block_crcs"]) == -(-length // block_size)


@given(
    payload=payloads,
    block_size=block_sizes,
    cut=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_truncation_always_detected(payload, block_size, cut):
    envelope = wrap_artifact(payload, block_size=block_size)
    body = envelope["body"]
    truncated = dict(envelope, body=body[: max(0, len(body) - cut)])
    with pytest.raises(CorruptedDataError):
        unwrap_artifact(truncated)


@given(payload=payloads, block_size=block_sizes, data=st.data())
@settings(max_examples=100, deadline=None)
def test_flip_detected_through_serialised_path(payload, block_size, data):
    """The same localisation holds end-to-end through loads_artifact."""
    import json

    envelope = wrap_artifact(payload, block_size=block_size)
    body = envelope["body"]
    index = data.draw(
        st.integers(min_value=0, max_value=len(body) - 1), label="flip"
    )
    text = json.dumps(dict(envelope, body=_flip(body, index)))
    with pytest.raises(CorruptedDataError) as excinfo:
        loads_artifact(text, strict=True)
    assert excinfo.value.offset == (index // block_size) * block_size
