"""Tests for bounded exponential backoff with jitter and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    InvalidParameterError,
    IOFaultError,
    RetryExhaustedError,
)
from repro.reliability import (
    FaultPolicy,
    FaultyPageStore,
    RetryingPageStore,
    RetryPolicy,
)
from repro.storage import PageStore


def _no_sleep(_delay: float) -> None:
    pass


class _Flaky:
    """Callable failing the first ``n_failures`` invocations."""

    def __init__(self, n_failures: int, error=IOFaultError("transient")):
        self.remaining = n_failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return "ok"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kwargs)


class TestCall:
    def test_first_try_success_costs_nothing(self):
        policy = RetryPolicy(sleep=_no_sleep)
        assert policy.call(lambda: 42) == 42
        assert policy.stats.calls == 1
        assert policy.stats.attempts == 1
        assert policy.stats.retries == 0

    def test_transient_failure_recovers(self):
        flaky = _Flaky(2)
        policy = RetryPolicy(max_attempts=4, seed=1, sleep=_no_sleep)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert policy.stats.retries == 2
        assert policy.stats.exhausted == 0

    def test_exhaustion_raises_with_attempt_log(self):
        policy = RetryPolicy(max_attempts=3, seed=2, sleep=_no_sleep)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(_Flaky(99))
        error = excinfo.value
        assert len(error.attempts) == 3
        assert [a.number for a in error.attempts] == [1, 2, 3]
        assert all("IOFaultError" in a.error for a in error.attempts)
        assert error.attempts[-1].delay_s == 0.0  # no sleep after last try
        assert isinstance(error.__cause__, IOFaultError)
        assert policy.stats.exhausted == 1

    def test_non_retryable_error_propagates_immediately(self):
        flaky = _Flaky(1, error=KeyError("not retryable"))
        policy = RetryPolicy(max_attempts=5, sleep=_no_sleep)
        with pytest.raises(KeyError):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_custom_retry_on(self):
        flaky = _Flaky(1, error=KeyError("now retryable"))
        policy = RetryPolicy(
            max_attempts=3, retry_on=(KeyError,), sleep=_no_sleep
        )
        assert policy.call(flaky) == "ok"

    def test_wrap(self):
        flaky = _Flaky(1)
        policy = RetryPolicy(max_attempts=2, sleep=_no_sleep)
        wrapped = policy.wrap(flaky)
        assert wrapped() == "ok"


class TestBackoff:
    def test_deterministic_without_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0, jitter=0.0
        )
        assert [policy.backoff_delay(i) for i in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=2.5, jitter=0.0
        )
        assert policy.backoff_delay(5) == pytest.approx(2.5)

    def test_jitter_window(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=1.0, jitter=0.5, seed=3
        )
        delays = [policy.backoff_delay(1) for _ in range(200)]
        assert all(0.5 <= d <= 1.0 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_sleep_receives_backoff_delays(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=4,
            base_delay_s=0.1,
            multiplier=2.0,
            jitter=0.0,
            sleep=slept.append,
        )
        policy.call(_Flaky(3))
        assert slept == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]
        assert policy.stats.total_sleep_s == pytest.approx(0.7)


class TestRetryingPageStore:
    def test_recovers_transient_read_faults(self):
        inner = PageStore(page_size_bytes=4096)
        faulty = FaultyPageStore(
            inner, FaultPolicy(read_fail_rate=0.4, seed=9)
        )
        store = RetryingPageStore(
            faulty, RetryPolicy(max_attempts=20, seed=9, sleep=_no_sleep)
        )
        payloads = [np.full(4, float(i)) for i in range(30)]
        ids = [store.allocate(p) for p in payloads]
        for page_id, payload in zip(ids, payloads):
            np.testing.assert_array_equal(store.read(page_id), payload)

    def test_exhaustion_surfaces(self):
        inner = PageStore(page_size_bytes=4096)
        faulty = FaultyPageStore(
            inner, FaultPolicy(read_fail_rate=1.0, seed=9)
        )
        store = RetryingPageStore(
            faulty, RetryPolicy(max_attempts=3, sleep=_no_sleep)
        )
        page = store.allocate(1.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            store.read(page)
        assert len(excinfo.value.attempts) == 3

    def test_delegates_surface(self):
        inner = PageStore(page_size_bytes=512, buffer_pages=2)
        store = RetryingPageStore(
            FaultyPageStore(inner, FaultPolicy()),
            RetryPolicy(sleep=_no_sleep),
        )
        page = store.allocate("payload")
        store.write(page, "updated")
        assert store.read(page) == "updated"
        assert store.page_size_bytes == 512
        assert store.buffer_pages == 2
        assert len(store) == 1
        assert store.stats.writes == 2
        store.reset_stats()
        assert store.stats.writes == 0
