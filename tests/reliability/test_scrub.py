"""The online scrubber: incremental verification, budgets, rate limiting,
auto-quarantine, and metrics."""

from __future__ import annotations

import pytest

from repro import observability
from repro.context import Context, Deadline
from repro.datasets import clustered_dataset
from repro.mtree import bulk_load, vector_layout
from repro.reliability import (
    QuarantineSet,
    Scrubber,
    StructuralFaultInjector,
    mtree_scrub_units,
)
from repro.service import TokenBucket
from repro.vptree import VPTree


@pytest.fixture(autouse=True)
def clean_observability():
    observability.uninstall()
    yield
    observability.uninstall()


def make_mtree(size=300, dim=3, seed=0):
    data = clustered_dataset(size=size, dim=dim, seed=seed)
    tree = bulk_load(data.points, data.metric, vector_layout(dim), seed=seed)
    return data, tree


def test_full_pass_on_clean_tree():
    _, tree = make_mtree()
    scrubber = Scrubber(tree)
    progress = scrubber.run(passes=1)
    assert progress.complete
    assert progress.passes == 1
    assert progress.nodes_total == len(mtree_scrub_units(tree))
    # nodes_scrubbed is the position within the current pass; a finished
    # pass wraps it back to zero, and the cumulative count lives in the
    # report.
    assert progress.nodes_scrubbed == 0
    assert progress.faults_found == 0
    report = scrubber.report()
    assert report.ok
    assert report.nodes_checked == progress.nodes_total
    doc = progress.to_dict()
    assert doc["complete"] is True and doc["faults_found"] == 0


def test_detects_and_quarantines_damage():
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).shrink_radius(tree)
    quarantine = QuarantineSet()
    scrubber = Scrubber(tree, quarantine=quarantine)
    progress = scrubber.run(passes=1)
    assert progress.faults_found > 0
    assert len(quarantine) >= 1
    assert progress.quarantined == len(quarantine)
    report = scrubber.report()
    assert not report.ok
    assert "radius_violation" in report.kinds()
    # Quarantined damage shows up in query completeness accounting.
    result = tree.range_query(
        [0.5, 0.5, 0.5], 2.0, quarantine=quarantine
    )
    assert result.completeness < 1.0
    assert result.skipped_objects > 0


def test_auto_quarantine_can_be_disabled():
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).shrink_radius(tree)
    quarantine = QuarantineSet()
    scrubber = Scrubber(tree, quarantine=quarantine, auto_quarantine=False)
    progress = scrubber.run(passes=1)
    assert progress.faults_found > 0
    assert len(quarantine) == 0


def test_max_nodes_stops_and_resumes():
    _, tree = make_mtree(size=900)
    scrubber = Scrubber(tree)
    total = len(mtree_scrub_units(tree))
    assert total > 3
    progress = scrubber.run(max_nodes=3)
    assert progress.nodes_scrubbed == 3
    assert not progress.complete
    progress = scrubber.run(passes=1)
    assert progress.complete
    # The resumed run continued the same pass: one full sweep in total.
    assert scrubber.report().nodes_checked == total


def test_expired_deadline_stops_cleanly():
    _, tree = make_mtree()
    scrubber = Scrubber(tree)
    progress = scrubber.run(budget=Deadline.after(0.0), passes=1)
    assert progress.nodes_scrubbed == 0
    assert not progress.complete
    # A later unbudgeted run picks up where the expired one stopped.
    assert scrubber.run(passes=1).complete


def test_cancelled_context_stops_cleanly():
    _, tree = make_mtree()
    context = Context()
    context.cancel()
    scrubber = Scrubber(tree)
    progress = scrubber.run(budget=context, passes=1)
    assert progress.nodes_scrubbed == 0


def test_rate_limit_paces_with_injected_clock():
    _, tree = make_mtree()
    now = [0.0]
    sleeps = []

    def clock():
        return now[0]

    def fake_sleep(seconds):
        sleeps.append(seconds)
        now[0] += seconds

    # Burst of 2 tokens, then 100 tokens/s: every node past the burst
    # must wait for the bucket to refill on the fake clock.
    bucket = TokenBucket(rate=100.0, capacity=2.0, clock=clock)
    scrubber = Scrubber(tree, rate_limit=bucket, sleep=fake_sleep)
    progress = scrubber.run(passes=1)
    assert progress.complete
    assert scrubber.report().ok
    total = progress.nodes_total
    assert total > 2
    assert len(sleeps) > 0
    # Refilling (total - burst) tokens at 100/s takes at least this long.
    assert sum(sleeps) >= (total - 2) / 100.0 - 1e-9


def test_rate_limited_scrub_respects_budget_while_waiting():
    _, tree = make_mtree()
    now = [0.0]

    def clock():
        return now[0]

    def fake_sleep(seconds):
        now[0] += seconds

    # A bucket that never refills enough: the budget must still end it.
    bucket = TokenBucket(rate=1e-6, capacity=1.0, clock=clock)
    deadline = Deadline(expires_at=0.5, budget_s=0.5, clock=clock)
    scrubber = Scrubber(tree, rate_limit=bucket, sleep=fake_sleep)
    progress = scrubber.run(budget=deadline, passes=1)
    assert not progress.complete
    assert progress.nodes_scrubbed <= 1


def test_multiple_passes_accumulate():
    _, tree = make_mtree(size=120)
    scrubber = Scrubber(tree)
    progress = scrubber.run(passes=3)
    assert progress.passes == 3
    assert scrubber.report().nodes_checked == 3 * progress.nodes_total


def test_reset_after_mutation():
    _, tree = make_mtree(size=150, seed=4)
    scrubber = Scrubber(tree)
    scrubber.run(passes=1)
    import numpy as np

    rng = np.random.default_rng(11)
    for oid in range(150, 180):
        tree.insert(rng.random(3), oid)
    scrubber.reset()
    progress = scrubber.run(passes=1)
    assert progress.nodes_total == len(mtree_scrub_units(tree))
    assert scrubber.report().ok


def test_scrubs_vptrees_too():
    data = clustered_dataset(size=250, dim=3, seed=5)
    tree = VPTree.build(list(data.points), data.metric, arity=3, seed=5)
    quarantine = QuarantineSet()
    scrubber = Scrubber(tree, quarantine=quarantine)
    assert scrubber.run(passes=1).complete
    assert scrubber.report().ok
    StructuralFaultInjector(seed=5).shrink_cutoff(tree)
    scrubber.reset()
    scrubber.run(passes=1)
    report = scrubber.report()
    assert "cutoff_violation" in report.kinds()
    assert len(quarantine) >= 1


def test_scrub_metrics_mirrored():
    registry = observability.install()
    _, tree = make_mtree()
    StructuralFaultInjector(seed=0).shrink_radius(tree)
    quarantine = QuarantineSet()
    scrubber = Scrubber(tree, quarantine=quarantine)
    progress = scrubber.run(passes=1)
    assert (
        registry.counter_total("reliability.scrub_nodes")
        == scrubber.report().nodes_checked
        == progress.nodes_total
    )
    assert registry.counter_total("reliability.scrub_faults") >= 1
    assert registry.counter_value(
        "reliability.scrub_faults", kind="radius_violation"
    ) >= 1
    assert registry.gauge_value("reliability.scrub_progress") == (
        progress.fraction
    )
    assert registry.gauge_value("reliability.quarantined_nodes") == len(
        quarantine
    )
