"""Admission control and token-bucket shedding."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import InvalidParameterError, OverloadError
from repro.service import AdmissionController, TokenBucket


class TestAdmissionController:
    def test_admits_up_to_max_concurrent(self):
        controller = AdmissionController(max_concurrent=3, max_queue=0)
        for _ in range(3):
            controller.acquire()
        assert controller.running == 3
        with pytest.raises(OverloadError) as excinfo:
            controller.acquire()
        assert excinfo.value.reason == "queue_full"
        for _ in range(3):
            controller.release()
        assert controller.running == 0

    def test_release_frees_a_slot(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        controller.acquire()
        controller.release()
        controller.acquire()  # no raise
        controller.release()

    def test_queue_admits_when_slot_frees(self):
        controller = AdmissionController(max_concurrent=1, max_queue=1)
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()
            controller.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        # The waiter parks in the queue; releasing our slot admits it.
        deadline = time.monotonic() + 2.0
        while controller.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert controller.waiting == 1
        controller.release()
        assert admitted.wait(timeout=2.0)
        thread.join(timeout=2.0)

    def test_queue_timeout_sheds(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=1, queue_timeout_s=0.01
        )
        controller.acquire()
        started = time.monotonic()
        with pytest.raises(OverloadError) as excinfo:
            controller.acquire()
        assert excinfo.value.reason == "timeout"
        assert time.monotonic() - started < 1.0
        controller.release()

    def test_rejection_is_fast(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        controller.acquire()
        started = time.perf_counter()
        for _ in range(100):
            with pytest.raises(OverloadError):
                controller.acquire()
        per_rejection = (time.perf_counter() - started) / 100
        # Acceptance: rejections are fast-fail (< 5 ms each; typically µs).
        assert per_rejection < 0.005
        controller.release()

    def test_context_manager_releases_on_error(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with controller.admit():
                assert controller.running == 1
                # metalint: ignore[exception-hierarchy] — deliberately
                # foreign error: admission slots must release on any type
                raise RuntimeError("boom")
        assert controller.running == 0
        with controller.admit():
            pass

    def test_counters(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        with controller.admit():
            with pytest.raises(OverloadError):
                controller.acquire()
        assert controller.admitted == 1
        assert controller.rejected == 1

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_queue=-1)
        with pytest.raises(InvalidParameterError):
            AdmissionController(queue_timeout_s=-0.5)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock_now = [0.0]
        bucket = TokenBucket(rate=10.0, capacity=3.0, clock=lambda: clock_now[0])
        assert bucket.try_take()
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst spent
        clock_now[0] += 0.1  # 1 token refilled
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_capacity(self):
        clock_now = [0.0]
        bucket = TokenBucket(rate=100.0, capacity=2.0, clock=lambda: clock_now[0])
        clock_now[0] += 100.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_take_or_raise(self):
        clock_now = [0.0]
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=lambda: clock_now[0])
        bucket.take_or_raise()
        with pytest.raises(OverloadError) as excinfo:
            bucket.take_or_raise()
        assert excinfo.value.reason == "rate_limited"

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=1.0, capacity=0.0)

    def test_thread_safe_no_overdraw(self):
        bucket = TokenBucket(rate=1e-9, capacity=50.0)
        taken = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            count = 0
            for _ in range(50):
                if bucket.try_take():
                    count += 1
            taken.append(count)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Effectively no refill: exactly the initial burst is granted.
        assert sum(taken) == 50
