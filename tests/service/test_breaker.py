"""Circuit-breaker state machine and the breaker-fronted page store."""

from __future__ import annotations

import pytest

from repro import observability
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidParameterError,
    IOFaultError,
)
from repro.reliability import FaultPolicy, FaultyPageStore
from repro.service import BreakerPageStore, CircuitBreaker
from repro.storage import PageStore


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _failing(exc=IOFaultError("injected")):
    def fn():
        raise exc

    return fn


class TestStateMachine:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "test",
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_timeout_s=kwargs.pop("recovery_timeout_s", 10.0),
            half_open_successes=kwargs.pop("half_open_successes", 2),
            clock=clock,
            **kwargs,
        )
        return breaker, clock

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            with pytest.raises(IOFaultError):
                breaker.call(_failing())

    def test_starts_closed_and_passes_through(self):
        breaker, _clock = self.make()
        assert breaker.state == "closed"
        assert breaker.call(lambda: 42) == 42

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = self.make()
        self.trip(breaker)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: 42)
        assert excinfo.value.retry_after_s <= 10.0
        assert breaker.rejections == 1

    def test_success_resets_the_failure_count(self):
        breaker, _clock = self.make(failure_threshold=2)
        with pytest.raises(IOFaultError):
            breaker.call(_failing())
        breaker.call(lambda: "ok")  # resets the streak
        with pytest.raises(IOFaultError):
            breaker.call(_failing())
        assert breaker.state == "closed"

    def test_half_open_after_recovery_timeout(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.now += 10.0
        assert breaker.state == "half_open"

    def test_half_open_closes_after_enough_successes(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.now += 10.0
        assert breaker.call(lambda: 1) == 1
        assert breaker.state == "half_open"  # one success is not enough
        assert breaker.call(lambda: 2) == 2
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.now += 10.0
        assert breaker.state == "half_open"
        with pytest.raises(IOFaultError):
            breaker.call(_failing())
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 42)

    def test_deadline_errors_do_not_trip(self):
        breaker, _clock = self.make(failure_threshold=1)
        with pytest.raises(DeadlineExceededError):
            breaker.call(_failing(DeadlineExceededError("too slow")))
        assert breaker.state == "closed"

    def test_reset_forces_closed(self):
        breaker, _clock = self.make()
        self.trip(breaker)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.call(lambda: 1) == 1

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(recovery_timeout_s=-1.0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(half_open_successes=0)

    def test_transitions_mirrored_to_metrics(self):
        registry = observability.install()
        try:
            breaker, clock = self.make()
            self.trip(breaker)
            clock.now += 10.0
            breaker.call(lambda: 1)
            breaker.call(lambda: 2)  # half_open -> closed
            snap = registry.snapshot()
            assert (
                snap.get(
                    "service.breaker.state",
                    **{"name": "test", "from": "closed", "to": "open"},
                )
                == 1
            )
            assert (
                snap.get(
                    "service.breaker.state",
                    **{"name": "test", "from": "open", "to": "half_open"},
                )
                == 1
            )
            assert (
                snap.get(
                    "service.breaker.state",
                    **{"name": "test", "from": "half_open", "to": "closed"},
                )
                == 1
            )
            assert snap.get(
                "service.breaker.state_code", -1, name="test"
            ) == 0  # closed
        finally:
            observability.uninstall()


class TestBreakerPageStore:
    def test_persistent_faults_trip_and_shed(self):
        clock = FakeClock()
        inner = PageStore(4096)
        for payload in range(8):
            inner.allocate(payload)
        faulty = FaultyPageStore(
            inner, FaultPolicy(read_fail_rate=1.0, seed=1)
        )
        breaker = CircuitBreaker(
            "pager", failure_threshold=3, recovery_timeout_s=5.0, clock=clock
        )
        store = BreakerPageStore(faulty, breaker)
        for _ in range(3):
            with pytest.raises(IOFaultError):
                store.read(0)
        # Open: the next read is rejected WITHOUT touching the store.
        reads_before = inner.stats.logical_reads
        with pytest.raises(CircuitOpenError):
            store.read(0)
        assert inner.stats.logical_reads == reads_before

    def test_recovers_when_faults_stop(self):
        clock = FakeClock()
        inner = PageStore(4096)
        page = inner.allocate("payload")
        flaky = FaultyPageStore(
            inner, FaultPolicy(read_fail_rate=1.0, seed=1)
        )
        breaker = CircuitBreaker(
            "pager",
            failure_threshold=2,
            recovery_timeout_s=1.0,
            half_open_successes=1,
            clock=clock,
        )
        store = BreakerPageStore(flaky, breaker)
        for _ in range(2):
            with pytest.raises(IOFaultError):
                store.read(page)
        flaky.policy.read_fail_rate = 0.0  # the disk got better
        clock.now += 1.0
        assert store.read(page) == "payload"
        assert store.breaker.state == "closed"

    def test_passthrough_surface(self):
        inner = PageStore(4096, buffer_pages=2)
        store = BreakerPageStore(inner)
        page = store.allocate("x")
        store.write(page, "y")
        assert store.read(page) == "y"
        assert len(store) == 1
        assert store.page_size_bytes == 4096
        assert store.buffer_pages == 2
        assert store.stats.writes == 2
        store.reset_stats()
        assert store.stats.writes == 0
