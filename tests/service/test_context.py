"""Deadline / Context semantics, with injectable clocks (no sleeping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import Context, Deadline
from repro.exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    OperationCancelledError,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining_s() == pytest.approx(0.6)

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining_s() == 0.0

    def test_check_raises_only_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        deadline.check("op")  # no raise
        clock.advance(0.5)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("my op")
        assert "my op" in str(excinfo.value)
        assert excinfo.value.deadline_s == pytest.approx(0.5)

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(0.25)

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            Deadline.after(-1.0)

    def test_is_a_timeout_error(self):
        clock = FakeClock()
        deadline = Deadline.after(0.0, clock=clock)
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_expired_flag(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert not deadline.expired
        clock.advance(1.0)
        assert deadline.expired


class TestContext:
    def test_cancel_observed_at_check(self):
        context = Context()
        context.check("op")
        context.cancel()
        assert context.cancelled
        with pytest.raises(OperationCancelledError):
            context.check("op")

    def test_cancel_is_idempotent(self):
        context = Context()
        context.cancel()
        context.cancel()
        assert context.cancelled

    def test_no_deadline_means_infinite_budget(self):
        context = Context()
        assert context.remaining_s() == float("inf")
        assert not context.expired

    def test_deadline_flows_through(self):
        clock = FakeClock()
        context = Context.with_timeout(0.2, clock=clock)
        assert context.remaining_s() == pytest.approx(0.2)
        clock.advance(0.3)
        assert context.expired
        with pytest.raises(DeadlineExceededError):
            context.check()

    def test_cancellation_wins_over_deadline(self):
        clock = FakeClock()
        context = Context.with_timeout(0.0, clock=clock)
        context.cancel()
        clock.advance(1.0)
        with pytest.raises(OperationCancelledError):
            context.check()


class TestTraversalDeadlines:
    """The trees honour the deadline at their checkpoints."""

    def test_mtree_range_raises_on_expired_deadline(self, small_tree):
        clock = FakeClock()
        deadline = Deadline.after(0.05, clock=clock)
        clock.advance(0.1)
        query = np.zeros(small_tree.layout.object_bytes // 4)
        with pytest.raises(DeadlineExceededError):
            small_tree.range_query(query, 0.5, deadline=deadline)

    def test_mtree_knn_raises_on_expired_deadline(self, small_tree):
        clock = FakeClock()
        deadline = Deadline.after(0.05, clock=clock)
        clock.advance(0.1)
        query = np.zeros(small_tree.layout.object_bytes // 4)
        with pytest.raises(DeadlineExceededError):
            small_tree.knn_query(query, 3, deadline=deadline)

    def test_mtree_unexpired_deadline_is_transparent(self, small_tree):
        clock = FakeClock()
        query = np.zeros(small_tree.layout.object_bytes // 4)
        plain = small_tree.range_query(query, 0.4)
        deadlined = small_tree.range_query(
            query, 0.4, deadline=Deadline.after(60.0, clock=clock)
        )
        assert sorted(o for o, _v, _d in plain.items) == sorted(
            o for o, _v, _d in deadlined.items
        )

    def test_mtree_cancellation_mid_traversal(self, small_tree):
        context = Context()
        context.cancel()
        query = np.zeros(small_tree.layout.object_bytes // 4)
        with pytest.raises(OperationCancelledError):
            small_tree.range_query(query, 0.5, deadline=context)

    def test_vptree_honours_deadline(self, small_uniform):
        from repro.vptree import VPTree

        tree = VPTree.build(
            list(small_uniform.points), small_uniform.metric, seed=5
        )
        clock = FakeClock()
        deadline = Deadline.after(0.05, clock=clock)
        clock.advance(0.1)
        with pytest.raises(DeadlineExceededError):
            tree.range_query(small_uniform.points[0], 0.5, deadline=deadline)
        with pytest.raises(DeadlineExceededError):
            tree.knn_query(small_uniform.points[0], 3, deadline=deadline)
