"""Property tests for deadline budgets, plus the backoff-cap regression.

Two invariants, checked under hypothesis-generated schedules:

1. the remaining budget observed across a retrying call's attempts is
   monotonically non-increasing (time only moves forward, and the policy
   never hands back budget);
2. ditto across entering/exiting nested tracer spans.

Plus the satellite-1 regression: a RetryingPageStore under a 50 ms
deadline must never sleep a 500 ms backoff — every sleep is capped at
the remaining budget and the call fails with DeadlineExceededError
instead of oversleeping.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.context import Deadline
from repro.exceptions import (
    DeadlineExceededError,
    IOFaultError,
    RetryExhaustedError,
)
from repro.observability import Tracer
from repro.reliability import RetryPolicy, RetryingPageStore
from repro.storage import PageStore


class SteppingClock:
    """A fake monotonic clock advanced explicitly — and by fake sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


@given(
    budget=st.floats(min_value=0.01, max_value=10.0),
    ticks=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20
    ),
)
def test_remaining_budget_monotone_across_retry_attempts(budget, ticks):
    clock = SteppingClock()
    deadline = Deadline.after(budget, clock=clock)
    policy = RetryPolicy(
        max_attempts=len(ticks) + 1,
        base_delay_s=0.05,
        jitter=0.0,
        seed=0,
        sleep=clock.sleep,
    )
    observed = []
    tick_iter = iter(ticks)

    def flaky():
        observed.append(deadline.remaining_s())
        clock.now += next(tick_iter, 0.0)  # work consumes wall time
        raise IOFaultError("transient")

    with pytest.raises(
        (RetryExhaustedError, DeadlineExceededError)
    ):
        policy.call(flaky, deadline=deadline)
    assert observed, "fn was never attempted"
    assert all(
        later <= earlier + 1e-12
        for earlier, later in zip(observed, observed[1:])
    ), f"budget increased across attempts: {observed}"
    assert all(value >= 0.0 for value in observed)


@given(
    budget=st.floats(min_value=0.05, max_value=5.0),
    durations=st.lists(
        st.floats(min_value=0.0, max_value=0.2), min_size=1, max_size=8
    ),
)
def test_remaining_budget_monotone_across_nested_spans(budget, durations):
    clock = SteppingClock()
    deadline = Deadline.after(budget, clock=clock)
    tracer = Tracer(detail="distance")
    observed = []

    def descend(remaining):
        observed.append(deadline.remaining_s())
        if not remaining:
            return
        with tracer.span(f"level-{len(remaining)}"):
            clock.now += remaining[0]  # the span's own work
            descend(remaining[1:])
            observed.append(deadline.remaining_s())

    descend(durations)
    assert all(
        later <= earlier + 1e-12
        for earlier, later in zip(observed, observed[1:])
    ), f"budget increased across spans: {observed}"
    # Nesting bookkeeping survived: every opened span was closed.
    assert tracer._stack == []
    assert len(tracer.spans) == len(durations)


class TestBackoffCappedByDeadline:
    def test_50ms_deadline_never_sleeps_500ms(self):
        """The satellite-1 regression, end to end through the page store."""
        clock = SteppingClock()
        inner = PageStore(4096)
        page = inner.allocate("payload")

        def always_faulting_read(page_id):
            clock.now += 0.001  # the failed read itself takes 1 ms
            raise IOFaultError("injected")

        inner.read = always_faulting_read
        policy = RetryPolicy(
            max_attempts=10,
            base_delay_s=0.5,  # an uncapped schedule would sleep 500 ms
            jitter=0.0,
            seed=0,
            sleep=clock.sleep,
        )
        store = RetryingPageStore(inner, policy)
        deadline = Deadline.after(0.05, clock=clock)
        with pytest.raises(DeadlineExceededError):
            store.read(page, deadline=deadline)
        assert clock.sleeps, "expected at least one capped backoff sleep"
        assert all(sleep <= 0.05 for sleep in clock.sleeps), clock.sleeps
        # And the whole call stayed inside (roughly) one budget.
        assert clock.now <= 0.06

    def test_store_default_deadline_also_caps(self):
        clock = SteppingClock()
        inner = PageStore(4096)
        inner.allocate("payload")

        def always_faulting_read(page_id):
            raise IOFaultError("injected")

        inner.read = always_faulting_read
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.5, jitter=0.0, sleep=clock.sleep
        )
        store = RetryingPageStore(
            inner, policy, deadline=Deadline.after(0.05, clock=clock)
        )
        with pytest.raises(DeadlineExceededError):
            store.read(0)
        assert all(sleep <= 0.05 for sleep in clock.sleeps)

    def test_without_deadline_full_schedule_applies(self):
        clock = SteppingClock()
        inner = PageStore(4096)
        inner.allocate("payload")

        def always_faulting_read(page_id):
            raise IOFaultError("injected")

        inner.read = always_faulting_read
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.5, jitter=0.0, sleep=clock.sleep
        )
        store = RetryingPageStore(inner, policy)
        with pytest.raises(RetryExhaustedError):
            store.read(0)
        assert clock.sleeps == [0.5, 1.0]  # uncapped exponential schedule
