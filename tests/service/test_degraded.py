"""Scrub-while-serving and quarantine-aware degraded answers.

The acceptance contract for the self-healing layer:

* scrubbing an *undamaged* tree while a multithreaded service hammers it
  changes nothing — answers are identical to the single-threaded ground
  truth;
* against a *quarantined* tree, every answer affected by the damage is
  flagged ``degraded`` with a completeness estimate — a result is never
  silently short;
* with a linear-scan fallback and a ``min_completeness`` floor, badly
  degraded requests are re-answered completely on the scan rung.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import observability
from repro.datasets import clustered_dataset
from repro.exceptions import InvalidParameterError
from repro.mtree import bulk_load, vector_layout
from repro.reliability import (
    QuarantineSet,
    Scrubber,
    StructuralFaultInjector,
)
from repro.service import (
    AdmissionController,
    MTreeBackend,
    QueryRequest,
    QueryService,
    VPTreeBackend,
)
from repro.vptree import VPTree
from repro.workloads import LinearScanBaseline

DIM = 3


@pytest.fixture(autouse=True)
def clean_observability():
    observability.uninstall()
    yield
    observability.uninstall()


def build(size=600, seed=21):
    data = clustered_dataset(size=size, dim=DIM, seed=seed)
    tree = bulk_load(data.points, data.metric, vector_layout(DIM), seed=seed)
    return data, tree


def make_requests(data, n, seed=22):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        query = rng.random(DIM)
        if i % 3 == 2:
            requests.append(
                QueryRequest("knn", query, k=5, request_id=i)
            )
        else:
            requests.append(
                QueryRequest(
                    "range",
                    query,
                    radius=0.2 * data.d_plus,
                    request_id=i,
                )
            )
    return requests


def answer_key(outcome):
    return sorted(
        (oid, round(dist, 9)) for oid, _obj, dist in outcome.items
    )


def brute_force(data, request):
    """Exact answer by scanning every object."""
    distances = np.asarray(
        data.metric.one_to_many(request.query, data.points)
    )
    if request.kind == "range":
        return sorted(
            (int(i), round(float(d), 9))
            for i, d in enumerate(distances)
            if d <= request.radius
        )
    order = np.argsort(distances, kind="stable")[: request.k]
    return sorted(
        (int(i), round(float(distances[int(i)]), 9)) for i in order
    )


def wide_service(backend):
    return QueryService(
        backend,
        admission=AdmissionController(max_concurrent=16, max_queue=10_000),
    )


# ---------------------------------------------------------------------------
# hammer: scrub an undamaged tree while serving
# ---------------------------------------------------------------------------


def test_hammer_scrub_while_serving_matches_ground_truth():
    data, tree = build(size=900)
    requests = make_requests(data, 120)
    # Single-threaded ground truth on the quiet tree.
    quiet = MTreeBackend(tree)
    truth = {
        r.request_id: answer_key(quiet.execute(r)) for r in requests
    }

    quarantine = QuarantineSet()
    scrubber = Scrubber(tree, quarantine=quarantine)
    stop = threading.Event()

    def keep_scrubbing():
        while not stop.is_set():
            scrubber.run(passes=1)

    thread = threading.Thread(target=keep_scrubbing, daemon=True)
    thread.start()
    try:
        service = wide_service(MTreeBackend(tree, quarantine=quarantine))
        report = service.run(requests, workers=8)
    finally:
        stop.set()
        thread.join()

    assert len(report.accepted) == len(requests)
    assert report.degraded == []
    for outcome in report.outcomes:
        assert outcome.status == "ok"
        assert outcome.completeness == 1.0
        assert answer_key(outcome) == truth[outcome.request.request_id]
    # The concurrent scrub of a healthy tree found nothing and
    # quarantined nothing.
    assert scrubber.report().ok
    assert len(quarantine) == 0


# ---------------------------------------------------------------------------
# quarantined tree: degraded, never silently short
# ---------------------------------------------------------------------------


def test_quarantined_tree_flags_every_affected_answer():
    data, tree = build(size=900, seed=31)
    StructuralFaultInjector(seed=31).shrink_radius(tree)
    quarantine = QuarantineSet()
    Scrubber(tree, quarantine=quarantine).run(passes=1)
    assert len(quarantine) >= 1

    requests = make_requests(data, 120, seed=32)
    service = wide_service(MTreeBackend(tree, quarantine=quarantine))
    report = service.run(requests, workers=8)
    assert len(report.accepted) == len(requests)

    n_degraded = 0
    for outcome in report.outcomes:
        truth = brute_force(data, outcome.request)
        if outcome.degraded:
            n_degraded += 1
            assert outcome.completeness < 1.0
        if answer_key(outcome) != truth:
            # A wrong/short answer is only acceptable when it says so.
            assert outcome.degraded
            assert outcome.completeness < 1.0
            if outcome.request.kind == "range":
                # Routing around damage can only lose answers, never
                # invent them.
                assert set(answer_key(outcome)) <= set(truth)
    # The damage is real: some queries must actually have been affected.
    assert n_degraded > 0
    assert report.degraded and len(report.degraded) == n_degraded


def test_vptree_backend_flags_degraded_answers():
    data = clustered_dataset(size=500, dim=DIM, seed=41)
    tree = VPTree.build(list(data.points), data.metric, arity=3, seed=41)
    StructuralFaultInjector(seed=41).shrink_cutoff(tree)
    quarantine = QuarantineSet()
    Scrubber(tree, quarantine=quarantine).run(passes=1)
    assert len(quarantine) >= 1
    backend = VPTreeBackend(tree, quarantine=quarantine)
    rng = np.random.default_rng(42)
    outcomes = [
        backend.execute(
            QueryRequest(
                "range", rng.random(DIM), radius=0.4 * data.d_plus
            )
        )
        for _ in range(40)
    ]
    degraded = [o for o in outcomes if o.degraded]
    assert degraded
    for outcome in degraded:
        assert outcome.completeness < 1.0


# ---------------------------------------------------------------------------
# fallback rung: completeness floor
# ---------------------------------------------------------------------------


def test_min_completeness_falls_back_to_linear_scan():
    registry = observability.install()
    data, tree = build(size=900, seed=51)
    StructuralFaultInjector(seed=51).shrink_radius(tree)
    quarantine = QuarantineSet()
    Scrubber(tree, quarantine=quarantine).run(passes=1)
    fallback = LinearScanBaseline(
        data.points,
        data.metric,
        object_bytes=tree.layout.object_bytes,
        node_size_bytes=tree.layout.node_size_bytes,
    )
    backend = MTreeBackend(
        tree,
        quarantine=quarantine,
        fallback=fallback,
        min_completeness=1.0,
    )
    requests = make_requests(data, 60, seed=52)
    report = wide_service(backend).run(requests, workers=4)
    assert len(report.accepted) == len(requests)
    for outcome in report.outcomes:
        # The scan rung restores completeness; every answer is exact.
        assert outcome.completeness == 1.0
        assert answer_key(outcome) == brute_force(data, outcome.request)
    assert report.degraded  # the fallback is still honest about itself
    assert (
        registry.counter_value(
            "service.degraded_queries", rung="linear_scan"
        )
        == len(report.degraded)
    )


def test_min_completeness_validated():
    _, tree = build(size=50)
    with pytest.raises(InvalidParameterError):
        MTreeBackend(tree, min_completeness=1.5)
