"""The hammer: many threads, one tree, one pager, zero tolerance.

Acceptance criteria for the concurrent service: 8+ threads driving
10k+ mixed range/k-NN queries against one shared M-tree and one shared
LRU page store must (a) lose no metric increments, (b) never deadlock
(pytest-timeout aborts a wedged run in CI), and (c) return exactly the
results a single-threaded run returns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.service import (
    AdmissionController,
    MTreeBackend,
    QueryRequest,
    QueryService,
)
from repro.storage import PageStore

N_THREADS = 8
N_QUERIES = 10_000
N_UNIQUE = 400


@pytest.fixture(scope="module")
def hammer_setup():
    from repro.datasets import clustered_dataset
    from repro.mtree import bulk_load, vector_layout

    data = clustered_dataset(size=300, dim=3, seed=21)
    tree = bulk_load(data.points, data.metric, vector_layout(3), seed=21)
    rng = np.random.default_rng(21)
    requests = []
    for i in range(N_UNIQUE):
        query = rng.random(3)
        if i % 2 == 0:
            requests.append(
                QueryRequest(
                    "range", query, radius=0.12 * data.d_plus, request_id=i
                )
            )
        else:
            requests.append(QueryRequest("knn", query, k=3, request_id=i))
    return tree, requests


def result_key(outcome):
    """Order-insensitive identity of a query's result set."""
    return sorted(round(float(d), 9) for _o, _v, d in outcome.items)


@pytest.mark.timeout(120)
def test_hammer_shared_tree_and_pager(hammer_setup):
    tree, unique_requests = hammer_setup

    # Single-threaded reference, no observability in the way.
    reference_service = QueryService(MTreeBackend(tree))
    reference = {
        request.request_id: result_key(reference_service.submit(request))
        for request in unique_requests
    }

    pager = PageStore(4096, buffer_pages=8)  # shared LRU under contention
    for node in tree.iter_nodes():
        pager.allocate(node)

    registry = observability.install()
    try:
        service = QueryService(
            MTreeBackend(tree, pager=pager),
            admission=AdmissionController(
                max_concurrent=N_THREADS, max_queue=N_QUERIES
            ),
        )
        requests = [
            unique_requests[i % N_UNIQUE] for i in range(N_QUERIES)
        ]
        report = service.run(requests, workers=N_THREADS)

        # (c) identical results, request for request.
        assert report.total == N_QUERIES
        assert report.count("ok") == N_QUERIES
        mismatches = sum(
            1
            for outcome in report.outcomes
            if result_key(outcome) != reference[outcome.request.request_id]
        )
        assert mismatches == 0

        # (a) zero lost increments: counters equal per-outcome sums.
        snap = registry.snapshot()
        assert snap.get("service.requests", status="ok") == N_QUERIES
        assert snap.get("service.admitted") == N_QUERIES
        assert snap.total("mtree.queries") == N_QUERIES
        expected_nodes = sum(o.nodes for o in report.outcomes)
        assert snap.total("mtree.nodes_accessed") == expected_nodes
        expected_dists = sum(o.dists for o in report.outcomes)
        assert snap.total("mtree.dists_computed") == expected_dists

        # The shared pager's own stats agree with the registry mirror.
        assert pager.stats.logical_reads == snap.get("pager.logical_reads")
        assert (
            pager.stats.logical_reads
            == pager.stats.physical_reads + pager.stats.buffer_hits
        )
        assert snap.get("pager.logical_reads") == snap.get(
            "pager.physical_reads"
        ) + snap.get("pager.buffer_hits")
    finally:
        observability.uninstall()


@pytest.mark.timeout(120)
def test_hammer_with_shedding_still_consistent(hammer_setup):
    """Under deliberate overload, accepted results stay exact."""
    tree, unique_requests = hammer_setup
    reference_service = QueryService(MTreeBackend(tree))
    reference = {
        request.request_id: result_key(reference_service.submit(request))
        for request in unique_requests
    }
    service = QueryService(
        MTreeBackend(tree),
        admission=AdmissionController(max_concurrent=2, max_queue=2),
    )
    requests = [unique_requests[i % N_UNIQUE] for i in range(2_000)]
    report = service.run(requests, workers=16)
    assert report.total == 2_000
    assert report.count("ok") + report.count("rejected") == 2_000
    for outcome in report.outcomes:
        if outcome.ok:
            assert result_key(outcome) == reference[
                outcome.request.request_id
            ]
