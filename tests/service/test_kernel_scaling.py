"""GIL-release scaling: native kernels must let worker threads scale.

The native kernels drop the GIL around whole-node batch evaluations, so
an 8-thread ``QueryService`` over edit-distance queries should beat one
thread by well over 2x *when the extension is built and the machine has
cores to scale onto*.  Both preconditions are checked explicitly and
reported as visible skip reasons — a silently-vacuous pass here would
hide the whole point of the native backend.

The correctness half (8 threads return exactly the single-thread
answers, whatever the backend) always runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets.keywords import keyword_dataset
from repro.metrics import kernels
from repro.mtree import bulk_load, string_layout
from repro.service import MTreeBackend, QueryRequest, QueryService

N_THREADS = 8
MIN_CORES = 4
SPEEDUP_FLOOR = 2.0


def scaling_skip_reason():
    if not kernels.native_available():
        return (
            "native kernel extension not built (or REPRO_NO_NATIVE set); "
            "GIL-release scaling cannot be demonstrated on the numpy "
            "fallback"
        )
    cores = os.cpu_count() or 1
    if cores < MIN_CORES:
        return (
            f"only {cores} CPU core(s) available; thread scaling needs "
            f">= {MIN_CORES} cores regardless of GIL release"
        )
    return None


@pytest.fixture(scope="module")
def edit_service():
    words = list(keyword_dataset(600, seed=31).words)
    tree = bulk_load(
        words, keyword_dataset(600, seed=31).metric, string_layout(25), seed=31
    )
    requests = [
        QueryRequest("range", word, radius=3.0, request_id=i)
        for i, word in enumerate(words[::3])
    ]
    return tree, requests


def result_key(outcome):
    return sorted(round(float(d), 9) for _o, _v, d in outcome.items)


@pytest.mark.timeout(300)
def test_eight_threads_match_single_thread_answers(edit_service):
    tree, requests = edit_service
    reference_service = QueryService(MTreeBackend(tree))
    reference = {
        r.request_id: result_key(reference_service.submit(r))
        for r in requests
    }
    service = QueryService(MTreeBackend(tree))
    report = service.run(requests, workers=N_THREADS)
    assert report.count("ok") == len(requests)
    for outcome in report.outcomes:
        assert result_key(outcome) == reference[outcome.request.request_id]


@pytest.mark.timeout(300)
def test_gil_release_scales_query_service_throughput(edit_service):
    reason = scaling_skip_reason()
    if reason:
        pytest.skip(reason)
    tree, requests = edit_service
    workload = requests * 4

    def throughput(workers):
        service = QueryService(MTreeBackend(tree))
        start = time.perf_counter()
        report = service.run(workload, workers=workers)
        elapsed = time.perf_counter() - start
        assert report.count("ok") == len(workload)
        return len(workload) / elapsed

    # Warm both paths once (page-ins, kernel dispatch) before timing.
    throughput(1)
    single = throughput(1)
    threaded = throughput(N_THREADS)
    assert threaded > SPEEDUP_FLOOR * single, (
        f"{N_THREADS}-thread throughput {threaded:.0f} q/s is not "
        f">{SPEEDUP_FLOOR}x single-thread {single:.0f} q/s"
    )
