"""Crash-consistent recovery: the generation store's old-or-new guarantee."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import persistence
from repro.core.histogram import DistanceHistogram
from repro.exceptions import (
    CorruptedDataError,
    FormatVersionError,
    InvalidParameterError,
)
from repro.service import (
    MANIFEST_FORMAT,
    GenerationStore,
    SimulatedCrashError,
)

OLD = {"tree": "tree-old", "hist": "hist-old", "stats": "stats-old"}
NEW = {"tree": "tree-new", "hist": "hist-new", "stats": "stats-new"}


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = GenerationStore(tmp_path / "bundle")
        generation = store.save(OLD)
        assert generation == 1
        assert store.generation == 1
        assert store.load() == OLD

    def test_generations_increment(self, tmp_path):
        store = GenerationStore(tmp_path)
        assert store.save(OLD) == 1
        assert store.save(NEW) == 2
        assert store.load() == NEW

    def test_old_generation_files_are_collected(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        store.save(NEW)
        leftovers = [p.name for p in tmp_path.glob("*.g1.json")]
        assert leftovers == []

    def test_load_before_any_save_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            GenerationStore(tmp_path).load()

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            GenerationStore(tmp_path).save({})

    def test_unsafe_artifact_names_rejected(self, tmp_path):
        store = GenerationStore(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(InvalidParameterError):
                store.save({bad: "x"})

    def test_manifest_format_pinned(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["format"] == MANIFEST_FORMAT == "metricost-manifest-v1"

    def test_foreign_manifest_refused(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.manifest_path.write_text(json.dumps({"format": "other-v9"}))
        with pytest.raises(FormatVersionError):
            store.load()

    def test_digest_mismatch_detected(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        manifest = json.loads(store.manifest_path.read_text())
        victim = tmp_path / manifest["artifacts"]["tree"]["file"]
        victim.write_text("tampered")
        with pytest.raises(CorruptedDataError):
            store.load()

    def test_missing_artifact_detected(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        manifest = json.loads(store.manifest_path.read_text())
        (tmp_path / manifest["artifacts"]["hist"]["file"]).unlink()
        with pytest.raises(CorruptedDataError):
            store.load()


class TestCrashAtEveryStep:
    def test_kill_at_every_step_never_mixes_generations(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        total = store.total_save_steps(len(NEW))
        assert total == len(NEW) + 4
        outcomes = []
        for step in range(total):
            try:
                store.save(NEW, crash_after_step=step)
                raise AssertionError(f"step {step} did not crash")
            except SimulatedCrashError as exc:
                assert exc.step == step
            recovery = store.recover()
            loaded = store.load()
            assert loaded in (OLD, NEW), (
                f"mixed generation after crash at step {step}: {loaded}"
            )
            outcomes.append((recovery.action, loaded == NEW))
            store.save(OLD)  # reset the baseline
        # Early kills roll back, kills past the commit point roll forward.
        assert any(action == "rolled_back" for action, _new in outcomes)
        assert any(new for _action, new in outcomes)
        # Commit is the pivot: once a kill yields NEW, later kills do too.
        first_new = next(i for i, (_a, new) in enumerate(outcomes) if new)
        assert all(new for _a, new in outcomes[first_new:])

    def test_crash_before_anything_written(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        with pytest.raises(SimulatedCrashError):
            store.save(NEW, crash_after_step=0)
        assert not store.journal_path.exists()
        assert store.recover().action == "clean"
        assert store.load() == OLD

    def test_recover_is_idempotent(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        with pytest.raises(SimulatedCrashError):
            store.save(NEW, crash_after_step=2)
        first = store.recover()
        assert first.action == "rolled_back"
        second = store.recover()
        assert second.action == "clean"
        assert store.load() == OLD

    def test_rolled_back_partial_files_removed(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        with pytest.raises(SimulatedCrashError):
            store.save(NEW, crash_after_step=3)  # journal + 2 artifacts
        store.recover()
        assert list(tmp_path.glob("*.g2.json")) == []

    def test_roll_forward_finishes_cleanup(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        total = store.total_save_steps(len(NEW))
        with pytest.raises(SimulatedCrashError):
            # Crash right after the manifest commit, before cleanup.
            store.save(NEW, crash_after_step=total - 2)
        assert store.journal_path.exists()
        recovery = store.recover()
        assert recovery.action == "rolled_forward"
        assert not store.journal_path.exists()
        assert store.load() == NEW
        assert list(tmp_path.glob("*.g1.json")) == []

    def test_recovery_sweeps_stray_tmp_files(self, tmp_path):
        store = GenerationStore(tmp_path)
        store.save(OLD)
        (tmp_path / "tree.g9.json.abc123.tmp").write_text("garbage")
        recovery = store.recover()
        assert any("temp" in note for note in recovery.notes)
        assert list(tmp_path.glob("*.tmp")) == []


class TestRealArtifacts:
    def test_tree_histogram_stats_bundle_roundtrip(self, tmp_path, small_tree):
        """The intended use: journal a real tree + histogram together."""
        from repro.reliability.integrity import dumps_artifact, loads_artifact

        hist = DistanceHistogram.uniform(32, 1.0)
        artifacts = {
            "tree": dumps_artifact(persistence.mtree_to_dict(small_tree)),
            "hist": dumps_artifact(persistence.histogram_to_dict(hist)),
        }
        store = GenerationStore(tmp_path)
        store.save(artifacts)
        loaded = store.load()
        clone = persistence.mtree_from_dict(
            loads_artifact(loaded["tree"]), small_tree.metric
        )
        assert clone.n_nodes() == small_tree.n_nodes()
        assert len(clone) == len(small_tree)
        hist_clone = persistence.histogram_from_dict(
            loads_artifact(loaded["hist"])
        )
        np.testing.assert_allclose(hist_clone.bin_probs, hist.bin_probs)
