"""QueryService pipeline: outcomes, shedding, breakers, deadlines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.context import Context, Deadline
from repro.exceptions import IOFaultError, InvalidParameterError
from repro.reliability import FaultPolicy, FaultyPageStore
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    MTreeBackend,
    OptimizerBackend,
    QueryRequest,
    QueryService,
    ServiceReport,
    TokenBucket,
    VPTreeBackend,
    percentile,
)
from repro.storage import PageStore


@pytest.fixture(scope="module")
def served_tree(request):
    from repro.datasets import clustered_dataset
    from repro.mtree import bulk_load, vector_layout

    data = clustered_dataset(size=400, dim=4, seed=11)
    tree = bulk_load(data.points, data.metric, vector_layout(4), seed=11)
    return data, tree


def make_requests(data, n, kind="range", seed=0):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        if kind == "range":
            requests.append(
                QueryRequest(
                    "range",
                    rng.random(4),
                    radius=0.2 * data.d_plus,
                    request_id=i,
                )
            )
        else:
            requests.append(
                QueryRequest("knn", rng.random(4), k=3, request_id=i)
            )
    return requests


class TestQueryRequest:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            QueryRequest("scan", np.zeros(2))
        with pytest.raises(InvalidParameterError):
            QueryRequest("range", np.zeros(2))  # no radius
        with pytest.raises(InvalidParameterError):
            QueryRequest("knn", np.zeros(2), k=0)


class TestPercentile:
    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            percentile([], 50)
        with pytest.raises(InvalidParameterError):
            percentile([1.0], 150)


class TestSubmit:
    def test_ok_outcome_matches_direct_query(self, served_tree):
        data, tree = served_tree
        service = QueryService(MTreeBackend(tree))
        request = make_requests(data, 1)[0]
        outcome = service.submit(request)
        assert outcome.ok and outcome.status == "ok"
        direct = tree.range_query(request.query, request.radius)
        assert sorted(o for o, _v, _d in outcome.items) == sorted(
            direct.oids()
        )
        assert outcome.nodes == direct.stats.nodes_accessed
        assert outcome.latency_s > 0

    def test_knn_submit(self, served_tree):
        data, tree = served_tree
        service = QueryService(MTreeBackend(tree))
        outcome = service.submit(make_requests(data, 1, kind="knn")[0])
        assert outcome.ok
        assert len(outcome.items) == 3

    def test_expired_deadline_is_a_deadline_outcome(self, served_tree):
        data, tree = served_tree
        clock = [0.0]
        deadline = Deadline.after(0.01, clock=lambda: clock[0])
        clock[0] = 1.0
        service = QueryService(MTreeBackend(tree))
        outcome = service.submit(make_requests(data, 1)[0], deadline=deadline)
        assert outcome.status == "deadline"
        assert not outcome.ok

    def test_cancelled_context(self, served_tree):
        data, tree = served_tree
        context = Context()
        context.cancel()
        service = QueryService(MTreeBackend(tree))
        outcome = service.submit(make_requests(data, 1)[0], context=context)
        assert outcome.status == "cancelled"

    def test_rate_limited_submit(self, served_tree):
        data, tree = served_tree
        clock = [0.0]
        service = QueryService(
            MTreeBackend(tree),
            rate_limiter=TokenBucket(
                rate=1e-9, capacity=2.0, clock=lambda: clock[0]
            ),
        )
        requests = make_requests(data, 4)
        statuses = [service.submit(r).status for r in requests]
        assert statuses == ["ok", "ok", "rejected", "rejected"]
        assert service.stats == {"ok": 2, "rejected": 2}

    def test_backend_fault_is_an_error_outcome(self, served_tree):
        data, tree = served_tree

        class FaultingBackend:
            name = "faulty"

            def execute(self, request, deadline=None):
                raise IOFaultError("disk on fire")

        service = QueryService(FaultingBackend())
        outcome = service.submit(make_requests(data, 1)[0])
        assert outcome.status == "error"
        assert "disk on fire" in outcome.error

    def test_breaker_opens_after_repeated_faults(self, served_tree):
        data, tree = served_tree

        class FaultingBackend:
            name = "faulty"

            def execute(self, request, deadline=None):
                raise IOFaultError("persistent")

        clock = [0.0]
        service = QueryService(
            FaultingBackend(),
            breaker=CircuitBreaker(
                "faulty",
                failure_threshold=3,
                recovery_timeout_s=100.0,
                clock=lambda: clock[0],
            ),
        )
        requests = make_requests(data, 6)
        statuses = [service.submit(r).status for r in requests]
        assert statuses[:3] == ["error"] * 3
        assert statuses[3:] == ["circuit_open"] * 3

    def test_pager_faults_reach_the_breaker(self, served_tree):
        """The full stack: tree + faulting pager behind the service."""
        data, tree = served_tree
        pager = PageStore(4096)
        for node in tree.iter_nodes():
            pager.allocate(node)
        faulty = FaultyPageStore(
            pager, FaultPolicy(read_fail_rate=1.0, seed=3)
        )
        service = QueryService(
            MTreeBackend(tree, pager=faulty),
            breaker=CircuitBreaker("pager", failure_threshold=2),
        )
        statuses = [
            service.submit(r).status for r in make_requests(data, 4)
        ]
        assert statuses[:2] == ["error", "error"]
        assert statuses[2:] == ["circuit_open", "circuit_open"]

    def test_default_deadline_applies(self, served_tree):
        data, tree = served_tree
        service = QueryService(
            MTreeBackend(tree), default_deadline_s=60.0
        )
        assert service.submit(make_requests(data, 1)[0]).ok


class TestRun:
    def test_batch_matches_single_threaded(self, served_tree):
        data, tree = served_tree
        requests = make_requests(data, 50)
        service = QueryService(
            MTreeBackend(tree),
            admission=AdmissionController(max_concurrent=4, max_queue=64),
        )
        report = service.run(requests, workers=4)
        assert isinstance(report, ServiceReport)
        assert report.total == 50
        assert report.count("ok") == 50
        reference = QueryService(MTreeBackend(tree)).run(requests, workers=1)
        for concurrent, single in zip(report.outcomes, reference.outcomes):
            assert concurrent.request.request_id == single.request.request_id
            assert sorted(o for o, _v, _d in concurrent.items) == sorted(
                o for o, _v, _d in single.items
            )

    def test_overload_sheds_and_keeps_p99_bounded(self, served_tree):
        data, tree = served_tree
        requests = make_requests(data, 120)
        service = QueryService(
            MTreeBackend(tree),
            admission=AdmissionController(max_concurrent=2, max_queue=1),
        )
        report = service.run(requests, workers=12, deadline_ms=10_000)
        assert report.count("ok") + report.count("rejected") == 120
        assert report.count("rejected") > 0
        # Shed requests exit fast — well under the 5 ms acceptance bar.
        assert report.latency_percentile(99, status="rejected") < 0.005

    def test_worker_validation(self, served_tree):
        data, tree = served_tree
        service = QueryService(MTreeBackend(tree))
        with pytest.raises(InvalidParameterError):
            service.run(make_requests(data, 1), workers=0)

    def test_metrics_mirroring(self, served_tree):
        data, tree = served_tree
        registry = observability.install()
        try:
            service = QueryService(MTreeBackend(tree))
            service.run(make_requests(data, 10), workers=2)
            snap = registry.snapshot()
            assert snap.get("service.requests", status="ok") == 10
            assert snap.get("service.admitted") == 10
            hist = snap.get("service.latency_seconds", None, status="ok")
            assert hist is not None and hist["count"] == 10
        finally:
            observability.uninstall()


class TestOtherBackends:
    def test_vptree_backend(self, small_uniform):
        from repro.vptree import VPTree

        tree = VPTree.build(
            list(small_uniform.points), small_uniform.metric, seed=2
        )
        service = QueryService(VPTreeBackend(tree))
        outcome = service.submit(
            QueryRequest("range", small_uniform.points[0], radius=0.3)
        )
        assert outcome.ok
        assert outcome.dists > 0

    def test_optimizer_backend(self, served_tree):
        data, tree = served_tree
        from repro.core import (
            NodeBasedCostModel,
            estimate_distance_histogram,
        )
        from repro.mtree import collect_node_stats
        from repro.optimizer import (
            LinearScanPlan,
            MTreeRangePlan,
            SimilarityQueryOptimizer,
        )
        from repro.workloads import LinearScanBaseline

        hist = estimate_distance_histogram(
            data.points, data.metric, data.d_plus, n_bins=40
        )
        model = NodeBasedCostModel(
            hist, collect_node_stats(tree, data.d_plus), len(data.points)
        )
        optimizer = SimilarityQueryOptimizer(
            [
                MTreeRangePlan(tree, model),
                LinearScanPlan(
                    LinearScanBaseline(list(data.points), data.metric, 16, 4096)
                ),
            ]
        )
        service = QueryService(OptimizerBackend(optimizer))
        outcome = service.submit(make_requests(data, 1)[0])
        assert outcome.ok
        assert outcome.dists > 0
