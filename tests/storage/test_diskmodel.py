"""Tests for the Section 4.1 disk cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.storage import DiskModel


class TestDiskModel:
    def test_paper_example_values(self):
        """c_IO = (10 + NS * 1) ms for the paper's worked example."""
        model = DiskModel(positioning_ms=10.0, transfer_ms_per_kb=1.0)
        assert model.io_cost_ms(4.0) == pytest.approx(14.0)
        assert model.io_cost_ms(8.0) == pytest.approx(18.0)
        assert model.io_cost_ms(0.5) == pytest.approx(10.5)

    def test_query_cost_composition(self):
        model = DiskModel(
            positioning_ms=10.0, transfer_ms_per_kb=1.0, distance_ms=5.0
        )
        cost = model.query_cost_ms(nodes=10, dists=100, node_size_kb=4.0)
        assert cost.io_ms == pytest.approx(10 * 14.0)
        assert cost.cpu_ms == pytest.approx(100 * 5.0)
        assert cost.total_ms == pytest.approx(140.0 + 500.0)

    def test_zero_costs(self):
        model = DiskModel()
        cost = model.query_cost_ms(0, 0, 1.0)
        assert cost.total_ms == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"positioning_ms": -1.0},
            {"transfer_ms_per_kb": -0.5},
            {"distance_ms": -2.0},
        ],
    )
    def test_negative_params_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            DiskModel(**kwargs)

    def test_invalid_node_size(self):
        with pytest.raises(InvalidParameterError):
            DiskModel().io_cost_ms(0.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiskModel().query_cost_ms(-1, 0, 1.0)
