"""Tests for the simulated page store."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.storage import PageStore


class TestPageStore:
    def test_allocate_and_read(self):
        store = PageStore(page_size_bytes=4096)
        pid = store.allocate("payload")
        assert store.read(pid) == "payload"
        assert store.stats.logical_reads == 1
        assert store.stats.physical_reads == 1

    def test_no_buffer_every_read_physical(self):
        store = PageStore(4096, buffer_pages=0)
        pid = store.allocate("x")
        for _ in range(5):
            store.read(pid)
        assert store.stats.physical_reads == 5
        assert store.stats.hit_ratio == 0.0

    def test_lru_buffer_hits(self):
        store = PageStore(4096, buffer_pages=2)
        a = store.allocate("a")
        b = store.allocate("b")
        store.read(a)
        store.read(b)
        store.read(a)  # hit
        assert store.stats.logical_reads == 3
        assert store.stats.physical_reads == 2
        assert store.stats.hit_ratio == pytest.approx(1 / 3)

    def test_lru_eviction_order(self):
        store = PageStore(4096, buffer_pages=2)
        a, b, c = store.allocate("a"), store.allocate("b"), store.allocate("c")
        store.read(a)
        store.read(b)
        store.read(c)  # evicts a (LRU)
        store.read(a)  # must be physical again
        assert store.stats.physical_reads == 4

    def test_lru_touch_refreshes(self):
        store = PageStore(4096, buffer_pages=2)
        a, b, c = store.allocate("a"), store.allocate("b"), store.allocate("c")
        store.read(a)
        store.read(b)
        store.read(a)  # refresh a: now b is LRU
        store.read(c)  # evicts b
        store.read(a)  # hit
        assert store.stats.physical_reads == 3

    def test_write_invalidates_buffer(self):
        store = PageStore(4096, buffer_pages=2)
        a = store.allocate("v1")
        store.read(a)
        store.write(a, "v2")
        assert store.read(a) == "v2"

    def test_unknown_page_rejected(self):
        store = PageStore(4096)
        with pytest.raises(InvalidParameterError):
            store.read(99)
        with pytest.raises(InvalidParameterError):
            store.write(99, "x")

    def test_reset_stats(self):
        store = PageStore(4096)
        pid = store.allocate("x")
        store.read(pid)
        store.reset_stats()
        assert store.stats.logical_reads == 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"page_size_bytes": 0}, {"page_size_bytes": 4096, "buffer_pages": -1}],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(InvalidParameterError):
            PageStore(**kwargs)

    def test_len(self):
        store = PageStore(1024)
        store.allocate("a")
        store.allocate("b")
        assert len(store) == 2
