"""Public-API surface checks: every advertised name exists and resolves."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.metrics",
    "repro.datasets",
    "repro.mtree",
    "repro.vptree",
    "repro.storage",
    "repro.workloads",
    "repro.experiments",
    "repro.optimizer",
    "repro.persistence",
    "repro.gist",
    "repro.reliability",
    "repro.context",
    "repro.service",
    "repro.observability",
    "repro.analysis",
    "repro.cluster",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstrings_present(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__, f"{package_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_documented(package_name):
    """Every public class and function carries a docstring."""
    module = importlib.import_module(package_name)
    for name in module.__all__:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            assert member.__doc__, f"{package_name}.{name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__


def test_exceptions_hierarchy():
    from repro.exceptions import (
        CapacityError,
        CircuitOpenError,
        CorruptedDataError,
        DeadlineExceededError,
        EmptyDatasetError,
        EmptyTreeError,
        FormatVersionError,
        HistogramDomainError,
        InvalidParameterError,
        IOFaultError,
        MetricostError,
        OperationCancelledError,
        OverloadError,
        RetryExhaustedError,
        StructuralCorruptionError,
    )

    for error_type in (
        InvalidParameterError,
        EmptyDatasetError,
        EmptyTreeError,
        CapacityError,
        HistogramDomainError,
        IOFaultError,
        RetryExhaustedError,
        CorruptedDataError,
        FormatVersionError,
        DeadlineExceededError,
        OperationCancelledError,
        OverloadError,
        CircuitOpenError,
        StructuralCorruptionError,
    ):
        assert issubclass(error_type, MetricostError)
    # ValueError / IOError / TimeoutError compatibility where promised.
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(CapacityError, ValueError)
    assert issubclass(FormatVersionError, ValueError)
    assert issubclass(IOFaultError, IOError)
    assert issubclass(DeadlineExceededError, TimeoutError)
