"""Smoke-run every bench entry point at quick scale.

Each ``benchmarks/bench_*.py`` file is executed in a subprocess with
``METRICOST_BENCH_SCALE=quick`` and ``--benchmark-disable`` (one plain
call per bench, no timing rounds), asserting a clean exit and that the
autouse conftest fixture emitted a metrics snapshot for every test in the
file.  This keeps all twenty paper/extension benches runnable without
paying their default-scale runtimes in CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))

# Per-file subprocess timeout: quick-scale benches finish in 3-15 s each;
# a stuck bench should fail fast rather than hang the suite.
TIMEOUT_S = 180


def test_bench_directory_is_nonempty():
    assert len(BENCH_FILES) >= 20, "bench suite unexpectedly shrank"


@pytest.mark.parametrize(
    "bench_file", BENCH_FILES, ids=lambda p: p.stem
)
def test_bench_smoke(bench_file, tmp_path):
    metrics_dir = tmp_path / "metrics"
    env = dict(os.environ)
    env["METRICOST_BENCH_SCALE"] = "quick"
    env["METRICOST_METRICS_DIR"] = str(metrics_dir)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            "--benchmark-disable",
            "-q",
            "-x",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"{bench_file.name} failed at quick scale:\n"
        f"{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )

    snapshots = sorted(metrics_dir.glob("*.metrics.json"))
    assert snapshots, f"{bench_file.name} emitted no metrics snapshot"
    for snapshot_file in snapshots:
        payload = json.loads(snapshot_file.read_text())
        assert payload["format"] == "metricost-metrics-v1"
