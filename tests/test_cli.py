"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for name in [*EXPERIMENTS, "all"]:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.size == 8000
        assert args.queries == 100
        assert not args.quick

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure4", "--size", "1234", "--queries", "7"]
        )
        assert args.size == 1234
        assert args.queries == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_quick_figure4(self, capsys):
        code = main(["figure4", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "done in" in out

    def test_quick_table1(self, capsys):
        code = main(["table1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "homogeneity" in out

    def test_quick_vptree(self, capsys):
        code = main(["vptree", "--quick"])
        assert code == 0
        assert "vp-tree" in capsys.readouterr().out
