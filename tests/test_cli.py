"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import observability
from repro.__main__ import EXPERIMENTS, build_parser, main
from repro.observability import MetricsSnapshot


class TestParser:
    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for name in [*EXPERIMENTS, "all"]:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.size == 8000
        assert args.queries == 100
        assert not args.quick

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure4", "--size", "1234", "--queries", "7"]
        )
        assert args.size == 1234
        assert args.queries == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_metrics_subcommand(self):
        args = build_parser().parse_args(["metrics"])
        assert args.experiment == "metrics"
        assert not args.json
        assert args.input is None
        assert not args.reset

    def test_metrics_flags(self):
        args = build_parser().parse_args(
            ["metrics", "--json", "--input", "snap.json", "--reset"]
        )
        assert args.json and args.reset
        assert args.input == "snap.json"

    def test_experiments_accept_metrics_flags(self):
        args = build_parser().parse_args(
            ["figure4", "--metrics", "--metrics-out", "out.json"]
        )
        assert args.metrics
        assert args.metrics_out == "out.json"


class TestMain:
    def test_quick_figure4(self, capsys):
        code = main(["figure4", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "done in" in out

    def test_quick_table1(self, capsys):
        code = main(["table1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "homogeneity" in out

    def test_quick_vptree(self, capsys):
        code = main(["vptree", "--quick"])
        assert code == 0
        assert "vp-tree" in capsys.readouterr().out


class TestMetricsCli:
    @pytest.fixture(autouse=True)
    def clean_observability(self):
        observability.uninstall()
        yield
        observability.uninstall()

    def test_metrics_on_empty_registry(self, capsys):
        assert main(["metrics"]) == 0
        assert "no metrics recorded" in capsys.readouterr().out

    def test_experiment_with_metrics_prints_counters(self, capsys):
        code = main(["figure4", "--quick", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== metrics" in out
        assert "mtree.nodes_accessed" in out
        assert "mtree.dists_computed" in out

    def test_metrics_out_round_trips_through_json(self, capsys, tmp_path):
        out_file = tmp_path / "snap.json"
        assert main(
            ["figure4", "--quick", "--metrics-out", str(out_file)]
        ) == 0
        capsys.readouterr()

        snap = MetricsSnapshot.from_json(out_file.read_text())
        assert snap.total("mtree.nodes_accessed") > 0

        # `metrics --input` renders the persisted snapshot...
        assert main(["metrics", "--input", str(out_file)]) == 0
        table = capsys.readouterr().out
        assert "mtree.nodes_accessed" in table

        # ...and `--json` re-emits parseable JSON with the format tag.
        assert main(["metrics", "--input", str(out_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "metricost-metrics-v1"
        clone = MetricsSnapshot.from_dict(payload)
        assert clone.total("mtree.nodes_accessed") == snap.total(
            "mtree.nodes_accessed"
        )

    def test_metrics_reset_clears_live_registry(self, capsys):
        registry = observability.install()
        registry.inc("stale.counter", 5)
        assert main(["metrics", "--reset"]) == 0
        assert "stale.counter" in capsys.readouterr().out
        assert registry.counter_value("stale.counter") == 0

    def test_metrics_run_leaves_observability_installed(self, capsys):
        """--metrics installs the layer; the live registry stays queryable
        afterwards via `metrics` in the same process."""
        assert main(["figure4", "--quick", "--metrics"]) == 0
        capsys.readouterr()
        assert observability.installed()
        assert main(["metrics"]) == 0
        assert "mtree.nodes_accessed" in capsys.readouterr().out


class TestSelfHealingCli:
    """The doctor / fsck / scrub subcommands and their --json contracts."""

    def test_doctor_json_healthy(self, capsys):
        assert main(["doctor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"] is True
        assert payload["checks"]

    def test_doctor_json_flags_damaged_artifacts(self, capsys, tmp_path):
        (tmp_path / "legacy.json").write_text('{"kind": "x", "version": 1}')
        assert (
            main(
                [
                    "doctor",
                    "--json",
                    "--strict",
                    "--artifacts",
                    str(tmp_path),
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"] is False

    def test_fsck_selftest_detects_and_repairs(self, capsys):
        assert main(["fsck", "--json", "--size", "220"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"] is True
        assert len(payload["cases"]) == 7
        for case in payload["cases"]:
            assert case["ok"], case
            assert case["detected"]
            assert case["expected"] in case["detected_kinds"]

    def test_fsck_selftest_table(self, capsys):
        assert main(["fsck", "--size", "220"]) == 0
        out = capsys.readouterr().out
        assert "structural self-test" in out
        assert "radius_violation" in out

    def test_fsck_checks_persisted_tree(self, capsys, tmp_path):
        import numpy as np

        from repro.datasets import clustered_dataset
        from repro.mtree import bulk_load, vector_layout
        from repro.persistence import save_mtree

        data = clustered_dataset(size=120, dim=3, seed=9)
        tree = bulk_load(
            data.points, data.metric, vector_layout(3), seed=9
        )
        path = tmp_path / "tree.json"
        save_mtree(tree, path)
        assert main(["fsck", "--json", "--mtree", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["tree_kind"] == "mtree"

    def test_fsck_rejects_both_tree_kinds(self, capsys):
        assert main(["fsck", "--mtree", "a.json", "--vptree", "b.json"]) == 2

    def test_scrub_clean_tree_exits_zero(self, capsys):
        assert main(["scrub", "--json", "--size", "300"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["fault_kinds"] == []
        assert payload["progress"]["complete"] is True

    def test_scrub_injected_fault_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "scrub",
                    "--json",
                    "--size",
                    "600",
                    "--inject",
                    "shrink_radius",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert "radius_violation" in payload["fault_kinds"]
        assert payload["quarantined_nodes"] >= 1
        assert payload["probe_query"]["completeness"] <= 1.0

    def test_scrub_unknown_fault_kind_rejected(self, capsys):
        assert main(["scrub", "--inject", "set_on_fire"]) == 2

    def test_fsck_corrupt_artifact_fails_cleanly(self, capsys, tmp_path):
        from repro.reliability import dumps_artifact

        path = tmp_path / "tree.json"
        text = dumps_artifact({"kind": "mtree", "version": 1})
        path.write_text(text.replace("1", "2", 1))
        assert main(["fsck", "--json", "--mtree", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "error" in payload
