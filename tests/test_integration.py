"""End-to-end integration tests: the full model-validation pipeline.

These run the entire DESIGN.md §3 data flow at a medium, deterministic
scale and assert the paper's headline claims qualitatively: the models
track actual costs, N-MCM is at least as accurate as L-MCM on average, and
the M-tree beats the linear-scan baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LevelBasedCostModel,
    NodeBasedCostModel,
    estimate_distance_histogram,
)
from repro.datasets import clustered_dataset, paper_text_dataset
from repro.experiments import (
    build_text_setup,
    build_vector_setup,
    paper_range_radius,
    relative_error,
)
from repro.mtree import bulk_load, collect_level_stats, collect_node_stats
from repro.workloads import (
    LinearScanBaseline,
    run_knn_workload,
    run_range_workload,
    sample_workload,
)


@pytest.fixture(scope="module")
def vector_setup():
    dataset = clustered_dataset(4000, 10, seed=42)
    return dataset, build_vector_setup(dataset, n_queries=80)


class TestRangeModelAccuracy:
    def test_both_models_within_25_percent(self, vector_setup):
        dataset, setup = vector_setup
        radius = paper_range_radius(10)
        measured = run_range_workload(setup.tree, setup.workload, radius)
        for model in (setup.node_model, setup.level_model):
            assert relative_error(
                float(model.range_dists(radius)), measured.mean_dists
            ) < 0.25
            assert relative_error(
                float(model.range_nodes(radius)), measured.mean_nodes
            ) < 0.25

    def test_selectivity_estimate(self, vector_setup):
        dataset, setup = vector_setup
        radius = paper_range_radius(10)
        measured = run_range_workload(setup.tree, setup.workload, radius)
        assert relative_error(
            float(setup.node_model.range_objs(radius)), measured.mean_results
        ) < 0.15

    def test_models_track_radius_sweep(self, vector_setup):
        """Estimated and actual cost curves must rise together."""
        dataset, setup = vector_setup
        radii = [0.1, 0.2, 0.3, 0.4]
        actual = [
            run_range_workload(setup.tree, setup.workload, r).mean_dists
            for r in radii
        ]
        predicted = [float(setup.node_model.range_dists(r)) for r in radii]
        assert actual == sorted(actual)
        assert predicted == sorted(predicted)
        # Correlated within a reasonable band everywhere.
        for a, p in zip(actual, predicted):
            assert relative_error(p, a) < 0.3


class TestKNNModelAccuracy:
    def test_nn_estimates_in_band(self, vector_setup):
        dataset, setup = vector_setup
        measured = run_knn_workload(setup.tree, setup.workload, 1)
        estimate = setup.level_model.nn_costs(1, method="integral")
        assert relative_error(estimate.dists, measured.mean_dists) < 0.6
        assert relative_error(estimate.nodes, measured.mean_nodes) < 0.6

    def test_expected_nn_distance_close(self, vector_setup):
        dataset, setup = vector_setup
        measured = run_knn_workload(setup.tree, setup.workload, 1)
        estimate = setup.level_model.nn_costs(1, method="integral")
        assert relative_error(
            estimate.expected_nn_distance, measured.mean_nn_distance
        ) < 0.35

    def test_generalised_k(self, vector_setup):
        """Extension: NN cost estimates grow with k and stay bounded."""
        dataset, setup = vector_setup
        estimates = [
            setup.level_model.nn_costs(k, method="integral").dists
            for k in (1, 5, 20)
        ]
        assert estimates == sorted(estimates)
        assert estimates[-1] <= setup.n_objects + setup.tree.n_nodes()


class TestTextPipeline:
    def test_text_model_accuracy(self):
        dataset = paper_text_dataset("GL", scale=0.06)
        setup = build_text_setup(dataset, n_queries=40)
        measured = run_range_workload(setup.tree, setup.workload, 3.0)
        assert relative_error(
            float(setup.node_model.range_dists(3.0)), measured.mean_dists
        ) < 0.25
        assert relative_error(
            float(setup.node_model.range_nodes(3.0)), measured.mean_nodes
        ) < 0.25


class TestIndexBeatsBaseline:
    def test_mtree_beats_linear_scan_on_selective_queries(self, vector_setup):
        dataset, setup = vector_setup
        baseline = LinearScanBaseline(
            list(dataset.points), dataset.metric, 4 * dataset.dim, 4096
        )
        radius = 0.05
        measured = run_range_workload(setup.tree, setup.workload, radius)
        _matches, _nodes, scan_dists = baseline.range_query(
            setup.workload.queries[0], radius
        )
        assert measured.mean_dists < scan_dists

    def test_knn_beats_linear_scan(self, vector_setup):
        dataset, setup = vector_setup
        measured = run_knn_workload(setup.tree, setup.workload, 1)
        assert measured.mean_dists < len(dataset.points)


class TestModelConsistency:
    def test_node_and_level_models_agree_roughly(self, vector_setup):
        """The two models are views of the same tree: their estimates may
        differ but must stay within a band of each other."""
        dataset, setup = vector_setup
        for radius in (0.1, 0.25, 0.4):
            node_est = float(setup.node_model.range_dists(radius))
            level_est = float(setup.level_model.range_dists(radius))
            assert relative_error(level_est, node_est) < 0.2

    def test_stats_roundtrip(self, vector_setup):
        """Rebuilding models from freshly collected stats reproduces the
        same estimates (stats collection is deterministic)."""
        dataset, setup = vector_setup
        node_stats = collect_node_stats(setup.tree, dataset.d_plus)
        level_stats = collect_level_stats(setup.tree, dataset.d_plus)
        node_model = NodeBasedCostModel(
            setup.hist, node_stats, setup.n_objects
        )
        level_model = LevelBasedCostModel(
            setup.hist, level_stats, setup.n_objects
        )
        assert float(node_model.range_dists(0.2)) == pytest.approx(
            float(setup.node_model.range_dists(0.2))
        )
        assert float(level_model.range_nodes(0.2)) == pytest.approx(
            float(setup.level_model.range_nodes(0.2))
        )
