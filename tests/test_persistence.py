"""Round-trip tests for serialisation of histograms, stats and trees."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    DistanceHistogram,
    LevelStat,
    NodeStat,
    estimate_distance_histogram,
)
from repro.datasets import uniform_dataset
from repro.exceptions import InvalidParameterError
from repro.metrics import L2, EditDistance
from repro.mtree import NodeLayout, bulk_load
from repro.persistence import (
    histogram_from_dict,
    histogram_to_dict,
    load_histogram,
    load_mtree,
    load_vptree,
    mtree_from_dict,
    mtree_to_dict,
    save_histogram,
    save_mtree,
    save_vptree,
    stats_from_dict,
    stats_to_dict,
    vptree_from_dict,
    vptree_to_dict,
)
from repro.vptree import VPTree


class TestHistogramRoundTrip:
    def test_dict_roundtrip(self):
        hist = DistanceHistogram([1, 3, 2, 4], 2.5)
        clone = histogram_from_dict(histogram_to_dict(hist))
        np.testing.assert_allclose(clone.bin_probs, hist.bin_probs)
        assert clone.d_plus == hist.d_plus

    def test_file_roundtrip(self, tmp_path):
        hist = DistanceHistogram.uniform(50, 1.0)
        path = tmp_path / "hist.json"
        save_histogram(hist, path)
        clone = load_histogram(path)
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(clone.cdf(xs), hist.cdf(xs))

    def test_json_serialisable(self):
        hist = DistanceHistogram([1, 2], 1.0)
        json.dumps(histogram_to_dict(hist))  # must not raise

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            histogram_from_dict({"kind": "something-else"})


class TestStatsRoundTrip:
    def test_node_stats(self):
        stats = [
            NodeStat(radius=1.0, n_entries=3, level=1),
            NodeStat(radius=0.4, n_entries=7, level=2),
        ]
        payload = stats_to_dict(node_stats=stats, n_objects=10)
        node_stats, level_stats, n = stats_from_dict(payload)
        assert node_stats == stats
        assert level_stats is None
        assert n == 10

    def test_level_stats(self):
        stats = [LevelStat(level=1, n_nodes=1, avg_radius=1.0)]
        payload = stats_to_dict(level_stats=stats)
        node_stats, level_stats, n = stats_from_dict(payload)
        assert node_stats is None
        assert level_stats == stats
        assert n is None

    def test_json_serialisable(self):
        payload = stats_to_dict(
            node_stats=[NodeStat(radius=0.5, n_entries=2, level=1)]
        )
        json.dumps(payload)

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            stats_from_dict({"kind": "mtree"})


class TestMTreeRoundTrip:
    @pytest.fixture(scope="class")
    def tree(self):
        data = uniform_dataset(300, 3, metric=L2(), seed=1)
        layout = NodeLayout(node_size_bytes=256, object_bytes=12)
        return bulk_load(data.points, L2(), layout, seed=2), data

    def test_structure_preserved(self, tree):
        built, _data = tree
        clone = mtree_from_dict(mtree_to_dict(built), L2())
        clone.validate()
        assert len(clone) == len(built)
        assert clone.n_nodes() == built.n_nodes()
        assert clone.height == built.height

    def test_queries_identical(self, tree):
        built, data = tree
        clone = mtree_from_dict(mtree_to_dict(built), L2())
        rng = np.random.default_rng(3)
        for _ in range(5):
            query = rng.random(3)
            assert sorted(clone.range_query(query, 0.4).oids()) == sorted(
                built.range_query(query, 0.4).oids()
            )
            np.testing.assert_allclose(
                clone.knn_query(query, 5).distances(),
                built.knn_query(query, 5).distances(),
            )

    def test_file_roundtrip(self, tree, tmp_path):
        built, _data = tree
        path = tmp_path / "tree.json"
        save_mtree(built, path)
        clone = load_mtree(path, L2())
        clone.validate()
        assert len(clone) == len(built)

    def test_inserts_continue_after_load(self, tree):
        built, _data = tree
        clone = mtree_from_dict(mtree_to_dict(built), L2())
        new_oid = clone.insert(np.array([0.5, 0.5, 0.5]))
        assert new_oid == len(built)
        clone.validate()

    def test_string_tree_roundtrip(self, words, tmp_path):
        layout = NodeLayout(node_size_bytes=128, object_bytes=10)
        tree = bulk_load(words, EditDistance(), layout, seed=4)
        path = tmp_path / "words.json"
        save_mtree(tree, path)
        clone = load_mtree(path, EditDistance())
        clone.validate()
        assert sorted(clone.range_query("casa", 1).oids()) == sorted(
            tree.range_query("casa", 1).oids()
        )

    def test_empty_tree_roundtrip(self):
        from repro.mtree import MTree, vector_layout

        tree = MTree(L2(), vector_layout(2))
        clone = mtree_from_dict(mtree_to_dict(tree), L2())
        assert len(clone) == 0

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            mtree_from_dict({"kind": "vptree"}, L2())


class TestVPTreeRoundTrip:
    def test_structure_and_queries(self, tmp_path):
        rng = np.random.default_rng(5)
        points = rng.random((200, 3))
        tree = VPTree.build(list(points), L2(), arity=3, seed=6)
        path = tmp_path / "vptree.json"
        save_vptree(tree, path)
        clone = load_vptree(path, L2())
        clone.validate()
        assert clone.n_nodes() == tree.n_nodes()
        query = rng.random(3)
        assert sorted(clone.range_query(query, 0.3).oids()) == sorted(
            tree.range_query(query, 0.3).oids()
        )

    def test_empty_roundtrip(self):
        tree = VPTree.build([], L2())
        clone = vptree_from_dict(vptree_to_dict(tree), L2())
        assert len(clone) == 0

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            vptree_from_dict({"kind": "mtree"}, L2())


class TestCustomCodec:
    def test_custom_encoder_decoder(self, tmp_path):
        """Tuple-typed objects round-trip through a user codec."""
        from repro.metrics import FunctionMetric
        from repro.mtree import MTree, NodeLayout

        metric = FunctionMetric(
            lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]), name="pair-L1"
        )
        layout = NodeLayout(node_size_bytes=128, object_bytes=8)
        tree = MTree(metric, layout)
        for i in range(20):
            tree.insert((float(i), float(i % 3)))
        payload = mtree_to_dict(
            tree, encode=lambda obj: {"t": "pair", "v": list(obj)}
        )
        clone = mtree_from_dict(
            payload, metric, decode=lambda p: tuple(p["v"])
        )
        clone.validate()
        assert sorted(clone.range_query((3.0, 0.0), 1.0).oids()) == sorted(
            tree.range_query((3.0, 0.0), 1.0).oids()
        )

    def test_default_encoder_rejects_unknown(self):
        from repro.persistence import _default_encode

        with pytest.raises(InvalidParameterError):
            _default_encode(object())
