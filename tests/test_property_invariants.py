"""Cross-module property-based tests on randomised inputs.

Hypothesis drives data, radii and tree parameters; the invariants are the
structural guarantees DESIGN.md §3 lists.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistanceHistogram, NodeBasedCostModel
from repro.metrics import L2, LInf
from repro.mtree import NodeLayout, bulk_load, collect_node_stats
from repro.vptree import VPTree


def dataset_strategy():
    return st.tuples(
        st.integers(min_value=2, max_value=120),  # n
        st.integers(min_value=1, max_value=4),  # dim
        st.integers(min_value=0, max_value=10_000),  # data seed
    )


@st.composite
def tree_case(draw):
    n, dim, seed = draw(dataset_strategy())
    radius = draw(st.floats(min_value=0.0, max_value=1.5))
    points = np.random.default_rng(seed).random((n, dim))
    return points, radius


class TestMTreeProperties:
    @given(tree_case())
    @settings(max_examples=25)
    def test_range_equals_linear_scan(self, case):
        points, radius = case
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=1)
        query = points.mean(axis=0)
        got = sorted(tree.range_query(query, radius).oids())
        expected = sorted(
            i
            for i, p in enumerate(points)
            if L2().distance(query, p) <= radius
        )
        assert got == expected

    @given(tree_case(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=25)
    def test_knn_matches_brute_force(self, case, k):
        points, _radius = case
        if k > len(points):
            k = len(points)
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=2)
        query = points[0] + 0.01
        got = tree.knn_query(query, k).distances()
        brute = sorted(L2().distance(query, p) for p in points)[:k]
        np.testing.assert_allclose(got, brute, atol=1e-9)

    @given(dataset_strategy())
    @settings(max_examples=20)
    def test_structural_invariants(self, params):
        n, dim, seed = params
        points = np.random.default_rng(seed).random((n, dim))
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=3)
        tree.validate()  # covering radii, balance, capacities, counts


class TestVPTreeProperties:
    @given(tree_case(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=20)
    def test_range_equals_linear_scan(self, case, arity):
        points, radius = case
        tree = VPTree.build(list(points), LInf(), arity=arity, seed=4)
        tree.validate()
        query = points.mean(axis=0)
        got = sorted(tree.range_query(query, radius).oids())
        expected = sorted(
            i
            for i, p in enumerate(points)
            if LInf().distance(query, p) <= radius
        )
        assert got == expected


class TestCostModelProperties:
    @given(
        st.lists(st.floats(0.01, 1.0), min_size=1, max_size=20),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=30)
    def test_nmcm_bounds(self, radii, query_radius):
        """0 <= nodes(range) <= M for any stats and radius."""
        hist = DistanceHistogram.uniform(50, 1.0)
        from repro.core import NodeStat

        stats = [
            NodeStat(radius=r, n_entries=3, level=1 + (i % 2))
            for i, r in enumerate(radii)
        ]
        model = NodeBasedCostModel(hist, stats, n_objects=max(3, len(radii)))
        nodes = float(model.range_nodes(query_radius))
        assert 0.0 <= nodes <= len(radii) + 1e-9
        dists = float(model.range_dists(query_radius))
        assert 0.0 <= dists <= 3 * len(radii) + 1e-9

    @given(st.integers(2, 500), st.floats(0.0, 1.0))
    @settings(max_examples=30)
    def test_model_agrees_with_exact_expectation_single_level(
        self, n_nodes, query_radius
    ):
        """For a flat collection of nodes with a known uniform F, Eq. 6 is
        just n_nodes * F(r + r_Q); check the vectorised code equals it."""
        hist = DistanceHistogram.uniform(64, 1.0)
        from repro.core import NodeStat

        stats = [
            NodeStat(radius=0.25, n_entries=2, level=1)
            for _ in range(n_nodes)
        ]
        model = NodeBasedCostModel(hist, stats, n_objects=2 * n_nodes)
        expected = n_nodes * float(hist.cdf(0.25 + query_radius))
        assert float(model.range_nodes(query_radius)) == pytest.approx(
            expected, rel=1e-9
        )


class TestComplexQuerySemantics:
    @given(tree_case(), st.floats(0.0, 1.0), st.integers(0, 1000))
    @settings(max_examples=20)
    def test_and_is_intersection_or_is_union(self, case, radius2, qseed):
        """complex_range_query must equal the set algebra of the single
        predicates, for any data, radii and query pair."""
        points, radius1 = case
        if len(points) < 2:
            return
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=5)
        qrng = np.random.default_rng(qseed)
        q1 = qrng.random(points.shape[1])
        q2 = qrng.random(points.shape[1])
        single1 = set(tree.range_query(q1, radius1).oids())
        single2 = set(tree.range_query(q2, radius2).oids())
        both = tree.complex_range_query(
            [(q1, radius1), (q2, radius2)], mode="and"
        )
        either = tree.complex_range_query(
            [(q1, radius1), (q2, radius2)], mode="or"
        )
        assert set(both.oids()) == single1 & single2
        assert set(either.oids()) == single1 | single2


class TestPersistenceProperties:
    @given(dataset_strategy())
    @settings(max_examples=15)
    def test_mtree_roundtrip_preserves_queries(self, params):
        from repro.persistence import mtree_from_dict, mtree_to_dict

        n, dim, seed = params
        points = np.random.default_rng(seed).random((n, dim))
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=6)
        clone = mtree_from_dict(mtree_to_dict(tree), L2())
        clone.validate()
        query = points.mean(axis=0)
        for radius in (0.1, 0.5):
            assert sorted(clone.range_query(query, radius).oids()) == sorted(
                tree.range_query(query, radius).oids()
            )

    @given(
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=40),
        st.floats(0.5, 10.0),
    )
    @settings(max_examples=30)
    def test_histogram_roundtrip_exact(self, probs, d_plus):
        from repro.persistence import histogram_from_dict, histogram_to_dict

        hist = DistanceHistogram(probs, d_plus)
        clone = histogram_from_dict(histogram_to_dict(hist))
        xs = np.linspace(0, d_plus, 17)
        np.testing.assert_allclose(clone.cdf(xs), hist.cdf(xs), atol=1e-12)


class TestDeleteProperties:
    @given(dataset_strategy(), st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_random_deletions_preserve_search(self, params, delete_seed):
        n, dim, seed = params
        if n < 4:
            return
        points = np.random.default_rng(seed).random((n, dim))
        layout = NodeLayout(node_size_bytes=160, object_bytes=16)
        tree = bulk_load(points, L2(), layout, seed=7)
        delete_rng = np.random.default_rng(delete_seed)
        victims = delete_rng.choice(n, size=n // 3, replace=False)
        for victim in victims:
            assert tree.delete(points[victim], oid=int(victim))
        tree.validate()
        survivors = set(range(n)) - set(int(v) for v in victims)
        query = points.mean(axis=0)
        got = set(tree.range_query(query, 0.4).oids())
        expected = {
            i
            for i in survivors
            if L2().distance(query, points[i]) <= 0.4
        }
        assert got == expected


class TestGiSTProperties:
    @given(tree_case())
    @settings(max_examples=15)
    def test_metric_ball_gist_matches_scan(self, case):
        from repro.gist import BallRangeQuery, GiST, MetricBallExtension

        points, radius = case
        tree = GiST(MetricBallExtension(L2()), node_capacity=6)
        tree.insert_many(points)
        tree.validate()
        query = points.mean(axis=0)
        found, _stats = tree.search(BallRangeQuery(query, radius))
        expected = sorted(
            i
            for i, p in enumerate(points)
            if L2().distance(query, p) <= radius
        )
        assert sorted(oid for oid, _obj in found) == expected

    @given(dataset_strategy())
    @settings(max_examples=15)
    def test_box_gist_point_queries_find_everything(self, params):
        from repro.gist import Box, BoxRangeQuery, GiST, BoundingBoxExtension

        n, dim, seed = params
        points = np.random.default_rng(seed).random((n, dim))
        tree = GiST(BoundingBoxExtension(), node_capacity=5)
        tree.insert_many(points)
        tree.validate()
        for i in range(0, n, max(1, n // 7)):
            found, _stats = tree.search(
                BoxRangeQuery(Box.around_point(points[i]))
            )
            assert i in {oid for oid, _obj in found}


class TestHistogramProperties:
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=300),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40)
    def test_cdf_tracks_empirical(self, sample, n_bins):
        """Histogram CDF at bin edges equals the empirical CDF exactly."""
        hist = DistanceHistogram.from_sample(sample, n_bins, 1.0)
        arr = np.asarray(sample)
        edges = hist.bin_edges
        for edge in edges[1:-1]:
            empirical = (arr <= edge).mean()
            # Values exactly on an edge may be counted either side by
            # np.histogram; allow one observation of slack.
            assert abs(float(hist.cdf(edge)) - empirical) <= (
                np.sum(arr == edge) + 1e-9
            ) / len(sample) + 1e-9
