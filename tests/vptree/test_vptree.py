"""Tests for the vp-tree access method."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTreeError, InvalidParameterError
from repro.metrics import L2, EditDistance, LInf
from repro.vptree import VPTree, collect_vptree_shape
from repro.workloads import LinearScanBaseline


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).random((400, 3))


class TestBuild:
    @pytest.mark.parametrize("arity", [2, 3, 5])
    def test_structure_valid(self, points, arity):
        tree = VPTree.build(list(points), L2(), arity=arity, seed=1)
        tree.validate()
        assert len(tree) == 400
        assert tree.n_nodes() == 400  # one object per node

    def test_empty_build(self):
        tree = VPTree.build([], L2())
        assert len(tree) == 0
        assert tree.n_nodes() == 0
        assert tree.height() == 0

    def test_single_object(self):
        tree = VPTree.build([np.array([0.5, 0.5])], L2())
        assert tree.n_nodes() == 1
        result = tree.range_query(np.array([0.5, 0.5]), 0.1)
        assert len(result) == 1

    def test_height_logarithmic(self, points):
        binary = VPTree.build(list(points), L2(), arity=2, seed=2)
        wide = VPTree.build(list(points), L2(), arity=5, seed=2)
        assert wide.height() <= binary.height()
        assert binary.height() <= 3 * np.log2(len(points))

    @pytest.mark.parametrize("selection", ["random", "spread"])
    def test_vantage_selection_variants(self, points, selection):
        tree = VPTree.build(
            list(points[:100]), L2(), vantage_selection=selection, seed=3
        )
        tree.validate()

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            VPTree(L2(), arity=1)
        with pytest.raises(InvalidParameterError):
            VPTree(L2(), vantage_selection="best")


class TestRangeQuery:
    @pytest.mark.parametrize("arity", [2, 3])
    def test_matches_linear_scan(self, points, arity):
        tree = VPTree.build(list(points), LInf(), arity=arity, seed=4)
        baseline = LinearScanBaseline(list(points), LInf(), 12, 4096)
        rng = np.random.default_rng(5)
        for radius in (0.0, 0.05, 0.2, 0.6):
            query = rng.random(3)
            assert sorted(tree.range_query(query, radius).oids()) == sorted(
                i for i, _o, _d in baseline.range_query(query, radius)[0]
            )

    def test_one_distance_per_accessed_node(self, points):
        """The cost-model assumption e(N) = 1."""
        tree = VPTree.build(list(points), L2(), arity=3, seed=6)
        result = tree.range_query(np.random.default_rng(7).random(3), 0.2)
        assert result.stats.dists_computed == result.stats.nodes_accessed

    def test_pruning_saves_work(self, points):
        tree = VPTree.build(list(points), L2(), arity=2, seed=8)
        small = tree.range_query(points[0], 0.01)
        assert small.stats.dists_computed < len(points)

    def test_negative_radius_rejected(self, points):
        tree = VPTree.build(list(points[:10]), L2())
        with pytest.raises(InvalidParameterError):
            tree.range_query(points[0], -1.0)

    def test_empty_tree(self):
        tree = VPTree.build([], L2())
        assert len(tree.range_query(np.zeros(2), 1.0)) == 0


class TestKNNQuery:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_brute_force(self, points, k):
        tree = VPTree.build(list(points), L2(), arity=3, seed=9)
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        rng = np.random.default_rng(10)
        for _ in range(5):
            query = rng.random(3)
            np.testing.assert_allclose(
                tree.knn_query(query, k).distances(),
                [d for _i, _o, d in baseline.knn_query(query, k)[0]],
                atol=1e-12,
            )

    def test_beats_linear_scan_distance_count(self, points):
        tree = VPTree.build(list(points), L2(), arity=2, seed=11)
        result = tree.knn_query(points[3], 1)
        assert result.stats.dists_computed < len(points)

    def test_validation(self, points):
        tree = VPTree.build(list(points[:10]), L2())
        with pytest.raises(InvalidParameterError):
            tree.knn_query(points[0], 0)
        with pytest.raises(InvalidParameterError):
            tree.knn_query(points[0], 11)
        empty = VPTree.build([], L2())
        with pytest.raises(EmptyTreeError):
            empty.knn_query(points[0], 1)


class TestStringVPTree:
    def test_strings(self, words):
        tree = VPTree.build(words, EditDistance(), arity=2, seed=12)
        tree.validate()
        result = tree.range_query("casa", 1)
        found = {obj for _oid, obj, _d in result.items}
        assert {"casa", "cassa", "cosa", "caso"} <= found


class TestShapeStats:
    def test_shape_summary(self, points):
        tree = VPTree.build(list(points), L2(), arity=3, seed=13)
        shape = collect_vptree_shape(tree)
        assert shape.n_nodes == 400
        assert shape.height == tree.height()
        assert sum(shape.nodes_per_depth.values()) == 400
        assert len(shape.root_cutoffs) == 3
        assert shape.root_cutoffs == sorted(shape.root_cutoffs)

    def test_empty_rejected(self):
        tree = VPTree.build([], L2())
        with pytest.raises(EmptyTreeError):
            collect_vptree_shape(tree)

    def test_cutoffs_near_quantiles(self):
        """The homogeneity assumption: actual cutoffs should track the
        distance-distribution quantiles the model uses."""
        from repro.core import estimate_distance_histogram

        rng = np.random.default_rng(14)
        pts = rng.random((2000, 4))
        metric = LInf()
        tree = VPTree.build(list(pts), metric, arity=2, seed=15)
        hist = estimate_distance_histogram(pts, metric, 1.0, n_bins=100)
        predicted_median = float(hist.quantile(0.5))
        actual_median = tree.root.cutoffs[0]
        assert actual_median == pytest.approx(predicted_median, abs=0.1)
