"""Cancellation must unwind the whole workload run, never be "isolated".

Regression tests for the bug metalint's ``cancellation-hygiene`` rule
exists to catch: the runner's per-query isolation handlers used to catch
``Exception`` broadly, so a deadline expiring *inside* a query was
recorded as one failed query and the run kept burning budget.  A
deadline or cancellation raised by the metric must now propagate out of
the runner even with ``capture_errors=True``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeadlineExceededError, OperationCancelledError
from repro.metrics import FunctionMetric
from repro.mtree import NodeLayout, bulk_load
from repro.vptree import VPTree
from repro.workloads import (
    run_knn_workload,
    run_range_workload,
    run_vptree_range_workload,
)

#: Sentinel query object: the metric raises as if the query's deadline
#: expired the moment this query reaches any distance computation.
EXPIRED = object()
CANCELLED = object()


def _metric():
    def distance(a, b):
        for obj in (a, b):
            if obj is EXPIRED:
                raise DeadlineExceededError("deadline expired mid-query")
            if obj is CANCELLED:
                raise OperationCancelledError("caller cancelled")
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))

    return FunctionMetric(distance, name="deadline-probe")


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    points = rng.random((80, 3))
    metric = _metric()
    layout = NodeLayout(node_size_bytes=256, object_bytes=12)
    tree = bulk_load(points, metric, layout, seed=1)
    vptree = VPTree.build(list(points), metric, arity=3, seed=2)
    queries = list(rng.random((6, 3)))
    return tree, vptree, queries


class TestDeadlinePropagation:
    def test_range_capture_does_not_swallow_deadline(self, setup):
        tree, _vptree, queries = setup
        poisoned = queries[:3] + [EXPIRED] + queries[3:]
        with pytest.raises(DeadlineExceededError):
            run_range_workload(tree, poisoned, 0.3, capture_errors=True)

    def test_knn_capture_does_not_swallow_deadline(self, setup):
        tree, _vptree, queries = setup
        poisoned = queries + [EXPIRED]
        with pytest.raises(DeadlineExceededError):
            run_knn_workload(tree, poisoned, 3, capture_errors=True)

    def test_vptree_capture_does_not_swallow_deadline(self, setup):
        _tree, vptree, queries = setup
        poisoned = [EXPIRED] + queries
        with pytest.raises(DeadlineExceededError):
            run_vptree_range_workload(vptree, poisoned, 0.3, capture_errors=True)

    def test_cancellation_propagates_too(self, setup):
        tree, _vptree, queries = setup
        poisoned = queries + [CANCELLED]
        with pytest.raises(OperationCancelledError):
            run_range_workload(tree, poisoned, 0.3, capture_errors=True)

    def test_ordinary_failures_are_still_isolated(self, setup):
        """The fix must not weaken isolation for non-cancellation errors."""
        tree, _vptree, queries = setup
        poisoned = queries + [None]  # metric chokes on None with TypeError
        measurement = run_range_workload(
            tree, poisoned, 0.3, capture_errors=True
        )
        assert measurement.n_queries == len(queries)
        assert measurement.failed_queries == 1
