"""Tests for biased-query workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import keyword_dataset, uniform_dataset
from repro.exceptions import InvalidParameterError
from repro.workloads import sample_workload


class TestSampleWorkload:
    def test_size_and_iteration(self):
        data = uniform_dataset(100, 3, seed=1)
        workload = sample_workload(data, 25, seed=2)
        assert len(workload) == 25
        assert len(list(workload)) == 25

    def test_determinism(self):
        data = uniform_dataset(100, 3, seed=1)
        first = sample_workload(data, 10, seed=3)
        second = sample_workload(data, 10, seed=3)
        np.testing.assert_array_equal(
            np.asarray(first.queries), np.asarray(second.queries)
        )

    def test_queries_not_from_dataset(self):
        """Continuous domain: fresh samples coincide with indexed objects
        with probability zero."""
        data = uniform_dataset(100, 3, seed=1)
        workload = sample_workload(data, 20, seed=4)
        members = {p.tobytes() for p in data.points}
        for query in workload:
            assert np.asarray(query).tobytes() not in members

    def test_exclude_members_on_discrete_domain(self):
        data = keyword_dataset(200, seed=5)
        workload = sample_workload(data, 30, seed=6, exclude_members=True)
        members = set(data.words)
        assert all(q not in members for q in workload)

    def test_invalid_count(self):
        data = uniform_dataset(10, 2, seed=1)
        with pytest.raises(InvalidParameterError):
            sample_workload(data, 0)
