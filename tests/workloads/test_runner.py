"""Tests for the workload runner and the linear-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics import L2
from repro.mtree import NodeLayout, bulk_load
from repro.reliability import FaultPolicy, RetryPolicy
from repro.vptree import VPTree
from repro.workloads import (
    LinearScanBaseline,
    run_knn_workload,
    run_range_workload,
    run_vptree_range_workload,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    points = rng.random((300, 3))
    layout = NodeLayout(node_size_bytes=256, object_bytes=12)
    tree = bulk_load(points, L2(), layout, seed=1)
    queries = rng.random((20, 3))
    return points, tree, queries


class TestRangeWorkload:
    def test_means_match_manual(self, setup):
        _points, tree, queries = setup
        measurement = run_range_workload(tree, queries, 0.3)
        nodes, dists, results = [], [], []
        for q in queries:
            out = tree.range_query(q, 0.3)
            nodes.append(out.stats.nodes_accessed)
            dists.append(out.stats.dists_computed)
            results.append(len(out))
        assert measurement.mean_nodes == pytest.approx(np.mean(nodes))
        assert measurement.mean_dists == pytest.approx(np.mean(dists))
        assert measurement.mean_results == pytest.approx(np.mean(results))
        assert measurement.n_queries == 20

    def test_stderr(self, setup):
        _points, tree, queries = setup
        measurement = run_range_workload(tree, queries, 0.3)
        assert measurement.stderr_nodes() >= 0
        assert measurement.stderr_dists() >= 0

    def test_empty_workload_rejected(self, setup):
        _points, tree, _queries = setup
        with pytest.raises(InvalidParameterError):
            run_range_workload(tree, [], 0.3)


class TestKNNWorkload:
    def test_nn_distance_recorded(self, setup):
        points, tree, queries = setup
        measurement = run_knn_workload(tree, queries, 3)
        assert measurement.mean_nn_distance is not None
        # The mean 3rd-NN distance must match brute force.
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        expected = np.mean(
            [baseline.knn_query(q, 3)[0][-1][2] for q in queries]
        )
        assert measurement.mean_nn_distance == pytest.approx(expected)

    def test_results_always_k(self, setup):
        _points, tree, queries = setup
        measurement = run_knn_workload(tree, queries, 5)
        assert measurement.mean_results == 5.0


class TestVPTreeWorkload:
    def test_runs(self, setup):
        points, _tree, queries = setup
        vptree = VPTree.build(list(points), L2(), arity=3, seed=2)
        measurement = run_vptree_range_workload(vptree, queries, 0.2)
        assert measurement.mean_dists == measurement.mean_nodes
        assert measurement.n_queries == 20


class TestErrorIsolation:
    def test_fault_free_run_reports_no_failures(self, setup):
        _points, tree, queries = setup
        measurement = run_range_workload(tree, queries, 0.3)
        assert measurement.failed_queries == 0
        assert measurement.errors == []
        assert measurement.success_rate == 1.0

    def test_zero_rate_policy_changes_nothing(self, setup):
        _points, tree, queries = setup
        plain = run_range_workload(tree, queries, 0.3)
        gated = run_range_workload(
            tree, queries, 0.3, fault_policy=FaultPolicy(seed=1)
        )
        assert gated.failed_queries == 0
        assert gated.mean_nodes == plain.mean_nodes
        assert gated.mean_dists == plain.mean_dists
        assert gated.n_queries == plain.n_queries

    def test_200_query_workload_survives_5pct_read_faults(self, setup):
        """The acceptance scenario: FaultPolicy(read_fail_rate=0.05) over
        200 range queries completes with failed_queries reported and no
        uncaught exception."""
        points, tree, _queries = setup
        rng = np.random.default_rng(42)
        queries = rng.random((200, 3))
        measurement = run_range_workload(
            tree,
            queries,
            0.3,
            fault_policy=FaultPolicy(read_fail_rate=0.05, seed=7),
        )
        assert measurement.n_queries + measurement.failed_queries == 200
        assert measurement.failed_queries > 0
        assert 0.0 < measurement.success_rate < 1.0
        assert measurement.errors
        assert "IOFaultError" in measurement.errors[0]

    def test_fault_injection_deterministic(self, setup):
        _points, tree, queries = setup
        runs = [
            run_range_workload(
                tree,
                queries,
                0.3,
                fault_policy=FaultPolicy(read_fail_rate=0.3, seed=5),
            ).failed_queries
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_retry_recovers_queries(self, setup):
        """With a retry budget, most fault-hit queries succeed anyway."""
        _points, tree, queries = setup
        rng = np.random.default_rng(8)
        big = rng.random((100, 3))
        without = run_range_workload(
            tree,
            big,
            0.3,
            fault_policy=FaultPolicy(read_fail_rate=0.1, seed=9),
        )
        with_retry = run_range_workload(
            tree,
            big,
            0.3,
            fault_policy=FaultPolicy(read_fail_rate=0.1, seed=9),
            retry=RetryPolicy(max_attempts=6, seed=9, sleep=lambda _d: None),
        )
        assert with_retry.failed_queries < without.failed_queries

    def test_knn_workload_fault_isolation(self, setup):
        _points, tree, queries = setup
        measurement = run_knn_workload(
            tree,
            queries,
            3,
            fault_policy=FaultPolicy(read_fail_rate=0.5, seed=3),
        )
        assert measurement.n_queries + measurement.failed_queries == 20

    def test_capture_errors_isolates_poisoned_query(self, setup):
        """A query object the metric cannot digest fails alone."""
        _points, tree, queries = setup
        poisoned = list(queries) + [None]
        with pytest.raises(Exception):
            run_range_workload(tree, poisoned, 0.3)
        measurement = run_range_workload(
            tree, poisoned, 0.3, capture_errors=True
        )
        assert measurement.n_queries == 20
        assert measurement.failed_queries == 1

    def test_all_queries_failing_yields_degenerate_measurement(self, setup):
        _points, tree, queries = setup
        measurement = run_range_workload(
            tree,
            queries,
            0.3,
            fault_policy=FaultPolicy(read_fail_rate=1.0, seed=2),
        )
        assert measurement.n_queries == 0
        assert measurement.failed_queries == 20
        assert measurement.success_rate == 0.0
        assert measurement.stderr_nodes() == 0.0

    def test_empty_workload_still_rejected_with_capture(self, setup):
        _points, tree, _queries = setup
        with pytest.raises(InvalidParameterError):
            run_range_workload(tree, [], 0.3, capture_errors=True)

    def test_vptree_capture(self, setup):
        points, _tree, queries = setup
        vptree = VPTree.build(list(points), L2(), arity=3, seed=2)
        poisoned = list(queries) + [np.ones(7)]  # wrong dimensionality
        measurement = run_vptree_range_workload(
            vptree, poisoned, 0.2, capture_errors=True
        )
        assert measurement.n_queries == 20
        assert measurement.failed_queries == 1


class TestLinearScanBaseline:
    def test_range_exact(self, setup):
        points, _tree, queries = setup
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        matches, nodes, dists = baseline.range_query(queries[0], 0.4)
        expected = [
            i
            for i, p in enumerate(points)
            if L2().distance(queries[0], p) <= 0.4
        ]
        assert [i for i, _o, _d in matches] == expected
        assert dists == len(points)
        assert nodes == int(np.ceil(len(points) * 12 / 4096))

    def test_knn_sorted(self, setup):
        points, _tree, queries = setup
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        neighbors, _nodes, dists = baseline.knn_query(queries[0], 10)
        ds = [d for _i, _o, d in neighbors]
        assert ds == sorted(ds)
        assert len(neighbors) == 10
        assert dists == len(points)

    def test_validation(self, setup):
        points, _tree, _queries = setup
        baseline = LinearScanBaseline(list(points), L2(), 12, 4096)
        with pytest.raises(InvalidParameterError):
            baseline.range_query(points[0], -0.1)
        with pytest.raises(InvalidParameterError):
            baseline.knn_query(points[0], 0)
        with pytest.raises(InvalidParameterError):
            LinearScanBaseline(list(points), L2(), 100, 50)
